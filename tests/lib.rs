//! Integration-test crate for the Scoop workspace.
//!
//! Shared fixtures live here; the actual cross-crate tests are under
//! `tests/` (`end_to_end.rs`, `failure_injection.rs`, `transparency.rs`).

use bytes::Bytes;
use scoop_core::{ScoopConfig, ScoopContext};
use scoop_workload::{GeneratorConfig, MeterDataset};
use std::sync::Arc;

/// A deployed system with `objects` uploaded CSV objects of `rows` readings
/// each, under the `largemeter` container/table.
pub fn deploy(
    meters: usize,
    objects: usize,
    rows: usize,
    chunk_size: u64,
) -> (Arc<ScoopContext>, u64) {
    let ctx = ScoopContext::new(ScoopConfig {
        chunk_size,
        ..Default::default()
    })
    .expect("deploy");
    let mut gen = MeterDataset::new(&GeneratorConfig {
        meters,
        interval_minutes: 12 * 60,
        ..Default::default()
    });
    let objs: Vec<(String, Bytes)> = (0..objects)
        .map(|i| (format!("part-{i:02}.csv"), gen.csv_object(rows)))
        .collect();
    let report = ctx.upload_csv("largemeter", objs, None).expect("upload");
    (ctx, report.bytes_in)
}
