//! End-to-end observability: one pushdown query must yield one trace whose
//! spans cover every layer of the ingest path, and the process-wide
//! telemetry snapshot must account for the work the query did.
//!
//! The cluster is deliberately degraded — every object node is slow and the
//! hedge trigger is tight — so the snapshot also shows the protection
//! machinery (hedged GETs) firing, as a production health check would.

use bytes::Bytes;
use scoop_common::telemetry::{self, names};
use scoop_core::{ExecutionMode, ScoopConfig, ScoopContext};
use scoop_objectstore::{BreakerConfig, FaultPlan, SwiftConfig};
use scoop_workload::{GeneratorConfig, MeterDataset};
use std::collections::BTreeSet;
use std::time::Duration;

const SQL: &str = "SELECT vid, sum(index) as total FROM meters \
                   WHERE city LIKE 'Rotterdam' GROUP BY vid ORDER BY vid";

/// A deployment where every replica read is slow enough to trip hedging.
fn degraded_context() -> std::sync::Arc<ScoopContext> {
    let mut plan = FaultPlan::quiet(0xB5EED);
    for node in 0..4 {
        plan = plan.with_slow_node(node, Duration::from_millis(8));
    }
    let ctx = ScoopContext::new(ScoopConfig {
        swift: SwiftConfig {
            fault_plan: Some(plan),
            breaker: Some(BreakerConfig::default()),
            hedge_after: Some(Duration::from_millis(1)),
            ..SwiftConfig::default()
        },
        ..ScoopConfig::default()
    })
    .expect("deploy");
    let mut gen = MeterDataset::new(&GeneratorConfig { meters: 30, ..Default::default() });
    let objects: Vec<(String, Bytes)> = (0..2)
        .map(|i| (format!("part-{i}.csv"), gen.csv_object(400)))
        .collect();
    ctx.upload_csv("meters", objects, None).expect("upload");
    ctx
}

#[test]
fn one_pushdown_query_yields_one_trace_across_the_whole_path() {
    let ctx = degraded_context();
    let outcome = ctx
        .query("meters", SQL, ExecutionMode::Pushdown)
        .expect("pushdown query");
    assert!(!outcome.result.rows.is_empty());
    assert!(!outcome.metrics.trace.is_empty(), "query must mint a trace ID");

    let spans = telemetry::trace_spans(&outcome.metrics.trace);
    let layers: BTreeSet<&str> = spans.iter().map(|s| s.layer).collect();
    for layer in telemetry::layers::ALL {
        assert!(
            layers.contains(layer),
            "trace {} is missing a {layer} span; got layers {layers:?}",
            outcome.metrics.trace
        );
    }
    assert!(
        layers.len() >= 4,
        "trace must cover at least 4 layers, got {layers:?}"
    );
    for span in &spans {
        assert!(
            span.duration_us < 60_000_000,
            "span {span:?} reports an absurd duration"
        );
    }

    // Two queries, two traces: each gets its own ID and its own full span
    // set. (Span counts per trace are not compared — a hedge's losing
    // replica may still be in flight when the query returns, and its span
    // lands on the first trace slightly later.)
    let second = ctx
        .query("meters", SQL, ExecutionMode::Pushdown)
        .expect("second query");
    assert_ne!(outcome.metrics.trace, second.metrics.trace);
    let second_layers: BTreeSet<&str> = telemetry::trace_spans(&second.metrics.trace)
        .iter()
        .map(|s| s.layer)
        .collect();
    for layer in [
        telemetry::layers::SESSION,
        telemetry::layers::CONNECTOR,
        telemetry::layers::PROXY,
        telemetry::layers::OBJSERVER,
    ] {
        assert!(
            second_layers.contains(layer),
            "second trace missing {layer}: {second_layers:?}"
        );
    }
}

/// The tentpole end-to-end: over the TCP data plane the server-side spans
/// (proxy, object server, storlet) finish on the far side of a socket, ride
/// back in the `x-scoop-server-spans` trailer, and are merged into the
/// client's trace store tagged `remote` — one query, one coherent
/// seven-layer timeline.
#[test]
fn tcp_transport_merges_server_spans_into_one_trace() {
    let mut plan = FaultPlan::quiet(0x7C9B5EED);
    for node in 0..4 {
        plan = plan.with_slow_node(node, Duration::from_millis(8));
    }
    let ctx = ScoopContext::new(ScoopConfig {
        swift: SwiftConfig {
            fault_plan: Some(plan),
            breaker: Some(BreakerConfig::default()),
            hedge_after: Some(Duration::from_millis(1)),
            ..SwiftConfig::default()
        },
        transport_tcp: true,
        ..ScoopConfig::default()
    })
    .expect("deploy over tcp");
    assert!(ctx.client().is_tcp(), "transport_tcp must put the client on sockets");
    let mut gen = MeterDataset::new(&GeneratorConfig { meters: 30, ..Default::default() });
    let objects: Vec<(String, Bytes)> = (0..2)
        .map(|i| (format!("part-{i}.csv"), gen.csv_object(400)))
        .collect();
    ctx.upload_csv("meters", objects, None).expect("upload");

    let outcome = ctx
        .query("meters", SQL, ExecutionMode::Pushdown)
        .expect("pushdown query over tcp");
    assert!(!outcome.result.rows.is_empty());
    let trace = &outcome.metrics.trace;
    let spans = telemetry::trace_spans(trace);

    // All seven layers in one trace...
    let seen: BTreeSet<&str> = spans.iter().map(|s| s.layer).collect();
    for layer in telemetry::layers::ALL {
        assert!(seen.contains(layer), "trace {trace} missing {layer}: {seen:?}");
    }
    // ... with every server-side layer present as a *remote* span (shipped
    // via the trailer) and every client-side layer recorded locally.
    for layer in telemetry::layers::SERVER_SIDE {
        assert!(
            spans.iter().any(|s| s.remote && s.layer == *layer),
            "no remote {layer} span; the trailer merge lost a tier: {spans:?}"
        );
    }
    for layer in [
        telemetry::layers::SESSION,
        telemetry::layers::SCHEDULER,
        telemetry::layers::CONNECTOR,
        telemetry::layers::CLIENT,
    ] {
        assert!(
            spans.iter().any(|s| !s.remote && s.layer == layer),
            "no local {layer} span: {spans:?}"
        );
    }
    // Merged offsets stay monotone with the query that carried them: no
    // remote span may start before the session span that minted the trace.
    let session_start = spans
        .iter()
        .filter(|s| s.layer == telemetry::layers::SESSION)
        .map(|s| s.start_us)
        .min()
        .expect("session span");
    for s in spans.iter().filter(|s| s.remote) {
        assert!(
            s.start_us >= session_start,
            "remote span starts before the query did: {s:?} (session at {session_start})"
        );
    }

    // The live endpoints agree: /trace/{id} serves the merged trace as
    // JSON, /metrics exposes the pool and wire-fault series in Prometheus
    // text — both fetched over the same TCP transport under test.
    let trace_json = ctx.client().trace_json(trace).expect("GET /trace/{id}");
    for layer in telemetry::layers::ALL {
        assert!(
            trace_json.contains(&format!("\"layer\":\"{layer}\"")),
            "GET /trace/{{id}} missing {layer}: {trace_json}"
        );
    }
    let metrics = ctx.client().metrics_text().expect("GET /metrics");
    for name in [
        names::NET_POOL_CHECKOUT_WAIT_US,
        names::NET_POOL_IN_FLIGHT,
        names::NET_WIRE_FAULTS,
        names::NET_POOL_REUSES,
        names::PROXY_HEDGED_GETS,
    ] {
        assert!(metrics.contains(name), "GET /metrics missing {name}");
    }
    assert!(metrics.contains("# TYPE"), "metrics must be Prometheus text");

    // The wide-event log captured the query: right trace, bytes moved,
    // path attributed to pushdown (or its fallback under faults).
    let event = telemetry::query_events()
        .into_iter()
        .find(|e| &e.trace == trace)
        .expect("query event for the traced query");
    assert!(event.bytes > 0, "event must account transferred bytes: {event:?}");
    assert!(
        event.path == "pushdown" || event.path == "pushdown-fallback",
        "event path must attribute the chosen plan: {event:?}"
    );
    assert!(
        event.layer_us.iter().any(|(l, _)| *l == telemetry::layers::OBJSERVER),
        "event must carry per-layer durations incl. remote tiers: {event:?}"
    );
    let events_json = ctx.client().events_json().expect("GET /events");
    assert!(events_json.contains(trace), "GET /events missing the query event");
}

#[test]
fn snapshot_accounts_for_bytes_hedges_and_storlet_runs() {
    let ctx = degraded_context();
    let outcome = ctx
        .query("meters", SQL, ExecutionMode::Pushdown)
        .expect("pushdown query");
    assert!(!outcome.result.rows.is_empty());

    // The registry is process-wide and cumulative (tests in this binary run
    // in parallel), so assert nonzero rather than exact counts.
    let snap = telemetry::snapshot();
    for name in [
        names::OBJSERVER_BYTES_OUT,
        names::OBJSERVER_GETS,
        names::PROXY_REQUESTS,
        names::PROXY_HEDGED_GETS,
        names::STORLETS_INVOCATIONS,
        names::CONNECTOR_BYTES_TRANSFERRED,
    ] {
        assert!(
            snap.get_counter(name).unwrap_or(0) > 0,
            "snapshot counter {name} must be nonzero after a hedged pushdown query"
        );
    }
    assert!(
        telemetry::missing_data_path_metrics(&snap).is_empty(),
        "every data-path metric must be registered: missing {:?}",
        telemetry::missing_data_path_metrics(&snap)
    );

    // The snapshot renders in both formats with every counter present.
    let text = snap.to_text();
    let json = snap.to_json();
    for &name in telemetry::DATA_PATH_METRICS {
        assert!(text.contains(name), "text dump missing {name}");
        assert!(json.contains(name), "json dump missing {name}");
    }

    // The proxy serves the same dump as its `GET /info` endpoint.
    let info = ctx.client().info();
    assert_eq!(info.status, 200);
    let body = info.read_body().expect("info body");
    let body = std::str::from_utf8(&body).expect("info is utf-8").to_string();
    for &name in telemetry::DATA_PATH_METRICS {
        assert!(body.contains(name), "GET /info missing {name}");
    }
}
