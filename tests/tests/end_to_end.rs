//! Full-stack integration tests: generator → object store → storlets →
//! connector → compute → SQL, across execution modes and configurations.

use scoop_compute::{ExecutionMode, TableFormat};
use scoop_core::{ScoopConfig, ScoopContext};
use scoop_integration::deploy;
use scoop_workload::table1_queries;

#[test]
fn all_table1_queries_agree_across_modes() {
    let (ctx, _) = deploy(60, 3, 3_000, 64 * 1024);
    ctx.convert_to_columnar("largemeter", "colmeter", 1_000)
        .unwrap();
    for q in table1_queries() {
        let vanilla = ctx
            .query("largemeter", &q.sql, ExecutionMode::Vanilla)
            .unwrap_or_else(|e| panic!("{} vanilla: {e}", q.name));
        let pushed = ctx
            .query("largemeter", &q.sql, ExecutionMode::Pushdown)
            .unwrap_or_else(|e| panic!("{} pushdown: {e}", q.name));
        assert_eq!(vanilla.result, pushed.result, "{} mode mismatch", q.name);
        assert!(
            pushed.metrics.bytes_transferred < vanilla.metrics.bytes_transferred,
            "{}: pushdown moved {} >= vanilla {}",
            q.name,
            pushed.metrics.bytes_transferred,
            vanilla.metrics.bytes_transferred
        );
        // Columnar arm (same data, converted).
        let session = ctx.session_with_schema("colmeter", ExecutionMode::Columnar, None);
        session.register_table("largemeter", "colmeter", None, TableFormat::Columnar, None);
        let columnar = session
            .sql(&q.sql)
            .unwrap_or_else(|e| panic!("{} columnar: {e}", q.name));
        assert!(
            vanilla.result.approx_eq(&columnar.result, 1e-9),
            "{} columnar mismatch",
            q.name
        );
    }
}

#[test]
fn results_invariant_to_chunk_size_and_workers() {
    let reference = {
        let (ctx, _) = deploy(40, 2, 2_000, 1 << 20);
        ctx.query(
            "largemeter",
            "SELECT vid, sum(index) as t, count(*) as n FROM largemeter GROUP BY vid ORDER BY vid",
            ExecutionMode::Pushdown,
        )
        .unwrap()
        .result
    };
    for chunk in [8 * 1024u64, 48 * 1024, 300 * 1024] {
        let (ctx, _) = deploy(40, 2, 2_000, chunk);
        let out = ctx
            .query(
                "largemeter",
                "SELECT vid, sum(index) as t, count(*) as n FROM largemeter GROUP BY vid ORDER BY vid",
                ExecutionMode::Pushdown,
            )
            .unwrap();
        assert!(
            reference.approx_eq(&out.result, 1e-9),
            "chunk={chunk} diverged"
        );
        assert!(out.metrics.tasks >= 2, "chunk={chunk} undersplit");
    }
}

#[test]
fn authenticated_cluster_end_to_end() {
    use scoop_objectstore::SwiftConfig;
    let ctx = ScoopContext::new(ScoopConfig {
        swift: SwiftConfig { auth_enabled: true, ..Default::default() },
        ..Default::default()
    })
    .unwrap();
    // Anonymous access is rejected; queries fail with unauthorized.
    ctx.client().create_container("meters").unwrap();
    let err = ctx
        .client()
        .put_object("meters", "x.csv", bytes::Bytes::from_static(b"a,b\n1,2\n"))
        .unwrap_err();
    assert_eq!(err.kind(), "unauthorized");
    // A registered user gets a token and full service.
    ctx.cluster()
        .auth()
        .register_user("AUTH_gridpocket", "analyst", "pw");
    let client = ctx
        .cluster()
        .client("AUTH_gridpocket", "analyst", "pw")
        .unwrap();
    client
        .put_object("meters", "x.csv", bytes::Bytes::from_static(b"a,b\n1,2\n3,4\n"))
        .unwrap();
    assert_eq!(client.list("meters", None).unwrap().len(), 1);
}

#[test]
fn concurrent_queries_share_the_store() {
    let (ctx, _) = deploy(50, 4, 2_000, 32 * 1024);
    let queries: Vec<String> = table1_queries().iter().map(|q| q.sql.clone()).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = queries
            .iter()
            .map(|sql| {
                let ctx = ctx.clone();
                s.spawn(move || {
                    let v = ctx.query("largemeter", sql, ExecutionMode::Vanilla).unwrap();
                    let p = ctx.query("largemeter", sql, ExecutionMode::Pushdown).unwrap();
                    assert_eq!(v.result, p.result);
                    p.result.len()
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap() < usize::MAX);
        }
    });
}

#[test]
fn non_aggregate_pipeline_with_order_limit() {
    let (ctx, _) = deploy(30, 2, 1_500, 32 * 1024);
    let sql = "SELECT vid, date, index FROM largemeter \
               WHERE index > 100 AND city LIKE 'Paris' \
               ORDER BY index DESC, vid LIMIT 7";
    let v = ctx.query("largemeter", sql, ExecutionMode::Vanilla).unwrap();
    let p = ctx.query("largemeter", sql, ExecutionMode::Pushdown).unwrap();
    assert_eq!(v.result, p.result);
    assert!(p.result.len() <= 7);
    // Descending order by index.
    let vals: Vec<f64> = p.result.rows.iter().map(|r| r[2].as_f64().unwrap()).collect();
    assert!(vals.windows(2).all(|w| w[0] >= w[1]), "{vals:?}");
}

#[test]
fn select_star_disables_pushdown_projection_but_still_matches() {
    let (ctx, bytes) = deploy(30, 2, 1_500, 64 * 1024);
    let sql = "SELECT * FROM largemeter WHERE state LIKE 'FRA' ORDER BY vid, date LIMIT 20";
    let v = ctx.query("largemeter", sql, ExecutionMode::Vanilla).unwrap();
    let p = ctx.query("largemeter", sql, ExecutionMode::Pushdown).unwrap();
    assert_eq!(v.result, p.result);
    assert_eq!(v.result.columns.len(), 10);
    // Selection still pushed: transfer below the raw dataset.
    assert!(p.metrics.bytes_transferred < bytes / 2);
}

#[test]
fn empty_results_and_empty_containers() {
    let (ctx, _) = deploy(10, 1, 200, 64 * 1024);
    let sql = "SELECT vid FROM largemeter WHERE city LIKE 'Atlantis'";
    let v = ctx.query("largemeter", sql, ExecutionMode::Vanilla).unwrap();
    let p = ctx.query("largemeter", sql, ExecutionMode::Pushdown).unwrap();
    assert!(v.result.is_empty() && p.result.is_empty());
    // Aggregate over empty selection: one NULL-ish global row.
    let sql = "SELECT count(*) as n FROM largemeter WHERE city LIKE 'Atlantis'";
    let p = ctx.query("largemeter", sql, ExecutionMode::Pushdown).unwrap();
    // No groups → no rows (GROUP BY-less semantics over distributed
    // partials with zero matching rows).
    assert!(p.result.len() <= 1);
}
