//! Failure injection across the full stack: dead object servers during
//! pushdown queries, replication repair, and policy-driven degradation.

use scoop_compute::ExecutionMode;
use scoop_integration::deploy;
use scoop_storlets::Tier;

#[test]
fn pushdown_queries_survive_object_server_failures() {
    let (ctx, _) = deploy(40, 4, 2_000, 32 * 1024);
    let sql = "SELECT vid, sum(index) as t FROM largemeter \
               WHERE city LIKE 'Rotterdam' GROUP BY vid ORDER BY vid";
    let baseline = ctx.query("largemeter", sql, ExecutionMode::Pushdown).unwrap();
    // Kill one server at a time; with 3 replicas over 4 servers every object
    // keeps at least two live copies.
    for victim in 0..ctx.cluster().config().object_servers as u32 {
        ctx.cluster().set_server_down(victim, true).unwrap();
        let degraded = ctx.query("largemeter", sql, ExecutionMode::Pushdown).unwrap();
        assert_eq!(baseline.result, degraded.result, "victim={victim}");
        ctx.cluster().set_server_down(victim, false).unwrap();
    }
}

#[test]
fn writes_during_outage_are_repaired() {
    let (ctx, _) = deploy(20, 2, 1_000, 64 * 1024);
    ctx.cluster().set_server_down(0, true).unwrap();
    ctx.upload_csv(
        "largemeter",
        vec![(
            "late.csv".to_string(),
            bytes::Bytes::from_static(b"vid,date,index,sumHC,sumHP,lat,long,city,state,region\nM99999,2015-01-01 00:00:00,1.0,0.5,0.5,0.0,0.0,Nowhere,XXX,None\n"),
        )],
        None,
    )
    .unwrap();
    ctx.cluster().set_server_down(0, false).unwrap();
    let report = ctx.cluster().repair().unwrap();
    assert_eq!(report.objects_lost, 0);
    let clean = ctx.cluster().repair().unwrap();
    assert_eq!(clean.replicas_restored, 0);
    // The late row is queryable afterwards.
    let out = ctx
        .query(
            "largemeter",
            "SELECT vid FROM largemeter WHERE vid LIKE 'M99999'",
            ExecutionMode::Pushdown,
        )
        .unwrap();
    assert_eq!(out.result.len(), 1);
}

#[test]
fn bronze_tier_fallback_is_transparent_and_unfiltered() {
    let (ctx, bytes) = deploy(30, 2, 1_500, 32 * 1024);
    let sql = "SELECT vid, count(*) as n FROM largemeter \
               WHERE state LIKE 'NLD' GROUP BY vid ORDER BY vid";
    let gold = ctx.query("largemeter", sql, ExecutionMode::Pushdown).unwrap();
    ctx.policy().set_tier("AUTH_gridpocket", Tier::Bronze);
    let bronze = ctx.query("largemeter", sql, ExecutionMode::Pushdown).unwrap();
    assert!(gold.result.approx_eq(&bronze.result, 1e-9));
    // Bronze ingested (roughly) everything; gold a sliver.
    assert!(bronze.metrics.bytes_transferred > bytes / 2);
    assert!(gold.metrics.bytes_transferred < bytes / 4);
    ctx.policy().set_tier("AUTH_gridpocket", Tier::Gold);
}

#[test]
fn query_against_fully_dead_store_errors_cleanly() {
    let (ctx, _) = deploy(10, 1, 300, 64 * 1024);
    for node in 0..ctx.cluster().config().object_servers as u32 {
        ctx.cluster().set_server_down(node, true).unwrap();
    }
    let err = ctx
        .query(
            "largemeter",
            "SELECT vid FROM largemeter",
            ExecutionMode::Pushdown,
        )
        .unwrap_err();
    assert!(err.is_retryable(), "unexpected error kind: {err}");
}

#[test]
fn storlet_failures_propagate_as_errors() {
    use scoop_objectstore::request::Request;
    use scoop_objectstore::ObjectPath;
    use scoop_storlets::middleware::headers;
    let (ctx, _) = deploy(10, 1, 300, 64 * 1024);
    let object = ctx.client().list("largemeter", None).unwrap()[0].name.clone();
    let path = ObjectPath::new("AUTH_gridpocket", "largemeter", object).unwrap();
    // csvfilter without its parameters fails the request, not the process.
    let req = Request::get(path).with_header(headers::RUN_STORLET, "csvfilter");
    assert!(ctx.client().request(req).is_err());
}
