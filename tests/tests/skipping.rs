//! End-to-end data-skipping acceptance: a highly selective pushdown over a
//! zone-indexed object must read under 10% of the object's bytes, with
//! results byte-identical to both the full-scan reference and an un-indexed
//! twin of the same object.

use scoop_connector::SwiftConnector;
use scoop_core::{EtlSpec, ScoopConfig, ScoopContext};
use scoop_csv::filter::filter_buffer;
use scoop_csv::{Predicate, PushdownSpec, Value};
use scoop_compute::connector::StorageConnector;
use scoop_workload::generator::meter_schema;
use scoop_workload::{GeneratorConfig, MeterDataset};
use std::collections::HashMap;

#[test]
fn selective_pushdown_reads_under_ten_percent() {
    let ctx = ScoopContext::new(ScoopConfig::default()).unwrap();
    let mut gen = MeterDataset::new(&GeneratorConfig {
        meters: 10,
        interval_minutes: 60,
        ..Default::default()
    });
    let data = gen.csv_object(10_000);

    // Ingest through the zone-map indexer: PUT-path ETL computes per-block
    // statistics as the bytes land.
    let schema: Vec<String> = meter_schema().names().iter().map(|s| s.to_string()).collect();
    let mut params = HashMap::new();
    params.insert("schema".to_string(), schema.join(","));
    params.insert("header".to_string(), "1".to_string());
    params.insert("block".to_string(), "4096".to_string());
    ctx.upload_csv(
        "largemeter",
        vec![("indexed.csv".to_string(), data.clone())],
        Some(&EtlSpec { storlets: "zoneindex".to_string(), params }),
    )
    .unwrap();
    // An un-indexed twin of the same bytes for the fallback arm.
    ctx.upload_csv(
        "largemeter",
        vec![("plain.csv".to_string(), data.clone())],
        None,
    )
    .unwrap();

    // Pick a timestamp ~90% into the time-major object: rows are clustered
    // by date, so the predicate selects a thin contiguous slice (10 of
    // 10,000 rows — 99.9% of records filtered out).
    let lines: Vec<&[u8]> = data.split(|&b| b == b'\n').collect();
    let probe = lines[lines.len() * 9 / 10];
    let date = std::str::from_utf8(probe)
        .unwrap()
        .split(',')
        .nth(1)
        .unwrap()
        .to_string();
    let spec = PushdownSpec {
        columns: None,
        predicate: Some(Predicate::Eq("date".into(), Value::Str(date.as_str().into()))),
        has_header: true,
    };
    let (reference, _) = filter_buffer(&spec, &schema, &data, true).unwrap();
    assert!(!reference.is_empty(), "probe date must match rows");

    let conn = SwiftConnector::new(
        ctx.cluster().anonymous_client(&ctx.config().account),
    );
    let out = scoop_common::stream::collect(
        conn.read_pushdown("largemeter", "indexed.csv", 0, None, &spec, &schema)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(&out[..], &reference[..], "planned scan diverged from reference");

    // The acceptance bar: under 10% of the object's bytes were read.
    let len = data.len() as u64;
    let scanned = len - conn.bytes_skipped();
    assert!(
        scanned < len / 10,
        "scanned {scanned} of {len} bytes (skipped {})",
        conn.bytes_skipped()
    );
    let filter_bytes = ctx.engine().stats("csvfilter").bytes_in;
    assert!(
        filter_bytes < len / 10,
        "csvfilter consumed {filter_bytes} of {len} bytes"
    );

    // The un-indexed twin answers identically via a transparent full scan.
    let skipped_before = conn.bytes_skipped();
    let plain = scoop_common::stream::collect(
        conn.read_pushdown("largemeter", "plain.csv", 0, None, &spec, &schema)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(&plain[..], &reference[..], "fallback diverged from reference");
    assert_eq!(conn.bytes_skipped(), skipped_before, "fallback must not claim skips");
}
