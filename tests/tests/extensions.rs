//! Integration tests for the Section VII extensions: the Spark-Storlets
//! dataset, non-textual metadata extraction, adaptive pushdown, DISTINCT and
//! HAVING through the full stack.

use scoop_compute::{ExecutionMode, StorageConnector, StorletDataset, StorletPartitioning};
use scoop_connector::SwiftConnector;
use scoop_integration::deploy;
use scoop_storlets::adaptive::{AdaptiveController, AdaptivePolicy};
use scoop_storlets::filters::metadata::encode_simg;
use scoop_storlets::Tier;
use std::collections::HashMap;

#[test]
fn storlet_dataset_aggregates_in_the_store() {
    let (ctx, dataset_bytes) = deploy(30, 3, 1_000, 64 * 1024);
    let mut params = HashMap::new();
    params.insert("column".to_string(), "index".to_string());
    params.insert(
        "schema".to_string(),
        scoop_workload::generator::meter_schema().names().join(","),
    );
    params.insert("header".to_string(), "1".to_string());
    let connector = SwiftConnector::new(ctx.client().clone());
    let rdd = StorletDataset::new(connector.clone(), "largemeter", "aggregate", params)
        .with_partitioning(StorletPartitioning::PerObject)
        .with_workers(3);
    let outputs = rdd.collect_bytes().unwrap();
    assert_eq!(outputs.len(), 3);
    // Each output is a 2-line CSV summary; the wire moved only summaries.
    for out in &outputs {
        let text = String::from_utf8_lossy(out);
        assert!(text.starts_with("count,sum,min,max,mean\n"), "{text}");
        let count: u64 = text
            .lines()
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(count, 1_000);
    }
    assert!(connector.bytes_transferred() < dataset_bytes / 100);
}

#[test]
fn storlet_dataset_ranged_csvfilter_covers_all_records() {
    let (ctx, _) = deploy(20, 1, 600, 32 * 1024);
    let spec = scoop_csv::PushdownSpec {
        columns: Some(vec!["vid".into()]),
        predicate: None,
        has_header: true,
    };
    let mut params = HashMap::new();
    params.insert("spec".to_string(), spec.to_header());
    params.insert(
        "schema".to_string(),
        scoop_workload::generator::meter_schema().names().join(","),
    );
    let connector = SwiftConnector::new(ctx.client().clone());
    let rdd = StorletDataset::new(connector, "largemeter", "csvfilter", params)
        .with_partitioning(StorletPartitioning::PerRange { chunk_size: 8 * 1024 });
    let schema = scoop_csv::Schema::new(vec![scoop_csv::schema::Field::new(
        "vid",
        scoop_csv::DataType::Str,
    )]);
    let rows = rdd.collect_rows(&schema).unwrap();
    assert_eq!(rows.len(), 600, "each record exactly once across ranges");
}

#[test]
fn metadata_extraction_through_the_store() {
    let (ctx, _) = deploy(10, 1, 100, 64 * 1024);
    let img = encode_simg(
        &[("camera", "GP-Cam"), ("lat", "51.92")],
        &vec![0u8; 300_000],
    );
    ctx.upload_csv(
        "photos",
        vec![("p.simg".to_string(), bytes::Bytes::from(img))],
        None,
    )
    .unwrap();
    let connector = SwiftConnector::new(ctx.client().clone());
    let rdd = StorletDataset::new(connector.clone(), "photos", "metaextract", HashMap::new());
    let out = rdd.collect_bytes().unwrap();
    assert_eq!(
        String::from_utf8_lossy(&out[0]),
        "camera,GP-Cam\nlat,51.92\n"
    );
    // Only the object head crossed the wire, not the 300 KB payload.
    assert!(connector.bytes_transferred() < 20_000);
}

#[test]
fn adaptive_controller_from_live_engine_stats() {
    let (ctx, _) = deploy(20, 2, 800, 32 * 1024);
    let controller =
        AdaptiveController::new(ctx.policy().clone(), AdaptivePolicy::default());
    let account = ctx.config().account.clone();
    controller.register_tenant(&account, 1);
    // Run a *barely selective* pushdown workload (keeps everything).
    for _ in 0..4 {
        ctx.query(
            "largemeter",
            "SELECT vid, date, index, sumHC, sumHP, lat, long, city, state, region \
             FROM largemeter WHERE vid < 'M99999'",
            ExecutionMode::Pushdown,
        )
        .unwrap();
    }
    controller.observe_engine(&account, ctx.engine());
    let sel = controller.estimated_selectivity(&account).unwrap();
    assert!(sel < 0.25, "selectivity estimate {sel}");
    let changes = controller.control_step(0.2);
    assert_eq!(changes, vec![(account.clone(), Tier::Bronze)]);
    // Bronze: the next "pushdown" query transparently ingests raw data.
    let out = ctx
        .query(
            "largemeter",
            "SELECT count(*) as n FROM largemeter",
            ExecutionMode::Pushdown,
        )
        .unwrap();
    assert_eq!(out.result.rows[0][0], scoop_csv::Value::Int(1600));
}

#[test]
fn distinct_and_having_through_both_arms() {
    let (ctx, _) = deploy(30, 2, 1_200, 32 * 1024);
    for sql in [
        "SELECT DISTINCT city, state FROM largemeter ORDER BY city",
        "SELECT city, count(*) as n FROM largemeter GROUP BY city \
         HAVING count(*) > 50 ORDER BY city",
        "SELECT DISTINCT state FROM largemeter WHERE index > 100 ORDER BY state",
    ] {
        let vanilla = ctx.query("largemeter", sql, ExecutionMode::Vanilla).unwrap();
        let pushed = ctx.query("largemeter", sql, ExecutionMode::Pushdown).unwrap();
        assert_eq!(vanilla.result, pushed.result, "{sql}");
        assert!(!vanilla.result.is_empty(), "{sql}");
    }
}

#[test]
fn explain_over_the_real_store() {
    let (ctx, _) = deploy(10, 1, 300, 32 * 1024);
    let session = ctx.session("largemeter", ExecutionMode::Pushdown);
    let plan = session
        .explain(
            "SELECT vid, sum(index) as t FROM largemeter \
             WHERE city LIKE 'Rotterdam' GROUP BY vid",
        )
        .unwrap();
    assert!(plan.contains("at object store"), "{plan}");
    assert!(plan.contains("partitions"), "{plan}");
}

#[test]
fn collect_limit_stops_scanning_early() {
    let (ctx, dataset_bytes) = deploy(40, 4, 3_000, 64 * 1024);
    // Unsorted LIMIT: tasks stop pulling bytes once the quota is met.
    let out = ctx
        .query(
            "largemeter",
            "SELECT vid, city FROM largemeter LIMIT 5",
            ExecutionMode::Vanilla,
        )
        .unwrap();
    assert_eq!(out.result.len(), 5);
    assert!(
        out.metrics.bytes_transferred < dataset_bytes / 4,
        "LIMIT scan moved {} of {dataset_bytes}",
        out.metrics.bytes_transferred
    );
    // With ORDER BY the full scan is required; no early stop.
    let ordered = ctx
        .query(
            "largemeter",
            "SELECT vid, city FROM largemeter ORDER BY vid LIMIT 5",
            ExecutionMode::Vanilla,
        )
        .unwrap();
    assert_eq!(ordered.result.len(), 5);
    assert!(ordered.metrics.bytes_transferred > out.metrics.bytes_transferred);
    // Rows returned by the early-stopped scan are genuine data rows.
    for row in &out.result.rows {
        assert!(row[0].as_str().unwrap().starts_with('M'));
    }
}
