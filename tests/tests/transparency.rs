//! Property-based full-stack transparency: random queries over real data in
//! the real store must return identical results with and without pushdown —
//! the system-level version of the `scoop-sql` unit property.

use proptest::prelude::*;
use scoop_compute::ExecutionMode;
use scoop_core::ScoopContext;
use scoop_integration::deploy;
use std::sync::{Arc, OnceLock};

fn ctx() -> &'static Arc<ScoopContext> {
    static CTX: OnceLock<Arc<ScoopContext>> = OnceLock::new();
    CTX.get_or_init(|| deploy(30, 2, 1_200, 24 * 1024).0)
}

fn where_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("city LIKE 'Rotterdam'".to_string()),
        Just("state IN ('FRA', 'NLD')".to_string()),
        Just("index > 1000".to_string()),
        Just("index <= 2500".to_string()),
        Just("date LIKE '2015-01-0_%'".to_string()),
        Just("vid < 'M00010'".to_string()),
        Just("NOT state LIKE 'U%'".to_string()),
        Just("SUBSTRING(date, 12, 2) = '00'".to_string()),
        Just("sumHC IS NOT NULL".to_string()),
        Just("lat >= 45.0 OR long < 4.0".to_string()),
    ]
}

fn select_strategy() -> impl Strategy<Value = (String, String)> {
    prop_oneof![
        Just(("vid, index, city".to_string(), String::new())),
        Just((
            "vid, sum(index) as s, count(*) as n".to_string(),
            " GROUP BY vid ORDER BY vid".to_string()
        )),
        Just((
            "city, min(index) as lo, max(index) as hi, avg(sumHP) as a".to_string(),
            " GROUP BY city ORDER BY city".to_string()
        )),
        Just((
            "SUBSTRING(date, 0, 10) as d, first_value(state) as st, sum(sumHC) as hc"
                .to_string(),
            " GROUP BY SUBSTRING(date, 0, 10) ORDER BY SUBSTRING(date, 0, 10)".to_string()
        )),
        Just(("count(*) as n".to_string(), String::new())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn full_stack_pushdown_is_transparent(
        (sel, tail) in select_strategy(),
        w1 in where_strategy(),
        w2 in where_strategy(),
    ) {
        let sql = format!("SELECT {sel} FROM largemeter WHERE ({w1}) AND ({w2}){tail}");
        let ctx = ctx();
        let vanilla = ctx
            .query("largemeter", &sql, ExecutionMode::Vanilla)
            .unwrap();
        let pushed = ctx
            .query("largemeter", &sql, ExecutionMode::Pushdown)
            .unwrap();
        // Same partitioning in both arms → results should match exactly; use
        // a tight approx to stay robust to float summation order.
        prop_assert!(
            vanilla.result.approx_eq(&pushed.result, 1e-9),
            "mismatch for: {}\nvanilla: {:?}\npushdown: {:?}",
            sql,
            vanilla.result.rows.len(),
            pushed.result.rows.len()
        );
        prop_assert!(
            pushed.metrics.bytes_transferred <= vanilla.metrics.bytes_transferred,
            "pushdown moved more data for: {}",
            sql
        );
    }
}
