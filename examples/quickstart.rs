//! Quickstart: deploy Scoop, upload meter data, run one query both ways.
//!
//! ```text
//! cargo run -p scoop-examples --bin quickstart
//! ```

use scoop_core::{ExecutionMode, ScoopConfig, ScoopContext};
use scoop_workload::{GeneratorConfig, MeterDataset};

fn main() -> scoop_common::Result<()> {
    // 1. Assemble the system: a Swift-like object store with the storlet
    //    engine installed on both tiers, plus the analytics side.
    let ctx = ScoopContext::new(ScoopConfig::default())?;

    // 2. Generate and upload a month of smart-meter readings.
    let mut gen = MeterDataset::new(&GeneratorConfig {
        meters: 100,
        ..Default::default()
    });
    let objects = (0..3)
        .map(|i| (format!("part-{i}.csv"), gen.csv_object(5_000)))
        .collect();
    let report = ctx.upload_csv("meters", objects, None)?;
    println!(
        "uploaded {} objects, {}",
        report.objects,
        scoop_common::ByteSize::b(report.bytes_in)
    );

    // 3. The same SQL, with and without pushdown.
    let sql = "SELECT vid, sum(index) as total, count(*) as readings \
               FROM meters WHERE city LIKE 'Rotterdam' \
               GROUP BY vid ORDER BY vid LIMIT 5";
    let vanilla = ctx.query("meters", sql, ExecutionMode::Vanilla)?;
    let scoop = ctx.query("meters", sql, ExecutionMode::Pushdown)?;

    assert_eq!(vanilla.result, scoop.result, "pushdown must be transparent");
    println!("\nresult ({} rows):\n{}", scoop.result.len(), scoop.result.to_csv());
    println!(
        "vanilla : {:>10} bytes ingested over {} tasks in {:?}",
        vanilla.metrics.bytes_transferred, vanilla.metrics.tasks, vanilla.metrics.wall
    );
    println!(
        "scoop   : {:>10} bytes ingested over {} tasks in {:?}  ({}x less data moved)",
        scoop.metrics.bytes_transferred,
        scoop.metrics.tasks,
        scoop.metrics.wall,
        vanilla.metrics.bytes_transferred / scoop.metrics.bytes_transferred.max(1),
    );
    println!(
        "storlet engine: {} csvfilter invocations, {} records examined",
        ctx.engine().stats("csvfilter").invocations,
        ctx.engine().stats("csvfilter").records_in,
    );
    Ok(())
}
