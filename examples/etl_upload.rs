//! ETL on the PUT path: cleanse raw sensor dumps as they are uploaded, and
//! split the timestamp column — "these transformation simplify Spark
//! workloads without requiring painful rewrites of huge data sets".
//!
//! ```text
//! cargo run -p scoop-examples --bin etl_upload
//! ```

use bytes::Bytes;
use scoop_core::{EtlSpec, ExecutionMode, ScoopConfig, ScoopContext};
use std::collections::HashMap;

fn main() -> scoop_common::Result<()> {
    let ctx = ScoopContext::new(ScoopConfig::default())?;

    // A messy raw dump: stray whitespace, malformed rows, a combined
    // timestamp column.
    let raw = "\
vid,stamp,index
 M001 , 2015-01-03 10:00:00 , 100.5
M002,2015-01-03 10:00:00,200.0
corrupted,row
M003 ,2015-01-03 10:10:00,  50.25
";
    println!("raw upload ({} bytes):\n{raw}", raw.len());

    // Configure the PUT-path ETL: trim + drop malformed + split `stamp`
    // into date and time columns.
    let mut params = HashMap::new();
    params.insert("schema".to_string(), "vid,stamp,index".to_string());
    params.insert("header".to_string(), "1".to_string());
    params.insert("split_column".to_string(), "stamp".to_string());
    let etl = EtlSpec { storlets: "etlcleanse".to_string(), params };

    let report = ctx.upload_csv(
        "sensors",
        vec![("dump-001.csv".to_string(), Bytes::from(raw.to_string()))],
        Some(&etl),
    )?;
    println!(
        "stored {} of {} raw bytes after cleansing\n",
        report.bytes_stored, report.bytes_in
    );

    // What landed in the store:
    let stored = ctx
        .client()
        .get_object("sensors", "dump-001.csv")?
        .read_body()?;
    println!("stored object:\n{}", String::from_utf8_lossy(&stored));

    // And it is immediately queryable — with pushdown — under the new schema.
    let out = ctx.query(
        "sensors",
        "SELECT vid, index FROM sensors WHERE stamp_1 LIKE '2015-01-03' ORDER BY vid",
        ExecutionMode::Pushdown,
    )?;
    println!("query over cleansed data:\n{}", out.result.to_csv());
    assert_eq!(out.result.len(), 3, "corrupted row must be gone");
    Ok(())
}
