//! Failure drill: pushdown queries keep working while object servers die,
//! and the replicator restores full redundancy afterwards — the durability
//! story Swift's ring + replication gives Scoop for free.
//!
//! ```text
//! cargo run -p scoop-examples --bin failure_drill
//! ```

use scoop_core::{ExecutionMode, ScoopConfig, ScoopContext};
use scoop_objectstore::SwiftConfig;
use scoop_workload::{GeneratorConfig, MeterDataset};

fn main() -> scoop_common::Result<()> {
    let ctx = ScoopContext::new(ScoopConfig {
        swift: SwiftConfig {
            object_servers: 6,
            devices_per_server: 2,
            replicas: 3,
            ..Default::default()
        },
        ..Default::default()
    })?;

    let mut gen = MeterDataset::new(&GeneratorConfig {
        meters: 60,
        ..Default::default()
    });
    let objects = (0..6)
        .map(|i| (format!("part-{i}.csv"), gen.csv_object(2_000)))
        .collect();
    ctx.upload_csv("meters", objects, None)?;

    let sql = "SELECT city, count(*) as readings, sum(index) as total \
               FROM meters GROUP BY city ORDER BY city";
    let baseline = ctx.query("meters", sql, ExecutionMode::Pushdown)?;
    println!("baseline (all servers up):\n{}", baseline.result.to_csv());

    // Kill two of the six object servers.
    ctx.cluster().set_server_down(1, true)?;
    ctx.cluster().set_server_down(4, true)?;
    println!("killed object servers 1 and 4");

    let degraded = ctx.query("meters", sql, ExecutionMode::Pushdown)?;
    assert_eq!(baseline.result, degraded.result);
    println!("degraded-mode query returned identical results ✔\n");

    // Writes during the outage under-replicate; repair once healed.
    ctx.upload_csv(
        "meters",
        vec![("late.csv".to_string(), gen.csv_object(500))],
        None,
    )?;
    ctx.cluster().set_server_down(1, false)?;
    ctx.cluster().set_server_down(4, false)?;
    let report = ctx.cluster().repair()?;
    println!(
        "replicator: checked {} objects, restored {} replica copies, lost {}",
        report.objects_checked, report.replicas_restored, report.objects_lost
    );
    assert_eq!(report.objects_lost, 0);
    let clean = ctx.cluster().repair()?;
    assert_eq!(clean.replicas_restored, 0);
    println!("second pass clean — full redundancy restored ✔");
    Ok(())
}
