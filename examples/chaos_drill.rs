//! Chaos drill: the fault-injection harness end to end. Runs a
//! GridPocket-style pushdown query over a cluster injecting transient
//! errors, truncated bodies, stalled reads, and a node down window, prints
//! the fault/recovery counters from every layer of the stack, and probes
//! the failure modes (no retry configured, every node down, tight task
//! retry budget) — wrong answers are never an outcome, only identical
//! results or loud errors.
//!
//! ```text
//! cargo run -p scoop-examples --bin chaos_drill
//! ```

use bytes::Bytes;
use scoop_common::RetryPolicy;
use scoop_compute::{Session, TableFormat};
use scoop_connector::SwiftConnector;
use scoop_objectstore::middleware::Pipeline;
use scoop_objectstore::{FaultPlan, SwiftCluster, SwiftConfig};
use scoop_storlets::{StorletEngine, StorletMiddleware};
use std::sync::Arc;
use std::time::Duration;

fn meter_csv() -> Bytes {
    let mut out = String::from("vid,date,index,city\n");
    for i in 0..400 {
        out.push_str(&format!(
            "m{:02},2015-{:02}-{:02} 10:0{}:00,{}.{},{}\n",
            i % 20,
            i % 12 + 1,
            i % 28 + 1,
            i % 10,
            i,
            i % 100,
            ["Rotterdam", "Paris", "Utrecht", "Delft"][i % 4],
        ));
    }
    Bytes::from(out)
}

const QUERY: &str = "SELECT vid, sum(index) as total, count(*) as n \
    FROM meters WHERE date LIKE '2015-01%' GROUP BY vid ORDER BY vid";

fn build(plan: Option<FaultPlan>, retrying: bool, max_task_failures: u32) -> (Arc<SwiftCluster>, Arc<SwiftConnector>, Session) {
    let cluster = SwiftCluster::new(SwiftConfig {
        fault_plan: plan,
        ..SwiftConfig::default()
    })
    .unwrap();
    let engine = Arc::new(StorletEngine::with_builtin_filters());
    let mut obj = Pipeline::new();
    obj.push(Arc::new(StorletMiddleware::new(engine)));
    cluster.set_object_pipeline(obj);
    let client = cluster.anonymous_client("AUTH_drill");
    let client = if retrying { client.with_retry(RetryPolicy::default()) } else { client };
    client.create_container("meters").unwrap();
    client.put_object("meters", "jan.csv", meter_csv()).unwrap();
    let connector = SwiftConnector::new(client);
    let session = Session::new(connector.clone(), 2)
        .with_chunk_size(2048)
        .with_max_task_failures(max_task_failures);
    session.register_table("meters", "meters", None, TableFormat::Csv { has_header: true }, None);
    (cluster, connector, session)
}

fn main() {
    // Reference: fault-free run.
    let (_c, _conn, session) = build(None, true, 10);
    let reference = session.sql(QUERY).unwrap();
    println!("fault-free result: {} rows", reference.result.rows.len());

    // Mixed-fault run: transient errors + truncations + stalls + a down window.
    let plan = FaultPlan::quiet(0xD1234)
        .with_error_rate(0.15)
        .with_truncate_rate(0.10)
        .with_stalls(0.05, Duration::from_micros(100))
        .with_down_window(1, 50, 200);
    let (cluster, connector, session) = build(Some(plan), true, 10);
    let outcome = session.sql(QUERY).unwrap();
    let stats = cluster.fault_stats();
    println!("\nmixed-fault run:");
    println!("  injected: {} errors, {} truncations, {} stalls, {} down-rejections",
        stats.errors, stats.truncations, stats.stalls, stats.down_rejections);
    println!("  recovered: {} replica failovers, {} client retries, {} stream resumes, {} task retries",
        cluster.replica_failovers(), connector.retries(), connector.stream_resumes(),
        outcome.metrics.task_retries);
    assert_eq!(outcome.result, reference.result);
    println!("  result identical to fault-free run ✔");

    // Probe 1: no retry anywhere — faults must surface loudly, never corrupt.
    let (_c, _conn, session) = build(Some(FaultPlan::transient_errors(0xBAD)), false, 1);
    match session.sql(QUERY) {
        Ok(o) => {
            assert_eq!(o.result, reference.result, "unretried run returned WRONG data");
            println!("\nprobe: retry disabled → query got lucky but result still correct ✔");
        }
        Err(e) => println!("\nprobe: retry disabled → failed loudly: {e} ✔"),
    }

    // Probe 2: every node down forever — must error out, not hang or fabricate.
    let plan = (0..4).fold(FaultPlan::quiet(1), |p, n| p.with_down_window(n, 0, u64::MAX));
    match SwiftCluster::new(SwiftConfig { fault_plan: Some(plan), ..SwiftConfig::default() }) {
        Ok(cluster) => {
            let client = cluster.anonymous_client("AUTH_dead").with_retry(RetryPolicy::default());
            client.create_container("x").unwrap();
            match client.put_object("x", "o", Bytes::from_static(b"hi")) {
                Ok(_) => panic!("PUT succeeded with every node down"),
                Err(e) => println!("probe: all nodes down → PUT refused: {e} ✔"),
            }
        }
        Err(e) => println!("probe: all nodes down → cluster build refused: {e} ✔"),
    }

    // Probe 3: task retry budget of 1 under heavy truncation — wrong data is
    // never acceptable; either identical or a loud retryable error.
    let (_c, _conn, session) = build(Some(FaultPlan::truncated_bodies(0x7B2)), true, 1);
    match session.sql(QUERY) {
        Ok(o) => {
            assert_eq!(o.result, reference.result);
            println!("probe: max_task_failures=1 under truncation → correct ✔");
        }
        Err(e) => println!("probe: max_task_failures=1 under truncation → failed loudly: {e} ✔"),
    }

    // Plain-read arm: a truncated stream must be resumed mid-flight with a
    // ranged GET from the last delivered byte — visible in stream_resumes.
    use scoop_compute::connector::StorageConnector;
    let plan = FaultPlan::quiet(0x9E5).with_truncate_rate(0.35).with_error_rate(0.2);
    let (cluster, connector, _s) = build(Some(plan), true, 10);
    let body = scoop_common::stream::collect(connector.read_from("meters", "jan.csv", 0).unwrap()).unwrap();
    assert_eq!(body, meter_csv(), "plain read corrupted under faults");
    println!(
        "\nplain-read arm: {} bytes byte-identical; {} truncations injected, {} stream resumes, {} client retries, {} failovers",
        body.len(), cluster.fault_stats().truncations, connector.stream_resumes(),
        connector.retries(), cluster.replica_failovers(),
    );

    println!("\nchaos drill complete");
}
