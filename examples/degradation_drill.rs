//! Degradation drill: the overload-protection subsystem end to end. Runs a
//! GridPocket-style pushdown query with a wall-clock budget against a
//! cluster suffering sustained trouble — a slow first replica, a dead
//! second replica, and a saturated storlet engine — and prints what each
//! protection layer did: hedged GETs racing past the slow node, the
//! circuit breaker skipping the dead one, and shed pushdown requests
//! falling back to plain reads with client-side filtering. A control run
//! with the protections off shows the same plan blowing the budget.
//!
//! ```text
//! cargo run -p scoop-examples --bin degradation_drill
//! ```

use bytes::Bytes;
use scoop_common::RetryPolicy;
use scoop_compute::{Session, TableFormat};
use scoop_connector::SwiftConnector;
use scoop_objectstore::middleware::Pipeline;
use scoop_objectstore::{BreakerConfig, FaultPlan, ObjectPath, SwiftCluster, SwiftConfig};
use scoop_storlets::{AdaptivePolicy, PolicyStore, StorletEngine, StorletMiddleware};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn meter_csv() -> Bytes {
    let mut out = String::from("vid,date,index,city\n");
    for i in 0..400 {
        out.push_str(&format!(
            "m{:02},2015-{:02}-{:02} 10:0{}:00,{}.{},{}\n",
            i % 20,
            i % 12 + 1,
            i % 28 + 1,
            i % 10,
            i,
            i % 100,
            ["Rotterdam", "Paris", "Utrecht", "Delft"][i % 4],
        ));
    }
    Bytes::from(out)
}

const QUERY: &str = "SELECT vid, sum(index) as total, count(*) as n \
    FROM meters WHERE date LIKE '2015-01%' AND city LIKE 'Rotterdam' \
    GROUP BY vid ORDER BY vid";

const SLOW_READ: Duration = Duration::from_millis(300);
const BUDGET: Duration = Duration::from_millis(1200);

struct Rig {
    cluster: Arc<SwiftCluster>,
    connector: Arc<SwiftConnector>,
    engine: Arc<StorletEngine>,
    session: Session,
}

/// Build a storlet-enabled cluster, saturate the engine when asked, load
/// the fixture, and hand back every layer's handle.
fn rig(config: SwiftConfig, saturate: bool, budget: Option<Duration>) -> Rig {
    let cluster = SwiftCluster::new(config).unwrap();
    let engine = Arc::new(StorletEngine::with_builtin_filters());
    let mut obj = Pipeline::new();
    obj.push(Arc::new(StorletMiddleware::new(engine.clone())));
    cluster.set_object_pipeline(obj);
    let mut proxy = Pipeline::new();
    proxy.push(Arc::new(StorletMiddleware::with_policy(
        engine.clone(),
        Arc::new(PolicyStore::new()),
    )));
    cluster.set_proxy_pipeline(proxy);
    if saturate {
        let policy = AdaptivePolicy {
            max_concurrent_invocations: Some(0),
            max_queue_depth: 0,
            ..AdaptivePolicy::default()
        };
        policy.apply_admission(&engine);
    }

    let client = cluster
        .anonymous_client("AUTH_gp")
        .with_retry(RetryPolicy::default());
    client.create_container("meters").unwrap();
    client.put_object("meters", "jan.csv", meter_csv()).unwrap();

    let connector = SwiftConnector::new(client);
    let mut session = Session::new(connector.clone(), 2)
        .with_chunk_size(2048)
        .with_max_task_failures(10);
    if let Some(b) = budget {
        session = session.with_time_budget(b);
    }
    session.register_table(
        "meters",
        "meters",
        None,
        TableFormat::Csv { has_header: true },
        None,
    );
    Rig { cluster, connector, engine, session }
}

fn main() {
    // Fault-free reference for byte identity, and to read the ring: its
    // construction is deterministic, so it predicts the overloaded
    // cluster's replica placement.
    let reference = rig(SwiftConfig::default(), false, None);
    let reference_result = reference.session.sql(QUERY).unwrap().result;

    let key = ObjectPath::new("AUTH_gp", "meters", "jan.csv")
        .unwrap()
        .ring_key();
    let ring = reference.cluster.ring();
    let ring = ring.read();
    let replicas = ring.lookup(&key);
    let slow_node = ring.device(replicas[0]).node;
    let down_node = ring.device(replicas[1]).node;
    drop(ring);
    let plan = || {
        FaultPlan::quiet(0xD16)
            .with_slow_node(slow_node, SLOW_READ)
            .with_down_window(down_node, 0, u64::MAX)
    };
    println!(
        "overload plan: node {slow_node} serves every first-replica read {SLOW_READ:?} late, \
         node {down_node} is down for the whole run, storlet engine sheds every pushdown"
    );

    // Protected arm: breaker + hedging + deadline budget.
    let protected = rig(
        SwiftConfig {
            fault_plan: Some(plan()),
            breaker: Some(BreakerConfig {
                failure_threshold: 2,
                open_for: Duration::from_millis(100),
            }),
            hedge_after: Some(Duration::from_millis(3)),
            ..SwiftConfig::default()
        },
        true,
        Some(BUDGET),
    );
    let started = Instant::now();
    let outcome = protected
        .session
        .sql(QUERY)
        .expect("protected query must complete within its budget");
    let wall = started.elapsed();
    assert_eq!(outcome.result, reference_result, "degraded-mode results diverge");
    println!("\nprotected run (budget {BUDGET:?}): finished in {wall:?}, results identical ✔");
    let stats = protected.cluster.fault_stats();
    println!(
        "  injected : {} slow-node delays, {} down-rejections, {} pushdowns shed",
        stats.slow_node_delays,
        stats.down_rejections,
        protected.engine.admission_sheds(),
    );
    println!(
        "  absorbed : {} hedged GETs ({} hedge wins), {} breaker skips, {} pushdown fallbacks",
        protected.cluster.hedged_gets(),
        protected.cluster.hedge_wins(),
        protected.cluster.breaker_skips(),
        protected.connector.pushdown_fallbacks(),
    );

    // Control arm: same faults, same saturation, same budget — no breaker,
    // no hedging. Sequential reads through the slow node are sleep-bound
    // past the budget, so the deadline fails the query loudly.
    let unprotected = rig(
        SwiftConfig {
            fault_plan: Some(plan()),
            ..SwiftConfig::default()
        },
        true,
        Some(BUDGET),
    );
    let started = Instant::now();
    let err = unprotected
        .session
        .sql(QUERY)
        .expect_err("unprotected run must exhaust its budget");
    println!(
        "\nunprotected run (same plan, same budget): failed after {:?} with \"{err}\" ✔",
        started.elapsed()
    );
    assert_eq!(err.kind(), "deadline");

    println!("\ndegradation drill complete");
}
