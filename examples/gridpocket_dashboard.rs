//! The GridPocket dashboard workload: run all seven Table I queries (the
//! ones behind the company's heatmaps, cluster maps and consumption graphs),
//! compare both arms, and project the speedups onto the paper's testbed.
//!
//! ```text
//! cargo run -p scoop-examples --bin gridpocket_dashboard --release
//! ```

use scoop_cluster::simulate::simulate;
use scoop_cluster::{CostModel, SimJob, SimMode, Topology};
use scoop_common::table::TextTable;
use scoop_core::{ExecutionMode, ScoopConfig, ScoopContext};
use scoop_workload::selectivity::measure;
use scoop_workload::{table1_queries, GeneratorConfig, MeterDataset};

fn main() -> scoop_common::Result<()> {
    let ctx = ScoopContext::new(ScoopConfig {
        chunk_size: 256 * 1024,
        workers: 8,
        ..Default::default()
    })?;

    // Upload ~2 months of data; measure selectivity on a year-long sample.
    let config = GeneratorConfig {
        meters: 150,
        interval_minutes: 6 * 60,
        ..Default::default()
    };
    let mut gen = MeterDataset::new(&config);
    let objects = (0..4)
        .map(|i| (format!("part-{i}.csv"), gen.csv_object(10_000)))
        .collect();
    let report = ctx.upload_csv("largemeter", objects, None)?;
    println!(
        "dataset: {} across {} objects\n",
        scoop_common::ByteSize::b(report.bytes_in),
        report.objects
    );
    let mut year_gen = MeterDataset::new(&GeneratorConfig {
        interval_minutes: 2 * 24 * 60,
        ..config
    });
    let year_sample = year_gen.csv_object(150 * 300);

    let mut table = TextTable::new(vec![
        "query",
        "rows",
        "data selec.",
        "bytes vanilla",
        "bytes scoop",
        "projected S_Q @500GB",
    ]);
    let topology = Topology::osic();
    let model = CostModel::paper_default();
    for q in table1_queries() {
        let vanilla = ctx.query("largemeter", &q.sql, ExecutionMode::Vanilla)?;
        let scoop = ctx.query("largemeter", &q.sql, ExecutionMode::Pushdown)?;
        assert_eq!(vanilla.result, scoop.result);
        let sel = measure(&q.sql, &year_sample)?.data;
        let gb500 = 500_000_000_000u64;
        let t_vanilla = simulate(
            &SimJob { dataset_bytes: gb500, data_selectivity: 0.0, mode: SimMode::Vanilla, tasks: 4000 },
            &topology,
            &model,
        )
        .duration;
        let t_scoop = simulate(
            &SimJob { dataset_bytes: gb500, data_selectivity: sel, mode: SimMode::Pushdown, tasks: 4000 },
            &topology,
            &model,
        )
        .duration;
        table.row(vec![
            q.name.to_string(),
            scoop.result.len().to_string(),
            format!("{:.2}%", sel * 100.0),
            vanilla.metrics.bytes_transferred.to_string(),
            scoop.metrics.bytes_transferred.to_string(),
            format!("{:.1}x", t_vanilla / t_scoop),
        ]);
    }
    println!("{}", table.render());
    println!("(each query's results were verified identical across both arms)");
    Ok(())
}
