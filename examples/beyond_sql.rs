//! Beyond SQL pushdown — the Section VII roadmap, working end to end:
//!
//! 1. the **Spark-Storlets dataset**: explicit storlet invocation from task
//!    code, bypassing the Hadoop layer (storage-side aggregation per object);
//! 2. a **non-textual data source**: EXIF-style metadata extracted from
//!    binary image objects and queried as a table;
//! 3. **adaptive pushdown**: a control process demotes a tenant whose
//!    filters stop being selective, and restores it when load allows.
//!
//! ```text
//! cargo run -p scoop-examples --bin beyond_sql
//! ```

use bytes::Bytes;
use scoop_compute::{StorageConnector, StorletDataset, StorletPartitioning};
use scoop_connector::SwiftConnector;
use scoop_core::{ScoopConfig, ScoopContext};
use scoop_storlets::adaptive::{AdaptiveController, AdaptivePolicy};
use scoop_storlets::filters::metadata::encode_simg;
use scoop_storlets::Tier;
use scoop_workload::{GeneratorConfig, MeterDataset};
use std::collections::HashMap;

fn main() -> scoop_common::Result<()> {
    let ctx = ScoopContext::new(ScoopConfig::default())?;

    // ---- 1. Storage-side aggregation via the Storlet dataset ------------
    let mut gen = MeterDataset::new(&GeneratorConfig {
        meters: 50,
        ..Default::default()
    });
    let objects = (0..4)
        .map(|i| (format!("day-{i}.csv"), gen.csv_object(3_000)))
        .collect();
    ctx.upload_csv("readings", objects, None)?;

    let mut params = HashMap::new();
    params.insert("column".to_string(), "index".to_string());
    params.insert(
        "schema".to_string(),
        scoop_workload::generator::meter_schema().names().join(","),
    );
    params.insert("header".to_string(), "1".to_string());
    let connector = SwiftConnector::new(ctx.client().clone());
    let rdd = StorletDataset::new(connector.clone(), "readings", "aggregate", params)
        .with_partitioning(StorletPartitioning::PerObject)
        .with_workers(4);
    // Each partition's output is a one-row CSV of count/sum/min/max/mean —
    // aggregation happened inside the object store.
    let per_object: Vec<(usize, f64)> = rdd.map_partitions(|i, out| {
        let text = String::from_utf8_lossy(&out).into_owned();
        let sum: f64 = text
            .lines()
            .nth(1)
            .and_then(|l| l.split(',').nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0);
        Ok((i, sum))
    })?;
    println!("storage-side per-object aggregation (bypassing the SQL layer):");
    for (i, sum) in &per_object {
        println!("  object {i}: sum(index) = {sum:.1}");
    }
    println!(
        "  bytes over the wire: {} (the objects hold {} of CSV)\n",
        connector.bytes_transferred(),
        scoop_common::ByteSize::b(ctx.cluster().bytes_stored() / 3),
    );

    // ---- 2. Non-textual objects: EXIF-like metadata as a table ----------
    let photos: Vec<(String, Bytes)> = (0..3)
        .map(|i| {
            let lat = format!("{:.2}", 51.0 + i as f64);
            let tags = [
                ("camera", "GP-Cam 3000"),
                ("taken", "2015-01-03 10:20:00"),
                ("lat", lat.as_str()),
            ];
            (
                format!("photo-{i}.simg"),
                Bytes::from(encode_simg(&tags, &vec![0u8; 500_000])),
            )
        })
        .collect();
    ctx.upload_csv("photos", photos, None)?;
    let mut params = HashMap::new();
    params.insert("keys".to_string(), "camera,lat".to_string());
    let photo_rdd = StorletDataset::new(connector.clone(), "photos", "metaextract", params);
    println!("EXIF-style metadata pulled from 1.5 MB of binary images:");
    for out in photo_rdd.collect_bytes()? {
        print!("{}", String::from_utf8_lossy(&out));
    }

    // ---- 3. Adaptive pushdown ------------------------------------------
    let controller =
        AdaptiveController::new(ctx.policy().clone(), AdaptivePolicy::default());
    controller.register_tenant("AUTH_gridpocket", 1);
    // Simulate a run of barely-selective filters being observed.
    for _ in 0..5 {
        controller.observe("AUTH_gridpocket", 1_000_000, 950_000);
    }
    let changes = controller.control_step(0.4);
    println!("\nadaptive controller decisions: {changes:?}");
    assert_eq!(ctx.policy().tier_of("AUTH_gridpocket"), Tier::Bronze);
    println!("tenant demoted to Bronze: its requests now ingest the traditional way");
    // The workload becomes selective again.
    for _ in 0..60 {
        controller.observe("AUTH_gridpocket", 1_000_000, 20_000);
    }
    let changes = controller.control_step(0.4);
    println!("after selective workloads return: {changes:?}");
    assert_eq!(ctx.policy().tier_of("AUTH_gridpocket"), Tier::Gold);
    Ok(())
}
