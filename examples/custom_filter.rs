//! Extending the active-storage layer: write, deploy and invoke a custom
//! storlet — "a third party integrating a new pushdown filter only needs to
//! contribute the logic; the deployment and execution of the filter is
//! managed by the system".
//!
//! The custom filter here anonymizes meter ids on the fly (the paper's
//! datasets are anonymized versions of production data), and is then
//! pipelined with the built-in compression storlet.
//!
//! ```text
//! cargo run -p scoop-examples --bin custom_filter
//! ```

use bytes::Bytes;
use scoop_common::{ByteStream, Result};
use scoop_core::{ScoopConfig, ScoopContext};
use scoop_csv::record::{parse_fields, write_record, RecordSplitter};
use scoop_objectstore::request::Request;
use scoop_objectstore::ObjectPath;
use scoop_storlets::middleware::{encode_params, headers};
use scoop_storlets::{InvocationContext, Storlet};
use std::collections::HashMap;
use std::sync::Arc;

/// Replaces the first CSV field with a salted hash — streamed, like every
/// storlet.
struct AnonymizeStorlet;

impl Storlet for AnonymizeStorlet {
    fn name(&self) -> &str {
        "anonymize"
    }

    fn invoke(&self, input: ByteStream, ctx: InvocationContext) -> Result<ByteStream> {
        let salt = ctx.params.get("salt").cloned().unwrap_or_default();
        ctx.logger.log("anonymize: started");
        let mut splitter = Some(RecordSplitter::new());
        let mut input = Some(input);
        let stream = std::iter::from_fn(move || loop {
            splitter.as_ref()?;
            let mut out: Vec<u8> = Vec::new();
            let salt = salt.clone();
            let rewrite = |record: &[u8], out: &mut Vec<u8>| {
                let fields = parse_fields(record);
                let mut cells: Vec<String> =
                    fields.iter().map(|c| c.to_string()).collect();
                if let Some(first) = cells.first_mut() {
                    let h = scoop_common::hash::hash64(
                        format!("{salt}:{first}").as_bytes(),
                    );
                    *first = format!("anon-{h:012x}");
                }
                let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
                write_record(out, &refs);
            };
            match input.as_mut().and_then(Iterator::next) {
                Some(Err(e)) => return Some(Err(e)),
                Some(Ok(chunk)) => {
                    if let Err(e) = splitter
                        .as_mut()
                        .expect("checked above")
                        .push(&chunk, |r| rewrite(r, &mut out))
                    {
                        splitter = None;
                        return Some(Err(e));
                    }
                }
                None => {
                    splitter
                        .take()
                        .expect("checked above")
                        .finish(|r| rewrite(r, &mut out));
                    input = None;
                }
            }
            if !out.is_empty() {
                return Some(Ok(Bytes::from(out)));
            }
            splitter.as_ref()?;
        });
        Ok(Box::new(stream))
    }
}

fn main() -> Result<()> {
    let ctx = ScoopContext::new(ScoopConfig::default())?;

    // Deploy the new filter "on-the-fly" — no store restart, no code changes
    // to the object store.
    ctx.engine().deploy(Arc::new(AnonymizeStorlet));
    println!("deployed storlets: {:?}\n", ctx.engine().deployed());

    let data = "M001,2015-01-03,100.5\nM002,2015-01-03,200.0\n";
    ctx.upload_csv(
        "readings",
        vec![("jan.csv".to_string(), Bytes::from(data.to_string()))],
        None,
    )?;

    // Invoke it on a GET, pipelined with compression.
    let mut params = HashMap::new();
    params.insert("salt".to_string(), "s3cret".to_string());
    let path = ObjectPath::new("AUTH_gridpocket", "readings", "jan.csv")?;
    let req = Request::get(path)
        .with_header(headers::RUN_STORLET, "anonymize,rlecompress")
        .with_header(headers::PARAMETERS, encode_params(&params));
    let compressed = ctx.client().request(req)?.read_body()?;
    let restored =
        scoop_storlets::filters::compress::rle_decompress(&compressed)?;
    println!("anonymized + compressed response ({} bytes):", compressed.len());
    println!("{}", String::from_utf8_lossy(&restored));
    assert!(!String::from_utf8_lossy(&restored).contains("M001"));
    Ok(())
}
