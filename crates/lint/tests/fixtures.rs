//! End-to-end fixture tests: known violations in `tests/fixtures/` must
//! produce *exactly* the expected findings — positives and negatives in
//! one assertion, so a regression in any pass (missed finding or fresh
//! false positive) fails loudly.
//!
//! The fixtures are never compiled (cargo only builds top-level files in
//! `tests/`), and the workspace scan skips `crates/lint` entirely, so the
//! deliberate bugs cannot leak into real lint runs.

use scoop_lint::analyze;
use scoop_lint::findings::Severity;
use std::collections::BTreeSet;

/// Load a fixture under a synthetic workspace path (the linter's
/// crate-based rules key off the path).
fn fixture(name: &str, synthetic_path: &str) -> (String, String) {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {path}: {e}"));
    (synthetic_path.to_string(), src)
}

#[test]
fn fixtures_produce_exactly_the_expected_findings() {
    let files = vec![
        fixture("deadlock.rs", "crates/objectstore/src/fixture_deadlock.rs"),
        fixture("panics.rs", "crates/storlets/src/fixture_panics.rs"),
        fixture("invariants.rs", "crates/common/src/fixture_invariants.rs"),
    ];
    let findings = analyze(&files);
    let got: BTreeSet<String> = findings.iter().map(|f| f.fingerprint()).collect();
    let want: BTreeSet<String> = [
        // deadlock.rs: the cycle (deny) and the sleep under guard (warn);
        // `fast_append` (drop before sleep) and the correctly-ordered
        // `forward` alone produce nothing.
        "lock-order|crates/objectstore/src/fixture_deadlock.rs|Journal::backward|lock-cycle:Journal.entries,Registry.nodes",
        "lock-order|crates/objectstore/src/fixture_deadlock.rs|Journal::slow_append|blocking-under-guard:Journal.entries:sleep",
        // panics.rs: deny panic sites; `justified` is suppressed by its
        // lint:allow; the empty allow is itself a finding; `clean` and the
        // #[cfg(test)] module produce nothing.
        "panic-path|crates/storlets/src/fixture_panics.rs|unwraps|unwrap",
        "panic-path|crates/storlets/src/fixture_panics.rs|expects|expect",
        "panic-path|crates/storlets/src/fixture_panics.rs|panics|panic!",
        "panic-path|crates/storlets/src/fixture_panics.rs|empty_justification|allow-without-justification",
        "panic-path|crates/storlets/src/fixture_panics.rs|indexes|indexing",
        "panic-path|crates/storlets/src/fixture_panics.rs|adds|arithmetic",
        // invariants.rs: unclassified variants, the wildcard arm, the
        // smuggled header, the unbounded retry; `bounded_retry` produces
        // nothing.
        "invariants|crates/common/src/fixture_invariants.rs|ScoopError::class|error-variant-unclassified:Overloaded",
        "invariants|crates/common/src/fixture_invariants.rs|ScoopError::class|error-variant-unclassified:Corrupt",
        "invariants|crates/common/src/fixture_invariants.rs|ScoopError::class|error-classification-wildcard",
        "invariants|crates/common/src/fixture_invariants.rs|smuggled_header|header-literal:x-smuggled-header",
        "invariants|crates/common/src/fixture_invariants.rs|unbounded_retry|retry-loop-without-deadline",
        // ... the socket dialed and read with no read timeout;
        // `timed_socket_read` (same dial, timeout configured) is clean.
        "invariants|crates/common/src/fixture_invariants.rs|raw_socket_read|tcp-read-without-timeout",
        // ... and the hand-spelled trace header, caught even inside the
        // fixture's #[cfg(test)] module (rule 2 skips it, rule 4 must not).
        "invariants|crates/common/src/fixture_invariants.rs|tests::stamps_trace_by_hand|trace-header-literal",
        // ... and the hand-spelled span layer; `const_layer_span` (layer via
        // the constant) and `csv_field_span` (unrelated `span` method with
        // no string second argument) are clean.
        "invariants|crates/common/src/fixture_invariants.rs|literal_layer_span|span-layer-literal:proxy",
    ]
    .into_iter()
    .map(str::to_string)
    .collect();

    let missing: Vec<_> = want.difference(&got).collect();
    let unexpected: Vec<_> = got.difference(&want).collect();
    assert!(
        missing.is_empty() && unexpected.is_empty(),
        "missing findings: {missing:#?}\nunexpected findings: {unexpected:#?}"
    );

    // Severity split: the two per-function panic heuristics are warn
    // (baselined), the sleep-under-guard is warn, everything else denies.
    let deny = findings.iter().filter(|f| f.severity == Severity::Deny).count();
    let warn = findings.iter().filter(|f| f.severity == Severity::Warn).count();
    assert_eq!((deny, warn), (13, 3), "severity split changed");
}

#[test]
fn clean_fixture_set_is_finding_free() {
    // The justified allow and test-only code paths, alone: no findings at
    // all (guards the suppression logic against over-reporting when the
    // noisy fixtures are absent).
    let src = r#"
        pub fn careful(v: Option<u32>) -> u32 {
            // lint:allow(verified non-empty by the caller's constructor)
            v.unwrap()
        }
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() {
                assert_eq!(super::careful(Some(2)), 2);
            }
        }
    "#;
    let files = vec![("crates/objectstore/src/fixture_clean.rs".to_string(), src.to_string())];
    let findings: Vec<_> = analyze(&files)
        .into_iter()
        // The single-file set has no ScoopError definition; ignore the
        // classification-missing finding that correctly reports that.
        .filter(|f| f.detail != "error-classification-missing")
        .collect();
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}
