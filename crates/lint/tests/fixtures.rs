//! End-to-end fixture tests: known violations in `tests/fixtures/` must
//! produce *exactly* the expected findings — positives and negatives in
//! one assertion, so a regression in any pass (missed finding or fresh
//! false positive) fails loudly.
//!
//! The fixtures are never compiled (cargo only builds top-level files in
//! `tests/`), and the workspace scan skips `crates/lint` entirely, so the
//! deliberate bugs cannot leak into real lint runs.

use scoop_lint::analyze;
use scoop_lint::findings::Severity;
use std::collections::BTreeSet;

/// Load a fixture under a synthetic workspace path (the linter's
/// crate-based rules key off the path).
fn fixture(name: &str, synthetic_path: &str) -> (String, String) {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {path}: {e}"));
    (synthetic_path.to_string(), src)
}

#[test]
fn fixtures_produce_exactly_the_expected_findings() {
    let files = vec![
        fixture("deadlock.rs", "crates/objectstore/src/fixture_deadlock.rs"),
        fixture("panics.rs", "crates/storlets/src/fixture_panics.rs"),
        fixture("invariants.rs", "crates/common/src/fixture_invariants.rs"),
    ];
    let findings = analyze(&files);
    let got: BTreeSet<String> = findings.iter().map(|f| f.fingerprint()).collect();
    let want: BTreeSet<String> = [
        // deadlock.rs: the cycle (deny) and the sleep under guard, now
        // reported by the interprocedural blocking pass with its class
        // named (deny); `fast_append` (drop before sleep) and the
        // correctly-ordered `forward` alone produce nothing.
        "lock-order|crates/objectstore/src/fixture_deadlock.rs|Journal::backward|lock-cycle:Journal.entries,Registry.nodes",
        "transitive-blocking|crates/objectstore/src/fixture_deadlock.rs|Journal::slow_append|held-across:Journal.entries:sleep:sleep",
        // panics.rs: deny panic sites; `justified` is suppressed by its
        // lint:allow; the empty allow is itself a finding; `clean` and the
        // #[cfg(test)] module produce nothing.
        "panic-path|crates/storlets/src/fixture_panics.rs|unwraps|unwrap",
        "panic-path|crates/storlets/src/fixture_panics.rs|expects|expect",
        "panic-path|crates/storlets/src/fixture_panics.rs|panics|panic!",
        "panic-path|crates/storlets/src/fixture_panics.rs|empty_justification|allow-without-justification",
        "panic-path|crates/storlets/src/fixture_panics.rs|indexes|indexing",
        "panic-path|crates/storlets/src/fixture_panics.rs|adds|arithmetic",
        // invariants.rs: unclassified variants, the wildcard arm, the
        // smuggled header, the unbounded retry; `bounded_retry` produces
        // nothing.
        "invariants|crates/common/src/fixture_invariants.rs|ScoopError::class|error-variant-unclassified:Overloaded",
        "invariants|crates/common/src/fixture_invariants.rs|ScoopError::class|error-variant-unclassified:Corrupt",
        "invariants|crates/common/src/fixture_invariants.rs|ScoopError::class|error-classification-wildcard",
        "invariants|crates/common/src/fixture_invariants.rs|smuggled_header|header-literal:x-smuggled-header",
        "invariants|crates/common/src/fixture_invariants.rs|unbounded_retry|retry-loop-without-deadline",
        // ... the socket dialed and read with no read timeout;
        // `timed_socket_read` (same dial, timeout configured) is clean.
        "invariants|crates/common/src/fixture_invariants.rs|raw_socket_read|tcp-read-without-timeout",
        // ... and the hand-spelled trace header, caught even inside the
        // fixture's #[cfg(test)] module (rule 2 skips it, rule 4 must not).
        "invariants|crates/common/src/fixture_invariants.rs|tests::stamps_trace_by_hand|trace-header-literal",
        // ... and the hand-spelled span layer; `const_layer_span` (layer via
        // the constant) and `csv_field_span` (unrelated `span` method with
        // no string second argument) are clean.
        "invariants|crates/common/src/fixture_invariants.rs|literal_layer_span|span-layer-literal:proxy",
    ]
    .into_iter()
    .map(str::to_string)
    .collect();

    let missing: Vec<_> = want.difference(&got).collect();
    let unexpected: Vec<_> = got.difference(&want).collect();
    assert!(
        missing.is_empty() && unexpected.is_empty(),
        "missing findings: {missing:#?}\nunexpected findings: {unexpected:#?}"
    );

    // Severity split: the two per-function panic heuristics are warn
    // (baselined); the sleep under guard denies (a guard-holding sleep
    // serialises every contender); everything else denies too.
    let deny = findings.iter().filter(|f| f.severity == Severity::Deny).count();
    let warn = findings.iter().filter(|f| f.severity == Severity::Warn).count();
    assert_eq!((deny, warn), (14, 2), "severity split changed");
}

/// Fingerprints emitted by one pass over one fixture (the fixture files
/// deliberately trip other passes too — e.g. the net-plane deadline
/// fixture also violates the per-function invariants rules — so each
/// pass's suite asserts exactly its own findings).
fn pass_fingerprints(files: &[(String, String)], pass: &str) -> BTreeSet<String> {
    analyze(files).into_iter().filter(|f| f.pass == pass).map(|f| f.fingerprint()).collect()
}

fn assert_exact(got: &BTreeSet<String>, want: &[&str]) {
    let want: BTreeSet<String> = want.iter().map(|s| s.to_string()).collect();
    let missing: Vec<_> = want.difference(got).collect();
    let unexpected: Vec<_> = got.difference(&want).collect();
    assert!(
        missing.is_empty() && unexpected.is_empty(),
        "missing findings: {missing:#?}\nunexpected findings: {unexpected:#?}"
    );
}

#[test]
fn deadline_flow_fixture_produces_exactly_the_expected_findings() {
    // Loaded under a synthetic net-plane path so the pass scopes to it.
    let files = vec![fixture("deadline_flow.rs", "crates/objectstore/src/net/wire.rs")];
    let got = pass_fingerprints(&files, "deadline-flow");
    assert_exact(
        &got,
        &[
            // No timeout on any path to the read: rule 1 at the root.
            "deadline-flow|crates/objectstore/src/net/wire.rs|naked_poll|unbounded-read:naked_poll",
            // A static default satisfies rule 1, but the in-scope deadline
            // never flows: rule 2.
            "deadline-flow|crates/objectstore/src/net/wire.rs|fetch_with_default|deadline-unflowed-read:fetch_with_default",
            // Unestablished write sink.
            "deadline-flow|crates/objectstore/src/net/wire.rs|push_frame|unbounded-write:push_frame",
            // Literal TcpStream::connect.
            "deadline-flow|crates/objectstore/src/net/wire.rs|plain_dial|unbounded-connect",
            // Negatives riding along: `fetch` (deadline established two
            // frames above the sink via `tighten_for` -> `recv_into`),
            // the `Conn::read` trait adapter, the generic `encode_frame`
            // root, `careful_dial` (connect_timeout) and the allowed
            // `probed_poll` all stay silent.
        ],
    );
    for f in analyze(&files) {
        if f.pass == "deadline-flow" {
            assert_eq!(f.severity, Severity::Deny, "{} must deny", f.fingerprint());
        }
    }
}

#[test]
fn trace_propagation_fixture_produces_exactly_the_expected_findings() {
    let files = vec![fixture("trace_prop.rs", "crates/objectstore/src/client_paths.rs")];
    let got = pass_fingerprints(&files, "trace-propagation");
    assert_exact(
        &got,
        &[
            // Egress that neither attaches nor forwards.
            "trace-propagation|crates/objectstore/src/client_paths.rs|untraced_send|no-trace-attach:send",
            // Forwarding function with no resolved callers: unprovable.
            "trace-propagation|crates/objectstore/src/client_paths.rs|orphan_forward|no-trace-attach:send",
            // send_raw egress caught by name.
            "trace-propagation|crates/objectstore/src/client_paths.rs|bare_raw_push|no-trace-attach:send_raw",
            // The response path that skips the trailer decode.
            "trace-propagation|crates/objectstore/src/client_paths.rs|finish_leaky|completion-without-span-merge",
            // Response head without the span trailer.
            "trace-propagation|crates/objectstore/src/client_paths.rs|reply_headless|head-without-span-trailer",
            // Negatives: `traced_send` (attaches directly), `forward_send`
            // (obligation discharged by its attaching caller), the exempt
            // `Pool::checkin` primitive, the balanced `finish_clean`,
            // `reply_clean`, and the allowed `metrics_push`.
        ],
    );
}

#[test]
fn transitive_blocking_fixture_produces_exactly_the_expected_findings() {
    let files = vec![fixture("blocking.rs", "crates/objectstore/src/cache_sync.rs")];
    let findings: Vec<_> =
        analyze(&files).into_iter().filter(|f| f.pass == "transitive-blocking").collect();
    let got: BTreeSet<String> = findings.iter().map(|f| f.fingerprint()).collect();
    assert_exact(
        &got,
        &[
            // Sleep two frames below the guard: deny.
            "transitive-blocking|crates/objectstore/src/cache_sync.rs|Cache::rebuild|held-across:Cache.map:backoff_pause:sleep",
            // Channel receive one frame below the guard: warn.
            "transitive-blocking|crates/objectstore/src/cache_sync.rs|Cache::drain|held-across:Cache.map:wait_for_signal:channel-recv",
            // Direct receive under the guard: warn at the site.
            "transitive-blocking|crates/objectstore/src/cache_sync.rs|Cache::drain_inline|held-across:Cache.map:recv:channel-recv",
            // Negatives: `rebuild_outside` (guard dropped first), `tally`
            // (non-blocking resolved callee), and the allowed `warmed`.
        ],
    );
    for f in &findings {
        let want = if f.detail.ends_with(":sleep") { Severity::Deny } else { Severity::Warn };
        assert_eq!(f.severity, want, "severity of {}", f.fingerprint());
    }
}

// ---- whole-workspace properties -----------------------------------------

fn workspace_files() -> Vec<(String, String)> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    scoop_lint::collect_workspace(&root).expect("collecting workspace sources")
}

#[test]
fn workspace_has_no_deny_findings() {
    // The real workspace must be deny-free: denies cannot be baselined, so
    // any deny here is a red CI gate.
    let denies: Vec<_> = analyze(&workspace_files())
        .into_iter()
        .filter(|f| f.severity == Severity::Deny)
        .map(|f| f.fingerprint())
        .collect();
    assert!(denies.is_empty(), "deny findings in the workspace: {denies:#?}");
}

#[test]
fn seeded_read_timeout_regression_turns_the_gate_red() {
    // Remove the read-timeout establishment one call frame below the
    // senders (Conn::tighten): the pool still gets a *default* timeout from
    // `dial`, so rule 1 stays green, but the request deadline no longer
    // flows into the socket — rule 2 must catch it.
    let mut files = workspace_files();
    let pool = files
        .iter_mut()
        .find(|(p, _)| p.ends_with("objectstore/src/net/pool.rs"))
        .expect("pool.rs in workspace");
    let seeded = pool.1.replacen("self.write.set_read_timeout", "self.write.skip_read_timeout", 1);
    assert_ne!(seeded, pool.1, "seed site not found");
    pool.1 = seeded;
    let hits: Vec<_> = analyze(&files)
        .into_iter()
        .filter(|f| {
            f.pass == "deadline-flow"
                && f.severity == Severity::Deny
                && f.detail.starts_with("deadline-unflowed-read")
        })
        .map(|f| f.fingerprint())
        .collect();
    assert!(!hits.is_empty(), "seeded timeout removal produced no deadline-flow deny");
}

#[test]
fn seeded_trailer_skip_regression_turns_the_gate_red() {
    // Drop one merge_server_spans call from HttpPool::exchange: one of its
    // two completion paths now finishes without decoding the span trailer.
    let mut files = workspace_files();
    let pool = files
        .iter_mut()
        .find(|(p, _)| p.ends_with("objectstore/src/net/pool.rs"))
        .expect("pool.rs in workspace");
    let seeded = pool.1.replacen(
        "merge_server_spans(&mut conn, trace.as_deref(), window_start_us);",
        "();",
        1,
    );
    assert_ne!(seeded, pool.1, "seed site not found");
    pool.1 = seeded;
    let hit = analyze(&files).into_iter().any(|f| {
        f.pass == "trace-propagation"
            && f.severity == Severity::Deny
            && f.detail == "completion-without-span-merge"
            && f.function.contains("exchange")
    });
    assert!(hit, "seeded trailer skip produced no trace-propagation deny");
}

#[test]
fn call_graph_builds_deterministically_over_the_whole_workspace() {
    // Robustness: the builder must survive every real workspace file (no
    // panics) and produce a stable node count across rebuilds.
    let files = workspace_files();
    let parsed: Vec<_> =
        files.iter().map(|(p, s)| scoop_lint::model::parse_file(p, s)).collect();
    let a = scoop_lint::analysis::Graph::build(&parsed);
    let b = scoop_lint::analysis::Graph::build(&parsed);
    assert_eq!(a.nodes.len(), b.nodes.len(), "node count not stable across builds");
    assert!(
        a.nodes.len() >= 150,
        "suspiciously small workspace call graph: {} nodes",
        a.nodes.len()
    );
    let resolved_a: usize =
        a.calls.iter().map(|cs| cs.iter().filter(|c| c.target.is_some()).count()).sum();
    let resolved_b: usize =
        b.calls.iter().map(|cs| cs.iter().filter(|c| c.target.is_some()).count()).sum();
    assert_eq!(resolved_a, resolved_b, "resolution not stable across builds");
    assert!(resolved_a > 0, "no call resolved anywhere in the workspace");
}

#[test]
fn clean_fixture_set_is_finding_free() {
    // The justified allow and test-only code paths, alone: no findings at
    // all (guards the suppression logic against over-reporting when the
    // noisy fixtures are absent).
    let src = r#"
        pub fn careful(v: Option<u32>) -> u32 {
            // lint:allow(verified non-empty by the caller's constructor)
            v.unwrap()
        }
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() {
                assert_eq!(super::careful(Some(2)), 2);
            }
        }
    "#;
    let files = vec![("crates/objectstore/src/fixture_clean.rs".to_string(), src.to_string())];
    let findings: Vec<_> = analyze(&files)
        .into_iter()
        // The single-file set has no ScoopError definition; ignore the
        // classification-missing finding that correctly reports that.
        .filter(|f| f.detail != "error-classification-missing")
        .collect();
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}
