//! Trace-propagation fixture: egress with and without the trace attached
//! (directly, via a forwarding chain, or not at all), response completions
//! with and without the span-trailer decode, and response heads with and
//! without the trailer emit. Loaded under a non-`net/` objectstore path so
//! rule 1 applies.

pub struct Pool {
    idle: Vec<Conn>,
}

impl Pool {
    fn evict(&mut self, conn: Conn) {
        drop(conn);
    }

    /// The completion primitive itself calls `evict` on overflow, but is
    /// exempt from the balance rule by name.
    fn checkin(&mut self, conn: Conn) {
        if self.idle.len() >= MAX_IDLE {
            self.evict(conn);
            return;
        }
        self.idle.push(conn);
    }
}

/// Attaches the trace before egress: clean.
fn traced_send(pool: &Pool, req: &mut Request) {
    req.headers.set(headers::TRACE, next_trace_id());
    let _ = pool.send(req);
}

/// Forwards a caller's request to the wire; its only caller attaches the
/// trace, so the obligation is discharged one frame up: clean.
fn forward_send(pool: &Pool, req: Request) {
    let _ = pool.send(&req);
}

/// The attaching caller of `forward_send`.
fn attach_then_forward(pool: &Pool, mut req: Request) {
    req.headers.set(headers::TRACE, next_trace_id());
    forward_send(pool, req);
}

/// Egress with no attach and no forwarding signature: deny.
fn untraced_send(pool: &Pool, payload: &[u8]) {
    let _ = pool.send(payload);
}

/// Forwards a request but has no resolved callers: unprovable, deny.
fn orphan_forward(pool: &Pool, req: Request) {
    let _ = pool.send(&req);
}

/// `send_raw` egress is caught by name even without a `pool.` receiver.
fn bare_raw_push(client: &HttpClient, target: &str) {
    let _ = client.send_raw(target);
}

/// Suppressed by a justified allow.
fn metrics_push(pool: &Pool, payload: &[u8]) {
    // lint:allow(internal metrics channel, trace attached by the sink)
    let _ = pool.send(payload);
}

/// Completion balanced by a span decode: clean.
fn finish_clean(pool: &mut Pool, mut conn: Conn, trace: Option<&str>) {
    merge_server_spans(&mut conn, trace, 0);
    pool.checkin(conn);
}

/// The response finishes (evict) without decoding the span trailer — the
/// required "response path that skips the trailer decode" case: deny.
fn finish_leaky(pool: &mut Pool, conn: Conn) {
    pool.evict(conn);
}

/// Head plus trailer: clean.
fn reply_clean(out: &mut Vec<u8>, status: u16) {
    encode_response_head(out, status);
    server_span_trailer(out);
}

/// Error termination that forgets the trailer: deny.
fn reply_headless(out: &mut Vec<u8>, status: u16) {
    encode_response_head(out, status);
}
