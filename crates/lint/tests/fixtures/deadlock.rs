//! Lock-order fixture: a known deadlock cycle, a transitive edge through a
//! helper, a blocking call under a guard, and a correctly-ordered pair
//! that must NOT be flagged.

pub struct Registry {
    nodes: Mutex<Vec<u32>>,
}

pub struct Journal {
    entries: Mutex<Vec<String>>,
}

impl Registry {
    /// Acquires Registry.nodes then Journal.entries.
    pub fn forward(&self, journal: &Journal) {
        let guard = self.nodes.lock();
        let mut log = journal.entries.lock();
        log.push(format!("{}", guard.len()));
    }
}

impl Journal {
    /// Acquires Journal.entries then (transitively, via a uniquely-named
    /// helper) Registry.nodes — the reverse order: a cycle.
    pub fn backward(&self, registry: &Registry) {
        let log = self.entries.lock();
        touch_registry_nodes(registry);
        drop(log);
    }

    /// Sleeping while holding the journal lock stalls every writer.
    pub fn slow_append(&self, line: String) {
        let mut log = self.entries.lock();
        sleep(Duration::from_millis(10));
        log.push(line);
    }

    /// Correct usage: the guard is dropped before the blocking call — no
    /// finding.
    pub fn fast_append(&self, line: String) {
        let mut log = self.entries.lock();
        log.push(line);
        drop(log);
        sleep(Duration::from_millis(10));
    }
}

/// Unique name workspace-wide, so calls to it resolve in the call graph.
fn touch_registry_nodes(registry: &Registry) {
    let nodes = registry.nodes.lock();
    let _ = nodes.len();
}
