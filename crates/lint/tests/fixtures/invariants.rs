//! Invariant fixture: an error enum whose `class()` misses a variant and
//! hides behind a wildcard, an `x-*` header literal outside the headers
//! module, a retry loop with no deadline, and a bounded retry loop that
//! must NOT be flagged.

pub enum ScoopError {
    Io(std::io::Error),
    NotFound(String),
    Overloaded,
    Corrupt(String),
}

impl ScoopError {
    pub fn class(&self) -> ErrorClass {
        match self {
            ScoopError::Io(_) => ErrorClass::Retryable,
            ScoopError::NotFound(_) => ErrorClass::NonRetryable,
            // `Overloaded` is never mentioned, and the wildcard silently
            // classifies future variants.
            _ => ErrorClass::NonRetryable,
        }
    }

    pub fn is_retryable(&self) -> bool {
        matches!(self.class(), ErrorClass::Retryable)
    }
}

pub fn smuggled_header(req: &mut Request) {
    req.headers.set("x-smuggled-header", "1");
}

/// Retries forever on retryable errors: no deadline consulted.
pub fn unbounded_retry(op: &dyn Fn() -> Result<(), ScoopError>) -> Result<(), ScoopError> {
    loop {
        match op() {
            Ok(()) => return Ok(()),
            Err(e) if e.is_retryable() => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Hand-spelled trace header in *test* code: rule 2 (header hygiene) skips
/// tests, but rule 4 (trace propagation) must still flag it.
#[cfg(test)]
mod tests {
    #[test]
    fn stamps_trace_by_hand() {
        let mut req = Request::default();
        req.headers.set("x-scoop-trace", "t1");
    }
}

/// Dials a socket and reads it with no read timeout: one stalled peer
/// hangs this function forever (invariant 5).
pub fn raw_socket_read(addr: &str) -> std::io::Result<Vec<u8>> {
    use std::io::Read;
    let mut stream = std::net::TcpStream::connect(addr)?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    Ok(buf)
}

/// Same dial, but every read happens under a timeout — no finding.
pub fn timed_socket_read(addr: &str) -> std::io::Result<Vec<u8>> {
    use std::io::Read;
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf)?;
    Ok(buf)
}

/// Hand-spelled span layer (invariant 6): the wire codec would silently
/// drop these spans from the trailer.
pub fn literal_layer_span(trace: Option<&str>) {
    let _span = telemetry::span(trace, "proxy", format!("handling {trace:?}"));
}

/// Layer via the canonical constant — no finding (the second argument is a
/// path, not a string literal).
pub fn const_layer_span(trace: Option<&str>) {
    let _span = telemetry::span(trace, telemetry::layers::PROXY, "routing".to_string());
}

/// An unrelated `span` method whose arguments carry no layer at all — the
/// rule must not confuse it with telemetry spans.
pub fn csv_field_span(view: &RecordView) -> (usize, usize) {
    view.span(0)
}

/// Bounded: consults the deadline every attempt — no finding.
pub fn bounded_retry(
    op: &dyn Fn() -> Result<(), ScoopError>,
    deadline: Deadline,
) -> Result<(), ScoopError> {
    loop {
        deadline.check("bounded retry")?;
        match op() {
            Ok(()) => return Ok(()),
            Err(e) if e.is_retryable() => continue,
            Err(e) => return Err(e),
        }
    }
}
