//! Transitive-blocking fixture: lock guards held across call chains that
//! bottom out in a sleep (deny) or a channel receive (warn), one and two
//! frames below the guard, plus the clean shapes the pass must not flag.

pub struct Cache {
    map: Mutex<Vec<String>>,
}

/// Uniquely named helper that bottoms out in a sleep.
fn backoff_pause() {
    sleep(Duration::from_millis(5));
}

/// Uniquely named helper that bottoms out in a channel receive.
fn wait_for_signal(rx: &Receiver<u32>) {
    let _ = rx.recv();
}

/// Pure helper: resolves in the graph but never blocks.
fn shape_entries(entries: &[String]) -> usize {
    entries.len()
}

impl Cache {
    /// Sleep two frames below the guard: deny, class named.
    pub fn rebuild(&self) {
        let mut map = self.map.lock();
        backoff_pause();
        map.clear();
    }

    /// Channel receive one frame below the guard: warn (receives are
    /// frequently deadline-bounded in ways the token model cannot see).
    pub fn drain(&self, rx: &Receiver<u32>) {
        let map = self.map.lock();
        wait_for_signal(rx);
        let _ = map.len();
    }

    /// Direct receive under the guard: warn at the call site itself.
    pub fn drain_inline(&self, rx: &Receiver<u32>) {
        let map = self.map.lock();
        let _ = rx.recv();
        let _ = map.len();
    }

    /// Guard dropped before the blocking call: no finding.
    pub fn rebuild_outside(&self) {
        let mut map = self.map.lock();
        map.clear();
        drop(map);
        backoff_pause();
    }

    /// Non-blocking resolved callee under the guard: no finding.
    pub fn tally(&self) -> usize {
        let map = self.map.lock();
        shape_entries(&map)
    }

    /// Suppressed by a justified allow.
    pub fn warmed(&self) {
        let map = self.map.lock();
        // lint:allow(5ms test-only pause, bounded by construction)
        backoff_pause();
        let _ = map.len();
    }
}
