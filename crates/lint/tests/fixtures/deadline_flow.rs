//! Deadline-flow fixture: socket sinks in the net plane, reached through
//! paths that do and do not establish timeouts or flow a `Deadline` in.
//! Loaded under a synthetic `net/wire.rs` path so the pass scopes to it.

pub struct Conn {
    sock: TcpStream,
}

impl Conn {
    /// `Read` trait adapter: sinks inside functions named `read` are their
    /// callers' responsibility — no finding.
    pub fn read(&mut self, buf: &mut [u8]) {
        let _ = self.sock.read(buf);
    }
}

/// Establishing frame: flows the deadline into the read timeout. Callers
/// of this function establish transitively.
fn tighten_for(conn: &mut Conn, deadline: Deadline) {
    let window = deadline.remaining();
    let _ = conn.sock.set_read_timeout(window);
}

/// The sink itself, two frames below the root that holds the deadline.
fn recv_into(conn: &mut Conn, buf: &mut [u8]) {
    let _ = conn.sock.read(buf);
}

/// Clean root: the deadline flows through `tighten_for` before the read
/// two frames down in `recv_into` — no finding on either rule.
fn fetch(conn: &mut Conn, deadline: Deadline, buf: &mut [u8]) {
    tighten_for(conn, deadline);
    recv_into(conn, buf);
}

/// No frame on any path to this read ever sets a timeout:
/// `unbounded-read` at the root.
fn naked_poll(conn: &mut Conn, buf: &mut [u8]) {
    let _ = conn.sock.read(buf);
}

/// Helper that installs a *static* default timeout; no deadline in sight.
fn default_timeouts(conn: &mut Conn) {
    let _ = conn.sock.set_read_timeout(Some(DEFAULT_IO));
}

/// A `Deadline` is available here but only the static default ever
/// reaches the socket: rule 1 is satisfied (a timeout exists), rule 2
/// denies (`deadline-unflowed-read`).
fn fetch_with_default(conn: &mut Conn, deadline: Deadline, buf: &mut [u8]) {
    let _ = deadline;
    default_timeouts(conn);
    let _ = conn.sock.read(buf);
}

/// Socket write with no establishing frame anywhere: `unbounded-write`.
fn push_frame(conn: &mut Conn, frame: &[u8]) {
    let _ = conn.sock.write_all(frame);
}

/// Serialization helper over a caller-supplied writer: generic roots are
/// never the frame responsible for socket timeouts — no finding.
fn encode_frame(w: &mut impl Write, payload: &[u8]) {
    let _ = w.write_all(payload);
}

/// Literal `TcpStream::connect` in the net plane: deny regardless of path.
fn plain_dial(addr: &SocketAddr) {
    let _ = TcpStream::connect(addr);
}

/// `connect_timeout` is the allowed spelling — no finding.
fn careful_dial(addr: &SocketAddr, budget: Duration) {
    let _ = TcpStream::connect_timeout(addr, budget);
}

/// Suppressed: a justified allow at the sink line.
fn probed_poll(conn: &mut Conn, buf: &mut [u8]) {
    // lint:allow(probe socket is nonblocking by construction)
    let _ = conn.sock.read(buf);
}
