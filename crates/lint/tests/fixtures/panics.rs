//! Panic-path fixture: deny-level panic sites, warn-level indexing and
//! arithmetic, a justified `lint:allow`, an empty (rejected) allow, and
//! test code that must NOT be flagged.

pub fn unwraps(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn expects(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn panics(flag: bool) {
    if flag {
        panic!("boom");
    }
}

pub fn justified(v: Option<u32>) -> u32 {
    // lint:allow(the caller inserted the key two lines above; a miss is a
    // logic bug, not a runtime condition)
    v.unwrap()
}

pub fn empty_justification(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow()
}

pub fn indexes(data: &[u8], i: usize) -> u8 {
    data[i]
}

pub fn adds(a: u32, b: u32) -> u32 {
    a + b
}

/// Clean: `get` and checked ops only — no findings.
pub fn clean(data: &[u8], i: usize) -> Option<u8> {
    data.get(i).copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let data = [1u8, 2, 3];
        assert_eq!(data[0] + data[1], 3);
    }
}
