//! Baseline handling: the committed set of accepted warn-level findings.
//!
//! The baseline file is plain text — one fingerprint per line, sorted —
//! so diffs review like code. Deny-level findings never enter it: they
//! must be fixed or carry a `lint:allow(justification)` at the site.
//! A lint run fails only on *regressions*: findings whose fingerprint is
//! absent from the baseline.

use crate::findings::{Finding, Severity};
use std::collections::BTreeSet;

/// Parse a baseline document (one fingerprint per line; `#` comments and
/// blank lines ignored).
pub fn parse(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Render the baseline for the given findings (warn level only, sorted,
/// deduplicated).
pub fn render(findings: &[Finding]) -> String {
    let set: BTreeSet<String> = findings
        .iter()
        .filter(|f| f.severity == Severity::Warn)
        .map(Finding::fingerprint)
        .collect();
    let mut out = String::from(
        "# scoop-lint baseline: accepted warn-level findings, one fingerprint per\n\
         # line. Regenerate with `cargo run -p scoop-lint -- --update-baseline`.\n\
         # Deny-level findings never appear here; fix them or add a\n\
         # `// lint:allow(justification)` at the site.\n",
    );
    for fp in set {
        out.push_str(&fp);
        out.push('\n');
    }
    out
}

/// Outcome of comparing a run against a baseline.
#[derive(Debug)]
pub struct Comparison {
    /// Findings not covered by the baseline (deny findings are always
    /// regressions).
    pub regressions: Vec<Finding>,
    /// Baseline entries no longer produced — candidates for removal.
    pub stale: Vec<String>,
}

/// Compare findings against the baseline set.
pub fn compare(findings: &[Finding], baseline: &BTreeSet<String>) -> Comparison {
    let produced: BTreeSet<String> = findings.iter().map(Finding::fingerprint).collect();
    let regressions = findings
        .iter()
        .filter(|f| f.severity == Severity::Deny || !baseline.contains(&f.fingerprint()))
        .cloned()
        .collect();
    let stale = baseline.difference(&produced).cloned().collect();
    Comparison { regressions, stale }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warn(detail: &str) -> Finding {
        Finding {
            pass: "panic-path",
            severity: Severity::Warn,
            file: "crates/demo/src/lib.rs".into(),
            function: "f".into(),
            line: 1,
            detail: detail.into(),
            message: String::new(),
        }
    }

    #[test]
    fn baselined_warns_pass_new_warns_fail() {
        let old = warn("indexing");
        let baseline = parse(&render(std::slice::from_ref(&old)));
        let new = warn("arithmetic");
        let cmp = compare(&[old, new], &baseline);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].detail, "arithmetic");
        assert!(cmp.stale.is_empty());
    }

    #[test]
    fn deny_findings_are_always_regressions() {
        let mut f = warn("unwrap");
        f.severity = Severity::Deny;
        // Even a baseline that (incorrectly) lists the fingerprint does
        // not excuse a deny finding.
        let baseline = parse(&f.fingerprint());
        let cmp = compare(&[f], &baseline);
        assert_eq!(cmp.regressions.len(), 1);
    }

    #[test]
    fn stale_entries_are_reported() {
        let baseline = parse("panic-path|gone.rs|f|indexing\n");
        let cmp = compare(&[], &baseline);
        assert_eq!(cmp.stale, vec!["panic-path|gone.rs|f|indexing".to_string()]);
    }
}
