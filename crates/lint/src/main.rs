//! CLI driver: analyze the workspace, gate against the baseline.
//!
//! ```text
//! scoop-lint [--root PATH] [--format text|json] [--baseline PATH]
//!            [--update-baseline] [--diff]
//! ```
//!
//! Exit codes: `0` no regressions, `1` regressions found, `2` usage or
//! I/O error. A *regression* is any deny-level finding, or a warn-level
//! finding whose fingerprint is absent from the committed baseline
//! (`lint-baseline.txt` at the workspace root by default).
//!
//! `--diff` restricts output to the regressions themselves (in either
//! format): a CI failure then shows the handful of findings that are
//! actually new, not every accepted baseline warn.

use scoop_lint::findings::{render_json, render_text, Severity};
use scoop_lint::{analyze, baseline, collect_workspace};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
    update_baseline: bool,
    diff: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        baseline: None,
        json: false,
        update_baseline: false,
        diff: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => opts.root = Some(args.next().ok_or("--root needs a path")?.into()),
            "--baseline" => {
                opts.baseline = Some(args.next().ok_or("--baseline needs a path")?.into())
            }
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                _ => return Err("--format needs `text` or `json`".into()),
            },
            "--update-baseline" => opts.update_baseline = true,
            "--diff" => opts.diff = true,
            "--help" | "-h" => {
                println!(
                    "scoop-lint [--root PATH] [--format text|json] [--baseline PATH] [--update-baseline] [--diff]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Walk up from the current directory to the workspace root (the
/// `Cargo.toml` containing `[workspace]`).
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("scoop-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match opts.root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("scoop-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };
    let files = match collect_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("scoop-lint: reading workspace: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = analyze(&files);

    let baseline_path = opts.baseline.unwrap_or_else(|| root.join("lint-baseline.txt"));
    if opts.update_baseline {
        let denies: Vec<_> =
            findings.iter().filter(|f| f.severity == Severity::Deny).collect();
        if !denies.is_empty() {
            eprintln!(
                "scoop-lint: {} deny-level finding(s) cannot be baselined:",
                denies.len()
            );
            eprint!("{}", render_text(&findings.iter().filter(|f| f.severity == Severity::Deny).cloned().collect::<Vec<_>>()));
            return ExitCode::from(1);
        }
        if let Err(e) = std::fs::write(&baseline_path, baseline::render(&findings)) {
            eprintln!("scoop-lint: writing baseline: {e}");
            return ExitCode::from(2);
        }
        println!(
            "scoop-lint: baseline updated ({} warn finding(s)) at {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_set = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => baseline::parse(&text),
        Err(_) => Default::default(), // no baseline: everything is new
    };
    let cmp = baseline::compare(&findings, &baseline_set);

    if opts.json {
        let shown = if opts.diff { &cmp.regressions } else { &findings };
        print!("{}", render_json(shown));
    } else if !cmp.regressions.is_empty() {
        print!("{}", render_text(&cmp.regressions));
    } else if opts.diff {
        println!("scoop-lint: no findings outside the baseline");
    }

    if !cmp.regressions.is_empty() {
        eprintln!(
            "scoop-lint: {} regression(s) ({} finding(s) total, {} baselined)",
            cmp.regressions.len(),
            findings.len(),
            findings.len() - cmp.regressions.len(),
        );
        eprintln!(
            "scoop-lint: fix them, add `// lint:allow(reason)` at the site, or (warn level only) run with --update-baseline"
        );
        return ExitCode::from(1);
    }
    if !opts.json {
        println!(
            "scoop-lint: OK — {} finding(s), all baselined{}",
            findings.len(),
            if cmp.stale.is_empty() {
                String::new()
            } else {
                format!("; {} stale baseline entr(ies) can be removed", cmp.stale.len())
            }
        );
    }
    ExitCode::SUCCESS
}
