//! `scoop-lint`: workspace static analysis for the Scoop codebase.
//!
//! Six passes over a token-level model of every crate's `src/`, four of
//! them interprocedural over the shared workspace call graph
//! ([`analysis::Graph`]):
//!
//! * **lock-order** ([`passes::locks`]) — per-function lock-acquisition
//!   spans, a workspace lock-order graph with call-graph resolution and
//!   cycle detection;
//! * **transitive-blocking** ([`passes::blocking`]) — lock guards held
//!   across call chains that bottom out in sleeps, channel receives,
//!   condvar waits, joins or bulk I/O, with the blocking class named;
//! * **deadline-flow** ([`passes::deadline`]) — every socket
//!   read/write/connect in the net plane reachable only through call
//!   chains that establish a timeout, and a `Deadline` in scope must flow
//!   into it;
//! * **trace-propagation** ([`passes::trace`]) — request-construction
//!   paths attach `headers::TRACE`; response-completion paths decode the
//!   server-span trailer; response heads are followed by trailers;
//! * **panic-path** ([`passes::panics`]) — latent panics (`unwrap`,
//!   `expect`, `panic!`, indexing, unchecked arithmetic) on production
//!   data paths, with a `// lint:allow(justification)` escape hatch;
//! * **invariants** ([`passes::invariants`]) — Scoop-specific rules:
//!   exhaustive `ScoopError` retryability classification, `x-*` header
//!   literals confined to `scoop_common::headers`, retry loops bounded by
//!   a `Deadline`.
//!
//! Output is machine-readable ([`findings::render_json`]) or human text,
//! gated against a committed baseline ([`baseline`]) so CI fails only on
//! regressions. The crate is dependency-free: it lexes Rust with its own
//! lexer ([`lexer`]) and models items by brace matching ([`model`]) —
//! `syn` is unavailable offline, and token-level analysis is enough for
//! these rules (limits are documented per pass and in DESIGN.md).

pub mod analysis;
pub mod baseline;
pub mod findings;
pub mod lexer;
pub mod model;
pub mod passes;

use findings::Finding;
use model::{parse_file, ParsedFile};

/// Parse the given `(path, source)` pairs and run every pass.
///
/// Findings are deduplicated by fingerprint (first occurrence wins) and
/// sorted by file, line and pass, so output and baselines are stable.
pub fn analyze(files: &[(String, String)]) -> Vec<Finding> {
    let parsed: Vec<ParsedFile> =
        files.iter().map(|(p, s)| parse_file(p, s)).collect();
    let graph = analysis::Graph::build(&parsed);
    let mut findings = Vec::new();
    findings.extend(passes::locks::run(&graph));
    findings.extend(passes::blocking::run(&graph));
    findings.extend(passes::deadline::run(&graph));
    findings.extend(passes::trace::run(&graph));
    findings.extend(passes::panics::run(&parsed));
    findings.extend(passes::invariants::run(&parsed));

    let mut seen = std::collections::BTreeSet::new();
    findings.retain(|f| seen.insert(f.fingerprint()));
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.pass).cmp(&(b.file.as_str(), b.line, b.pass))
    });
    findings
}

/// Collect the workspace's analyzable sources under `root`: every
/// `crates/*/src/**/*.rs`, excluding this linter's own crate (an analysis
/// tool, not a data path — and its sources must be free to *name* the
/// patterns it detects).
pub fn collect_workspace(root: &std::path::Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.file_name().map(|n| n != "lint").unwrap_or(false))
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, root, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn collect_rs(
    dir: &std::path::Path,
    root: &std::path::Path,
    out: &mut Vec<(String, String)>,
) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.filter_map(|e| e.ok()).collect();
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let path = e.path();
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().map(|x| x == "rs").unwrap_or(false) {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, std::fs::read_to_string(&path)?));
        }
    }
    Ok(())
}
