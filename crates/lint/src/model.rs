//! Token-level item model: files become functions, structs and enums with
//! enough structure for the passes — no full AST, just brace-matched spans.
//!
//! The model tracks what the passes need and nothing more:
//!
//! * **functions** with their body token spans, enclosing module path and
//!   `impl` type, and whether they are test code (`#[test]`, or inside a
//!   `#[cfg(test)]` module);
//! * **structs** with the fields whose type mentions `Mutex<`/`RwLock<`
//!   (the lock-order pass's lock identities);
//! * **enums** with their variant names (the error-classification lint).
//!
//! Limits (by design — documented in DESIGN.md): functions nested inside
//! function bodies are not modelled separately (their tokens belong to the
//! enclosing function), and type resolution is name-based, so two structs
//! sharing a field name can alias in the lock graph.

use crate::lexer::{lex, Allow, Tok, Token};

/// Kind of lock primitive a field holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
}

/// A struct field of lock type.
#[derive(Debug, Clone)]
pub struct LockField {
    pub owner: String,
    pub field: String,
    pub kind: LockKind,
}

/// Any struct field, with the type names its declaration mentions (outer
/// type first): `reader: FrameReader<TcpStream>` records
/// `["FrameReader", "TcpStream"]`. The interprocedural resolver uses these
/// to type `self.field.method(...)` receivers.
#[derive(Debug, Clone)]
pub struct FieldDef {
    pub owner: String,
    pub field: String,
    pub type_names: Vec<String>,
}

/// One parsed function.
#[derive(Debug)]
pub struct Function {
    /// Repo-relative path of the defining file.
    pub file: String,
    /// `module::path::fn_name`, with the impl type included when present
    /// (e.g. `proxy::ProxyServer::fetch_hedged`).
    pub qual_name: String,
    /// Bare function name.
    pub name: String,
    /// Type the enclosing `impl` block targets, if any.
    pub impl_type: Option<String>,
    /// `#[test]` function, or inside a `#[cfg(test)]` module.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body (inside the braces), into
    /// [`ParsedFile::tokens`]. Empty for bodiless trait-method signatures.
    pub body: std::ops::Range<usize>,
    /// Token index range of the signature — from the `fn` keyword up to
    /// (not including) the body's opening brace or the declaration's `;`.
    /// The resolver reads parameter names and types out of this span.
    pub sig: std::ops::Range<usize>,
}

/// One parsed enum.
#[derive(Debug)]
pub struct Enum {
    pub file: String,
    pub name: String,
    pub variants: Vec<String>,
    pub is_test: bool,
}

/// One lexed and item-parsed file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Repo-relative path.
    pub path: String,
    /// Crate directory name (`objectstore`, `common`, ...).
    pub crate_name: String,
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
    pub functions: Vec<Function>,
    pub structs: Vec<LockField>,
    /// Every struct field with its type names (superset of [`Self::structs`],
    /// which keeps only lock-typed fields).
    pub fields: Vec<FieldDef>,
    pub enums: Vec<Enum>,
    /// Token index ranges that are test code (bodies of `#[cfg(test)]`
    /// modules); string literals inside are exempt from the header lint.
    pub test_spans: Vec<std::ops::Range<usize>>,
}

impl ParsedFile {
    /// Is the token at `idx` inside test code?
    pub fn in_test_code(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|r| r.contains(&idx))
            || self
                .functions
                .iter()
                .any(|f| f.is_test && f.body.contains(&idx))
    }

    /// The justification for a finding on `line`, if an allow targets it.
    pub fn allow_for(&self, line: u32) -> Option<&Allow> {
        self.allows.iter().find(|a| a.target_line == line)
    }
}

/// Derive the crate directory name from a repo-relative path like
/// `crates/objectstore/src/proxy.rs`.
fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        (Some(first), _) => first.to_string(),
        _ => String::new(),
    }
}

/// Parse one file into its item model.
pub fn parse_file(path: &str, src: &str) -> ParsedFile {
    let lexed = lex(src);
    let tokens = lexed.tokens;
    let mut pf = ParsedFile {
        path: path.to_string(),
        crate_name: crate_of(path),
        allows: lexed.allows,
        functions: Vec::new(),
        structs: Vec::new(),
        fields: Vec::new(),
        enums: Vec::new(),
        test_spans: Vec::new(),
        tokens: Vec::new(),
    };
    let mut walker = Walker { toks: &tokens, pf: &mut pf };
    walker.items(0, tokens.len(), &mut ScopeCtx::default());
    pf.tokens = tokens;
    pf
}

/// Enclosing-scope context threaded through item parsing.
#[derive(Debug, Default, Clone)]
struct ScopeCtx {
    module_path: Vec<String>,
    impl_type: Option<String>,
    in_cfg_test: bool,
}

struct Walker<'a> {
    toks: &'a [Token],
    pf: &'a mut ParsedFile,
}

impl<'a> Walker<'a> {
    fn ident(&self, i: usize) -> Option<&'a str> {
        match self.toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct(&self, i: usize) -> Option<char> {
        match self.toks.get(i).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    /// Index just past the brace-balanced span opening at `open` (which
    /// must be `{`, `(` or `[`).
    fn skip_balanced(&self, open: usize, end: usize) -> usize {
        let (o, c) = match self.punct(open) {
            Some('{') => ('{', '}'),
            Some('(') => ('(', ')'),
            Some('[') => ('[', ']'),
            _ => return open + 1,
        };
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            match self.punct(i) {
                Some(x) if x == o => depth += 1,
                Some(x) if x == c => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Parse the items in `[start, end)` under `ctx`.
    fn items(&mut self, start: usize, end: usize, ctx: &mut ScopeCtx) {
        let mut i = start;
        // Attributes seen since the last item, flattened to ident strings.
        let mut attrs: Vec<String> = Vec::new();
        while i < end {
            match &self.toks[i].tok {
                Tok::Punct('#') if self.punct(i + 1) == Some('[') => {
                    let close = self.skip_balanced(i + 1, end);
                    for t in &self.toks[i + 2..close.saturating_sub(1)] {
                        if let Tok::Ident(s) = &t.tok {
                            attrs.push(s.clone());
                        }
                    }
                    i = close;
                }
                Tok::Ident(kw) if kw == "mod" => {
                    let name = self.ident(i + 1).unwrap_or("?").to_string();
                    // `mod name;` (out-of-line) declares no span here.
                    if self.punct(i + 2) == Some('{') {
                        let close = self.skip_balanced(i + 2, end);
                        let cfg_test = ctx.in_cfg_test
                            || (attrs.contains(&"cfg".to_string())
                                && attrs.contains(&"test".to_string()));
                        let mut inner = ScopeCtx {
                            module_path: {
                                let mut p = ctx.module_path.clone();
                                p.push(name);
                                p
                            },
                            impl_type: None,
                            in_cfg_test: cfg_test,
                        };
                        if cfg_test {
                            self.pf.test_spans.push(i + 3..close.saturating_sub(1));
                        }
                        self.items(i + 3, close - 1, &mut inner);
                        i = close;
                    } else {
                        i += 2;
                    }
                    attrs.clear();
                }
                Tok::Ident(kw) if kw == "impl" || kw == "trait" => {
                    let is_impl = kw == "impl";
                    // Scan to the opening brace, collecting candidate type
                    // names at angle-depth 0.
                    let mut j = i + 1;
                    let mut angle = 0i32;
                    let mut names: Vec<String> = Vec::new();
                    let mut after_for: Option<String> = None;
                    let mut saw_for = false;
                    while j < end {
                        match &self.toks[j].tok {
                            Tok::Punct('{') => break,
                            Tok::Punct(';') => break,
                            Tok::Punct('<') => angle += 1,
                            Tok::Punct('>') => angle -= 1,
                            Tok::Ident(s) if angle == 0 => {
                                if s == "for" {
                                    saw_for = true;
                                } else if s != "dyn" && s != "where" {
                                    if saw_for && after_for.is_none() {
                                        after_for = Some(s.clone());
                                    }
                                    names.push(s.clone());
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if self.punct(j) == Some('{') {
                        let close = self.skip_balanced(j, end);
                        let type_name = if is_impl {
                            after_for.or_else(|| names.last().cloned())
                        } else {
                            names.first().cloned()
                        };
                        let mut inner = ScopeCtx {
                            module_path: ctx.module_path.clone(),
                            impl_type: type_name,
                            in_cfg_test: ctx.in_cfg_test
                                || (attrs.contains(&"cfg".to_string())
                                    && attrs.contains(&"test".to_string())),
                        };
                        self.items(j + 1, close - 1, &mut inner);
                        i = close;
                    } else {
                        i = j + 1;
                    }
                    attrs.clear();
                }
                Tok::Ident(kw) if kw == "fn" => {
                    let name = self.ident(i + 1).unwrap_or("?").to_string();
                    let line = self.toks[i].line;
                    // Scan the signature to `{` (body) or `;` (declaration),
                    // skipping balanced parens (the parameter list may
                    // contain braces in default-expression position only in
                    // const generics — rare; parens are the common case).
                    let mut j = i + 2;
                    while j < end {
                        match self.punct(j) {
                            Some('(') => j = self.skip_balanced(j, end),
                            Some('{') => break,
                            Some(';') => break,
                            _ => j += 1,
                        }
                    }
                    let sig = i..j.min(end);
                    let body = if self.punct(j) == Some('{') {
                        let close = self.skip_balanced(j, end);
                        let b = j + 1..close - 1;
                        j = close;
                        b
                    } else {
                        j += 1;
                        0..0
                    };
                    let is_test = ctx.in_cfg_test || attrs.iter().any(|a| a == "test");
                    let mut qual: Vec<String> = ctx.module_path.clone();
                    if let Some(t) = &ctx.impl_type {
                        qual.push(t.clone());
                    }
                    qual.push(name.clone());
                    self.pf.functions.push(Function {
                        file: self.pf.path.clone(),
                        qual_name: qual.join("::"),
                        name,
                        impl_type: ctx.impl_type.clone(),
                        is_test,
                        line,
                        body,
                        sig,
                    });
                    i = j;
                    attrs.clear();
                }
                Tok::Ident(kw) if kw == "struct" => {
                    let name = self.ident(i + 1).unwrap_or("?").to_string();
                    // Find `{` (record struct) before any `;` (unit/tuple).
                    let mut j = i + 2;
                    while j < end {
                        match self.punct(j) {
                            Some('(') => j = self.skip_balanced(j, end),
                            Some('{') => break,
                            Some(';') => break,
                            _ => j += 1,
                        }
                    }
                    if self.punct(j) == Some('{') {
                        let close = self.skip_balanced(j, end);
                        self.collect_lock_fields(&name, j + 1, close - 1);
                        i = close;
                    } else {
                        i = j + 1;
                    }
                    attrs.clear();
                }
                Tok::Ident(kw) if kw == "enum" => {
                    let name = self.ident(i + 1).unwrap_or("?").to_string();
                    let mut j = i + 2;
                    while j < end && self.punct(j) != Some('{') {
                        j += 1;
                    }
                    if j < end {
                        let close = self.skip_balanced(j, end);
                        let variants = self.collect_variants(j + 1, close - 1);
                        self.pf.enums.push(Enum {
                            file: self.pf.path.clone(),
                            name,
                            variants,
                            is_test: ctx.in_cfg_test,
                        });
                        i = close;
                    } else {
                        i = j;
                    }
                    attrs.clear();
                }
                // Skip other brace-introducing items wholesale so their
                // contents are not mistaken for item starts (use/static/
                // const bodies, match arms in const exprs, etc. are rare at
                // item level; fall through token-by-token).
                _ => {
                    if self.punct(i) == Some('{') {
                        // e.g. a const's block initializer at item level.
                        i = self.skip_balanced(i, end);
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// Record struct fields: every field with its type names (for the
    /// interprocedural receiver-type resolver), and `Mutex<..>` /
    /// `RwLock<..>` fields separately (the lock-order pass's identities).
    fn collect_lock_fields(&mut self, owner: &str, start: usize, end: usize) {
        let mut i = start;
        while i < end {
            match self.punct(i) {
                Some('{') | Some('(') | Some('[') => {
                    i = self.skip_balanced(i, end);
                    continue;
                }
                _ => {}
            }
            // Field pattern: Ident `:` ...type until `,` at depth 0.
            if let (Some(field), Some(':')) = (self.ident(i), self.punct(i + 1)) {
                // Exclude `::` path separators.
                if self.punct(i + 2) == Some(':') {
                    i += 3;
                    continue;
                }
                let mut j = i + 2;
                let mut angle = 0i32;
                let mut kind: Option<LockKind> = None;
                let mut type_names: Vec<String> = Vec::new();
                while j < end {
                    match &self.toks[j].tok {
                        Tok::Punct(',') if angle <= 0 => break,
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') => angle -= 1,
                        Tok::Ident(s) if s == "Mutex" => kind = kind.or(Some(LockKind::Mutex)),
                        Tok::Ident(s) if s == "RwLock" => kind = kind.or(Some(LockKind::RwLock)),
                        _ => {}
                    }
                    if let Tok::Ident(s) = &self.toks[j].tok {
                        if s.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                            type_names.push(s.clone());
                        }
                    }
                    j += 1;
                }
                if let Some(kind) = kind {
                    self.pf.structs.push(LockField {
                        owner: owner.to_string(),
                        field: field.to_string(),
                        kind,
                    });
                }
                self.pf.fields.push(FieldDef {
                    owner: owner.to_string(),
                    field: field.to_string(),
                    type_names,
                });
                i = j + 1;
            } else {
                i += 1;
            }
        }
    }

    /// Variant names of an enum body: the ident starting each variant,
    /// skipping attributes and payloads.
    fn collect_variants(&self, start: usize, end: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut i = start;
        let mut expect_variant = true;
        while i < end {
            match &self.toks[i].tok {
                Tok::Punct('#') if self.punct(i + 1) == Some('[') => {
                    i = self.skip_balanced(i + 1, end);
                }
                Tok::Punct('{') | Tok::Punct('(') => {
                    i = self.skip_balanced(i, end);
                }
                Tok::Punct(',') => {
                    expect_variant = true;
                    i += 1;
                }
                Tok::Ident(s) if expect_variant => {
                    out.push(s.clone());
                    expect_variant = false;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_modules_and_tests_are_modelled() {
        let src = r#"
            pub fn top() { helper(); }
            mod inner {
                impl Widget {
                    fn method(&self) {}
                }
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn checks() { top(); }
            }
        "#;
        let pf = parse_file("crates/demo/src/lib.rs", src);
        let names: Vec<_> = pf.functions.iter().map(|f| f.qual_name.as_str()).collect();
        assert_eq!(names, vec!["top", "inner::Widget::method", "tests::checks"]);
        assert!(!pf.functions[0].is_test);
        assert_eq!(pf.functions[1].impl_type.as_deref(), Some("Widget"));
        assert!(pf.functions[2].is_test);
        assert_eq!(pf.crate_name, "demo");
    }

    #[test]
    fn lock_fields_are_collected() {
        let src = r#"
            struct Registry {
                nodes: Mutex<HashMap<u32, Node>>,
                index: RwLock<BTreeMap<String, Entry>>,
                plain: u64,
            }
        "#;
        let pf = parse_file("crates/demo/src/lib.rs", src);
        let fields: Vec<_> = pf.structs.iter().map(|l| (l.field.as_str(), l.kind)).collect();
        assert_eq!(
            fields,
            vec![("nodes", LockKind::Mutex), ("index", LockKind::RwLock)]
        );
    }

    #[test]
    fn enum_variants_skip_payloads() {
        let src = r#"
            pub enum ScoopError {
                Io(std::io::Error),
                NotFound(String),
                Config { key: String },
                Overloaded,
            }
        "#;
        let pf = parse_file("crates/common/src/error.rs", src);
        assert_eq!(
            pf.enums[0].variants,
            vec!["Io", "NotFound", "Config", "Overloaded"]
        );
    }

    #[test]
    fn impl_trait_for_type_binds_to_the_type() {
        let src = "impl Middleware for StorletEngine { fn handle(&self) {} }";
        let pf = parse_file("crates/demo/src/lib.rs", src);
        assert_eq!(pf.functions[0].impl_type.as_deref(), Some("StorletEngine"));
    }
}
