//! A small Rust lexer: enough fidelity for token-level static analysis.
//!
//! The lexer's job is to make the later passes *sound against syntax*: a
//! `panic!` inside a string literal, a `lock()` inside a comment, or a
//! lifetime `'a` mistaken for a char literal must never produce a token the
//! passes could misread. It handles line comments, nested block comments,
//! (raw/byte) string literals, char literals vs. lifetimes, and numeric
//! literals; everything else becomes identifier or punctuation tokens.
//!
//! Comments are not discarded entirely: `// lint:allow(reason)` directives
//! are collected with the line of code they apply to, so findings can be
//! suppressed at the site with an explicit justification (see
//! [`Allow`]).

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `self`, `unwrap`, `_`, ...).
    Ident(String),
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// String literal; the *cooked* content is kept (escapes resolved
    /// best-effort) so passes can inspect e.g. header names.
    Str(String),
    /// Char or byte literal; content irrelevant to the passes.
    Char,
    /// Numeric literal (its raw text).
    Num(String),
    /// Single punctuation character (`.`, `{`, `!`, ...). Multi-character
    /// operators arrive as consecutive tokens.
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A `// lint:allow(justification)` directive.
///
/// The justification may continue across consecutive `//` comment lines
/// until the parenthesis closes. The directive suppresses findings on
/// `target_line`: the same line when it trails code, otherwise the next
/// line that carries any code.
#[derive(Debug, Clone)]
pub struct Allow {
    pub reason: String,
    pub target_line: u32,
}

/// Lexer output for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
}

/// In-flight `lint:allow(` capture: accumulated reason and open-paren depth.
struct PendingAllow {
    reason: String,
    depth: i32,
    /// True when the opening comment trailed code on its own line.
    trailing: bool,
    start_line: u32,
}

pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    // Line of the most recent token, to detect trailing comments.
    let mut last_tok_line = 0u32;
    let mut pending: Option<PendingAllow> = None;
    // Finished directives waiting for their target line.
    let mut unanchored: Vec<(String, u32, bool)> = Vec::new();

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = src[i..].find('\n').map(|o| i + o).unwrap_or(bytes.len());
                let text = &src[i + 2..end];
                feed_comment(
                    text,
                    line,
                    last_tok_line == line,
                    &mut pending,
                    &mut unanchored,
                );
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let start_line = line;
                let trailing = last_tok_line == line;
                let mut depth = 1;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'\n' {
                        line += 1;
                    }
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let inner_end = j.saturating_sub(2).max(i + 2);
                feed_comment(
                    &src[i + 2..inner_end],
                    start_line,
                    trailing,
                    &mut pending,
                    &mut unanchored,
                );
                i = j;
            }
            '"' => {
                let (content, next, newlines) = lex_string(src, i + 1);
                out.tokens.push(Token { tok: Tok::Str(content), line });
                line += newlines;
                i = next;
                last_tok_line = line;
            }
            'r' | 'b' if starts_raw_or_byte_string(bytes, i) => {
                let (tok, next, newlines) = lex_prefixed_string(src, i);
                out.tokens.push(Token { tok, line });
                line += newlines;
                i = next;
                last_tok_line = line;
            }
            '\'' => {
                // Lifetime (`'a` not closed by `'`) vs. char literal.
                if is_lifetime(bytes, i) {
                    let mut j = i + 1;
                    while j < bytes.len() && is_ident_char(bytes[j] as char) {
                        j += 1;
                    }
                    out.tokens.push(Token { tok: Tok::Lifetime, line });
                    i = j;
                } else {
                    let next = lex_char(bytes, i + 1);
                    out.tokens.push(Token { tok: Tok::Char, line });
                    i = next;
                }
                last_tok_line = line;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len()
                    && (is_ident_char(bytes[j] as char) || bytes[j] == b'.')
                {
                    // A `.` only belongs to the number when followed by a
                    // digit (`1.5`), not a method call (`1.to_string()`)
                    // or range (`0..2`).
                    if bytes[j] == b'.'
                        && !bytes
                            .get(j + 1)
                            .map(|b| b.is_ascii_digit())
                            .unwrap_or(false)
                    {
                        break;
                    }
                    j += 1;
                }
                out.tokens.push(Token { tok: Tok::Num(src[i..j].to_string()), line });
                i = j;
                last_tok_line = line;
            }
            c if is_ident_start(c) => {
                let mut j = i;
                while j < bytes.len() && is_ident_char(bytes[j] as char) {
                    j += 1;
                }
                out.tokens.push(Token { tok: Tok::Ident(src[i..j].to_string()), line });
                i = j;
                last_tok_line = line;
            }
            c if c.is_whitespace() => i += 1,
            c => {
                out.tokens.push(Token { tok: Tok::Punct(c), line });
                i += 1;
                last_tok_line = line;
            }
        }
        // Anchor finished directives: a trailing directive covers its own
        // line; a standalone one covers the next line carrying code.
        if !unanchored.is_empty() {
            unanchored.retain(|(reason, dir_line, trailing)| {
                if *trailing {
                    out.allows.push(Allow { reason: reason.clone(), target_line: *dir_line });
                    false
                } else if last_tok_line > *dir_line {
                    out.allows.push(Allow { reason: reason.clone(), target_line: last_tok_line });
                    false
                } else {
                    true
                }
            });
        }
    }
    // Directives at EOF with no code after them: anchor to their own line
    // (they will not suppress anything, but stay visible for the
    // missing-justification check).
    for (reason, dir_line, _) in unanchored {
        out.allows.push(Allow { reason, target_line: dir_line });
    }
    out
}

/// Process one comment's text: continue or begin a `lint:allow(` capture.
fn feed_comment(
    text: &str,
    line: u32,
    trailing: bool,
    pending: &mut Option<PendingAllow>,
    done: &mut Vec<(String, u32, bool)>,
) {
    if let Some(p) = pending {
        let (consumed, closed) = consume_until_balanced(text, &mut p.reason, &mut p.depth);
        let _ = consumed;
        if closed {
            let p = pending.take().expect("pending allow present");
            done.push((p.reason.trim().to_string(), line.max(p.start_line), p.trailing));
        }
        return;
    }
    if let Some(pos) = text.find("lint:allow(") {
        let mut p = PendingAllow {
            reason: String::new(),
            depth: 1,
            trailing,
            start_line: line,
        };
        let rest = &text[pos + "lint:allow(".len()..];
        let (_, closed) = consume_until_balanced(rest, &mut p.reason, &mut p.depth);
        if closed {
            done.push((p.reason.trim().to_string(), line, trailing));
        } else {
            *pending = Some(p);
        }
    }
}

/// Append `text` to `reason` until the paren depth returns to zero.
/// Returns (chars consumed, reached balance).
fn consume_until_balanced(text: &str, reason: &mut String, depth: &mut i32) -> (usize, bool) {
    for (idx, c) in text.char_indices() {
        match c {
            '(' => *depth += 1,
            ')' => {
                *depth -= 1;
                if *depth == 0 {
                    return (idx + 1, true);
                }
            }
            _ => {}
        }
        reason.push(c);
    }
    // Reason continues on the next comment line; join with a space.
    reason.push(' ');
    (text.len(), false)
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || !c.is_ascii()
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || !c.is_ascii()
}

/// `'a` / `'static` — an apostrophe starting an identifier *not* closed by
/// another apostrophe right after one char (which would be `'x'`).
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(&b) if is_ident_start(b as char) && b != b'\\' => {
            // `'a'` is a char literal; `'a,` / `'a>` / `'a ` is a lifetime.
            bytes.get(i + 2) != Some(&b'\'')
        }
        _ => false,
    }
}

fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    match bytes.get(j) {
        Some(&b'"') => true,
        Some(&b'r') => {
            let mut k = j + 1;
            while bytes.get(k) == Some(&b'#') {
                k += 1;
            }
            bytes.get(k) == Some(&b'"')
        }
        _ => false,
    }
}

/// Lex a cooked string starting *after* the opening quote. Returns
/// (content, index after closing quote, newline count).
fn lex_string(src: &str, start: usize) -> (String, usize, u32) {
    let bytes = src.as_bytes();
    let mut content = String::new();
    let mut i = start;
    let mut newlines = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return (content, i + 1, newlines),
            b'\\' => {
                // Keep escapes opaque; header-name checks only need plain
                // ASCII prefixes, which never contain escapes.
                i += 2;
            }
            b'\n' => {
                newlines += 1;
                content.push('\n');
                i += 1;
            }
            b => {
                content.push(b as char);
                i += 1;
            }
        }
    }
    (content, i, newlines)
}

/// Lex `b"..."`, `r"..."`, `r#"..."#`, `br#"..."#` starting at the prefix.
fn lex_prefixed_string(src: &str, start: usize) -> (Tok, usize, u32) {
    let bytes = src.as_bytes();
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    let raw = bytes.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1;
    if !raw {
        let (content, next, newlines) = lex_string(src, i);
        return (Tok::Str(content), next, newlines);
    }
    // Raw string: scan for `"` followed by `hashes` hash marks.
    let closer: String = std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
    match src[i..].find(&closer) {
        Some(off) => {
            let content = &src[i..i + off];
            let newlines = content.matches('\n').count() as u32;
            (Tok::Str(content.to_string()), i + off + closer.len(), newlines)
        }
        None => (Tok::Str(src[i..].to_string()), src.len(), 0),
    }
}

/// Lex a char/byte literal starting *after* the opening apostrophe; returns
/// the index after the closing apostrophe.
fn lex_char(bytes: &[u8], start: usize) -> usize {
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let mut src = String::new();
        src.push_str("// panic!(\"not me\")\n");
        src.push_str("/* unwrap() /* nested */ still comment */\n");
        src.push_str("let s = \"panic!()\";\n");
        src.push_str("let r = r#\"unwrap()\"#;\n");
        let ids = idents(&src);
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes = toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = toks.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn string_content_is_kept() {
        let toks = lex(r#"let h = "x-auth-token";"#).tokens;
        assert!(toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::Str(s) if s == "x-auth-token")));
    }

    #[test]
    fn allow_directive_targets_next_code_line() {
        let lexed = lex("let a = 1;\n// lint:allow(checked above)\nlet b = x.unwrap();\n");
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].reason, "checked above");
        assert_eq!(lexed.allows[0].target_line, 3);
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let lexed = lex("let b = x.unwrap(); // lint:allow(infallible here)\n");
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].target_line, 1);
    }

    #[test]
    fn multiline_allow_reason_joins_lines() {
        let lexed = lex(
            "// lint:allow(the ring only hands out ids\n// from its own table)\nlet d = m.expect(\"id\");\n",
        );
        assert_eq!(lexed.allows.len(), 1);
        assert!(lexed.allows[0].reason.contains("hands out ids"));
        assert!(lexed.allows[0].reason.contains("own table"));
        assert_eq!(lexed.allows[0].target_line, 3);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = lex("0..2usize; 1.max(2); 1.5");
        let nums: Vec<_> = toks
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["0", "2usize", "1", "2", "1.5"]);
    }
}
