//! Findings, fingerprints and report rendering (human text and JSON).

use std::fmt::Write as _;

/// How a finding gates CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Must be fixed or carry a `lint:allow(...)` justification; never
    /// enters the baseline.
    Deny,
    /// Tolerated when present in the committed baseline; only *new*
    /// occurrences fail the run.
    Warn,
}

/// One analysis finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Pass that produced it: `lock-order`, `panic-path`, `invariants`.
    pub pass: &'static str,
    pub severity: Severity,
    /// Repo-relative file path.
    pub file: String,
    /// Qualified function name, or `<file>` for file-level findings.
    pub function: String,
    /// 1-based line (for the human report only — not part of the
    /// fingerprint, so baselines survive unrelated edits).
    pub line: u32,
    /// Stable, line-number-free detail; part of the fingerprint.
    pub detail: String,
    /// Human-facing message (may carry counts and context).
    pub message: String,
}

impl Finding {
    /// Identity used for baseline comparison. Deliberately excludes line
    /// numbers and free-form message text.
    pub fn fingerprint(&self) -> String {
        format!("{}|{}|{}|{}", self.pass, self.file, self.function, self.detail)
    }
}

fn severity_name(s: Severity) -> &'static str {
    match s {
        Severity::Deny => "deny",
        Severity::Warn => "warn",
    }
}

/// Render findings as a human report, grouped by pass.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    let mut passes: Vec<&'static str> = findings.iter().map(|f| f.pass).collect();
    passes.sort_unstable();
    passes.dedup();
    for pass in passes {
        let _ = writeln!(out, "== {pass} ==");
        for f in findings.iter().filter(|f| f.pass == pass) {
            let _ = writeln!(
                out,
                "{}: {}:{} [{}] {}",
                severity_name(f.severity),
                f.file,
                f.line,
                f.function,
                f.message
            );
        }
    }
    out
}

/// Minimal JSON string escape.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a JSON document:
/// `{"findings": [...], "summary": {"deny": n, "warn": n}}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"pass\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"function\": \"{}\", \"line\": {}, \"detail\": \"{}\", \"message\": \"{}\", \"fingerprint\": \"{}\"}}",
            f.pass,
            severity_name(f.severity),
            esc(&f.file),
            esc(&f.function),
            f.line,
            esc(&f.detail),
            esc(&f.message),
            esc(&f.fingerprint()),
        );
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    let deny = findings.iter().filter(|f| f.severity == Severity::Deny).count();
    let warn = findings.iter().filter(|f| f.severity == Severity::Warn).count();
    let _ = write!(
        out,
        "  ],\n  \"summary\": {{\"deny\": {deny}, \"warn\": {warn}}}\n}}\n"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            pass: "panic-path",
            severity: Severity::Deny,
            file: "crates/demo/src/lib.rs".into(),
            function: "demo::f".into(),
            line: 3,
            detail: "unwrap".into(),
            message: "call to unwrap() on a production data path".into(),
        }
    }

    #[test]
    fn fingerprint_excludes_line_and_message() {
        let mut a = sample();
        let mut b = sample();
        a.line = 3;
        b.line = 99;
        b.message = "different".into();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn json_escapes_quotes() {
        let mut f = sample();
        f.message = "uses \"x\"".into();
        let json = render_json(&[f]);
        assert!(json.contains("uses \\\"x\\\""));
        assert!(json.contains("\"deny\": 1"));
    }
}
