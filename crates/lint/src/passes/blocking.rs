//! Transitive blocking-under-guard analysis.
//!
//! Subsumes the old per-function `blocking-under-guard` / `blocking-via`
//! warns: instead of flagging only blocking calls lexically inside a guard
//! span (or one uniquely-named frame below it), this pass computes, for
//! every workspace function, the set of [`BlockClass`]es its call tree can
//! bottom out in (bottom-up fixpoint over the resolved call graph), then
//! flags any call made while a lock guard is live whose transitive class
//! set is non-empty — naming the blocking class(es) in the finding.
//!
//! Severity: chains reaching `thread::sleep` are deny — a sleep under a
//! guard serialises every contender for the full duration and is never
//! intentional here. The other classes (channel receives, condvar waits,
//! joins, bulk I/O) stay warns: they are frequently bounded by timeouts
//! the token model cannot see.
//!
//! Soundness: resolution misses trait dispatch and untyped locals (false
//! negatives); guard spans over-approximate `if` conditions; `recv` /
//! `wait` on deadline-bounded primitives still count as their class —
//! `// lint:allow(reason)` is the escape hatch for those.

use crate::analysis::{
    block_class, find_acquisitions, is_net_file, lock_index, BlockClass, Graph,
};
use crate::findings::{Finding, Severity};
use std::collections::BTreeSet;

pub fn run(graph: &Graph<'_>) -> Vec<Finding> {
    let by_field = lock_index(graph.files);

    // Direct blocking classes per node.
    let mut seed: Vec<BTreeSet<BlockClass>> = vec![BTreeSet::new(); graph.nodes.len()];
    for (n, s) in seed.iter_mut().enumerate() {
        let in_net = is_net_file(&graph.file(n).path);
        let toks = graph.body_toks(n);
        for c in &graph.calls[n] {
            if let Some(cls) = block_class(toks, c.at, &c.name, in_net) {
                s.insert(cls);
            }
        }
    }
    let class_sets = graph.propagate_up(seed);

    let mut out = Vec::new();
    for n in 0..graph.nodes.len() {
        let pf = graph.file(n);
        let f = graph.func(n);
        let toks = graph.body_toks(n);
        let in_net = is_net_file(&pf.path);
        for a in find_acquisitions(toks, f, &by_field) {
            let span = a.at..a.until.min(toks.len());
            for c in &graph.calls[n] {
                if !span.contains(&c.at) {
                    continue;
                }
                if matches!(c.name.as_str(), "lock" | "read" | "write" | "drop") {
                    continue;
                }
                // Direct blocking call under the guard, or a resolved call
                // whose transitive class set is non-empty.
                let classes: BTreeSet<BlockClass> =
                    match block_class(toks, c.at, &c.name, in_net) {
                        Some(cls) => BTreeSet::from([cls]),
                        None => match c.target {
                            Some(t) if t != n => class_sets[t].clone(),
                            _ => BTreeSet::new(),
                        },
                    };
                if classes.is_empty() {
                    continue;
                }
                if pf.allow_for(c.line).map(|al| !al.reason.trim().is_empty()).unwrap_or(false) {
                    continue;
                }
                let names: Vec<&str> = classes.iter().map(|cl| cl.name()).collect();
                let severity = if classes.contains(&BlockClass::Sleep) {
                    Severity::Deny
                } else {
                    Severity::Warn
                };
                out.push(Finding {
                    pass: "transitive-blocking",
                    severity,
                    file: pf.path.clone(),
                    function: f.qual_name.clone(),
                    line: c.line,
                    detail: format!(
                        "held-across:{}:{}:{}",
                        a.lock,
                        c.name,
                        names.join("+")
                    ),
                    message: format!(
                        "`{}()` may block ({}) while `{}` is held",
                        c.name,
                        names.join(", "),
                        a.lock
                    ),
                });
            }
        }
    }
    out
}
