//! Deadline-flow analysis over the TCP data plane.
//!
//! Generalises invariants rule 3 ("retry loops consult `Deadline`") and
//! rule 5 ("sockets read under a timeout") from "same function" to "any
//! call chain". Socket sinks — reads, writes and connects in
//! `objectstore/src/net/{server,pool,wire}.rs` — must be reachable only
//! through call paths that establish a timeout, and when a `Deadline` is
//! in scope anywhere on the path, a frame on that path must flow it into
//! the timeout.
//!
//! Three rules, all deny:
//!
//! 1. **`unbounded-{read,write}`** — a sink is reachable from a root
//!    function through a path on which no frame *establishes* the matching
//!    timeout. `estab(F)` = `F` calls `set_read_timeout` /
//!    `set_write_timeout` directly, or any resolved callee does (bottom-up
//!    fixpoint — `Conn::tighten` establishes both, so callers of `tighten`
//!    are establishing frames). The backward walk from the sink prunes at
//!    establishing frames; a non-establishing root is a violation.
//! 2. **`deadline-unflowed-{read,write}`** — same walk, but tracking
//!    whether a `Deadline` was *available* on the path (a frame whose
//!    signature mentions `Deadline` or whose body mentions `deadline`).
//!    The walk prunes at frames where an available deadline actually flows
//!    into the timeout (`deadline_estab(F)` = `F` is deadline-available
//!    and sets the timeout directly, or a resolved callee does). Reaching
//!    a root with a deadline available but never flowed is a violation:
//!    the budget existed and the socket ignored it. Paths with no deadline
//!    anywhere (e.g. the server accept loop, which has no request context
//!    yet) are rule 1's business only.
//! 3. **`unbounded-connect`** — a literal `TcpStream::connect(..)` in the
//!    net plane; `connect_timeout` is the only allowed spelling.
//!
//! Sinks inside functions *named* `read` / `write` / `flush` / `peek` are
//! exempt: those are `Read`/`Write` trait adapters (`PacedStream::read`)
//! whose timeouts are their callers' responsibility by construction. For
//! the same reason, a *root* whose signature takes a generic writer or
//! reader (`impl Write`, `W: Write`) is exempt — serialization helpers
//! are routinely driven against `Vec<u8>` buffers; when a real caller
//! hands them a socket, that caller's own frames are still on the walked
//! path and still checked.
//!
//! This is a may-analysis at function granularity: establishment anywhere
//! in a frame covers the whole frame (token order inside a body is not
//! modelled — closures dissolve into their enclosing function, which makes
//! order unsound to use). Limits in DESIGN.md §15.

use crate::analysis::Graph;
use crate::findings::{Finding, Severity};
use crate::lexer::Tok;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Files whose socket calls are in scope (the TCP data plane).
const SCOPE: &[&str] = &["net/server.rs", "net/pool.rs", "net/wire.rs"];

/// Trait-adapter function names whose sinks are exempt.
const ADAPTERS: &[&str] = &["read", "write", "flush", "peek"];

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    Read,
    Write,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Read => "read",
            Kind::Write => "write",
        }
    }
    fn setter(self) -> &'static str {
        match self {
            Kind::Read => "set_read_timeout",
            Kind::Write => "set_write_timeout",
        }
    }
}

pub fn run(graph: &Graph<'_>) -> Vec<Finding> {
    let n_nodes = graph.nodes.len();

    // Establishment facts, propagated bottom-up: a frame establishes a
    // timeout kind if it sets it directly or any resolved callee does.
    let mut estab_seed: Vec<BTreeSet<Kind>> = vec![BTreeSet::new(); n_nodes];
    let mut flow_seed: Vec<BTreeSet<Kind>> = vec![BTreeSet::new(); n_nodes];
    let mut avail = vec![false; n_nodes];
    let mut io_generic = vec![false; n_nodes];
    for n in 0..n_nodes {
        avail[n] = graph
            .sig_toks(n)
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "Deadline"))
            || has_deadline_value(graph.body_toks(n));
        // `fn f(w: &mut impl Write)` / `<W: Write>` — a serialization
        // helper over a caller-supplied writer. Its sinks are checked
        // through every real caller; the helper itself is never the frame
        // responsible for the timeout.
        io_generic[n] = graph
            .sig_toks(n)
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "Write" || s == "Read"));
        for kind in [Kind::Read, Kind::Write] {
            if graph.calls_name(n, kind.setter()) {
                estab_seed[n].insert(kind);
                if avail[n] {
                    flow_seed[n].insert(kind);
                }
            }
        }
    }
    let estab = graph.propagate_up(estab_seed);
    let deadline_estab = graph.propagate_up(flow_seed);

    let mut out = Vec::new();
    // (sink node, kind, rule, root) -> first sink line, for deduplication.
    let mut found: BTreeMap<(usize, Kind, &'static str, usize), u32> = BTreeMap::new();

    for n in 0..n_nodes {
        let pf = graph.file(n);
        if !SCOPE.iter().any(|s| pf.path.ends_with(s)) {
            continue;
        }
        let f = graph.func(n);
        let toks = graph.body_toks(n);

        // Rule 3: literal TcpStream::connect.
        for (i, t) in toks.iter().enumerate() {
            if t.tok != Tok::Ident("TcpStream".into()) {
                continue;
            }
            let is_connect = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':')))
                && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Ident(m)) if m == "connect")
                && matches!(toks.get(i + 4).map(|t| &t.tok), Some(Tok::Punct('(')));
            if !is_connect || allowed(pf, t.line) {
                continue;
            }
            out.push(Finding {
                pass: "deadline-flow",
                severity: Severity::Deny,
                file: pf.path.clone(),
                function: f.qual_name.clone(),
                line: t.line,
                detail: "unbounded-connect".into(),
                message: "`TcpStream::connect` has no timeout; use `connect_timeout` with a deadline-derived budget".into(),
            });
        }

        if ADAPTERS.contains(&f.name.as_str()) {
            continue;
        }

        for c in &graph.calls[n] {
            let Some(kind) = sink_kind(toks, c.at, &c.name) else { continue };
            if allowed(pf, c.line) {
                continue;
            }
            // Rule 1: every path to this sink must establish the timeout.
            for root in bad_roots(graph, n, |m| estab[m].contains(&kind)) {
                if io_generic[root] {
                    continue;
                }
                found.entry((n, kind, "unbounded", root)).or_insert(c.line);
            }
            // Rule 2: paths with a deadline available must flow it in.
            for root in unflowed_roots(graph, n, &avail, |m| deadline_estab[m].contains(&kind)) {
                if io_generic[root] {
                    continue;
                }
                found.entry((n, kind, "deadline-unflowed", root)).or_insert(c.line);
            }
        }
    }

    for ((n, kind, rule, root), line) in found {
        let pf = graph.file(n);
        let f = graph.func(n);
        let root_name = graph.func(root).qual_name.clone();
        let message = match rule {
            "unbounded" => format!(
                "socket {} reachable from `{root_name}` without any frame setting `{}` on the path",
                kind.name(),
                kind.setter()
            ),
            _ => format!(
                "socket {} reachable from `{root_name}` on a path where a `Deadline` is available but never flows into `{}`",
                kind.name(),
                kind.setter()
            ),
        };
        out.push(Finding {
            pass: "deadline-flow",
            severity: Severity::Deny,
            file: pf.path.clone(),
            function: f.qual_name.clone(),
            line,
            detail: format!("{rule}-{}:{root_name}", kind.name()),
            message,
        });
    }
    out
}

fn allowed(pf: &crate::model::ParsedFile, line: u32) -> bool {
    pf.allow_for(line).map(|a| !a.reason.trim().is_empty()).unwrap_or(false)
}

/// Does the body use a `deadline` *value*? Struct-literal field inits and
/// struct-pattern type ascriptions (`deadline: ...`) don't count — a
/// constructor storing a field is not a budget available to this frame.
fn has_deadline_value(toks: &[crate::lexer::Token]) -> bool {
    toks.iter().enumerate().any(|(i, t)| {
        matches!(&t.tok, Tok::Ident(s) if s == "deadline")
            && !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
    })
}

/// Classify the call at `at` as a socket sink. Only method calls count
/// (`.read(buf)`, not a free `read(..)`), `read`/`write` need at least one
/// argument (zero-arg forms are the lock-acquisition grammar), and
/// `write_all`/`flush`/`peek` count unconditionally.
fn sink_kind(toks: &[crate::lexer::Token], at: usize, name: &str) -> Option<Kind> {
    let method = at >= 1 && matches!(toks.get(at - 1).map(|t| &t.tok), Some(Tok::Punct('.')));
    if !method {
        return None;
    }
    let has_args = !matches!(toks.get(at + 2).map(|t| &t.tok), Some(Tok::Punct(')')));
    match name {
        "read" | "peek" if name == "peek" || has_args => Some(Kind::Read),
        "write" if has_args => Some(Kind::Write),
        "write_all" | "flush" => Some(Kind::Write),
        _ => None,
    }
}

/// Rule 1 backward walk: roots reachable from `start` through frames where
/// `is_estab` is false. Walking stops (satisfied) at establishing frames;
/// a non-establishing frame with no callers is a bad root.
fn bad_roots(graph: &Graph<'_>, start: usize, is_estab: impl Fn(usize) -> bool) -> Vec<usize> {
    if is_estab(start) {
        return Vec::new();
    }
    let mut roots = BTreeSet::new();
    let mut seen = BTreeSet::from([start]);
    let mut queue = VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        if graph.callers[v].is_empty() {
            roots.insert(v);
            continue;
        }
        for &c in &graph.callers[v] {
            if is_estab(c) || !seen.insert(c) {
                continue;
            }
            queue.push_back(c);
        }
    }
    roots.into_iter().collect()
}

/// Rule 2 backward walk: like [`bad_roots`], but a root only counts when a
/// deadline was available on some frame of the path that reached it, and
/// pruning happens at frames where the deadline actually flows into the
/// timeout.
fn unflowed_roots(
    graph: &Graph<'_>,
    start: usize,
    avail: &[bool],
    flows: impl Fn(usize) -> bool,
) -> Vec<usize> {
    if flows(start) {
        return Vec::new();
    }
    let mut roots = BTreeSet::new();
    let mut seen = BTreeSet::from([(start, avail[start])]);
    let mut queue = VecDeque::from([(start, avail[start])]);
    while let Some((v, seen_avail)) = queue.pop_front() {
        if graph.callers[v].is_empty() {
            if seen_avail {
                roots.insert(v);
            }
            continue;
        }
        for &c in &graph.callers[v] {
            if flows(c) {
                continue;
            }
            let state = (c, seen_avail || avail[c]);
            if seen.insert(state) {
                queue.push_back(state);
            }
        }
    }
    roots.into_iter().collect()
}
