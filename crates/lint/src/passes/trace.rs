//! Trace-propagation completeness over the objectstore crate.
//!
//! PR 7 made traces wire-spanning: requests carry `x-scoop-trace`
//! (`headers::TRACE`) out, responses carry `x-scoop-server-spans` back as
//! a chunked trailer, and the pool merges the trailer at every
//! response-completion path. Greps can check call sites exist; they cannot
//! check that *every path* constructs its request with the trace attached
//! or finishes its response with the trailer decoded. This pass checks the
//! three obligations as call-graph properties. All findings deny.
//!
//! 1. **`no-trace-attach`** — every transport-egress site (`send_raw`,
//!    `send_pipelined`, or `pool.send(..)`) outside the net plane must be
//!    in a function that *attaches* the trace header (a `.set(..)` call
//!    with `headers::TRACE` in its arguments, directly or via a resolved
//!    callee such as `raw_headers`), or that visibly *forwards* a caller's
//!    request (signature mentions `Request` or `Headers`) — in which case
//!    every resolved caller must satisfy the same obligation recursively.
//!    A forwarding function with no resolved callers cannot be proven and
//!    denies.
//! 2. **`completion-without-span-merge`** — response-completion sites
//!    (`checkin` / `evict` calls) must be balanced by server-span decodes
//!    (`merge_server_spans` / `take_server_spans` calls) in the same
//!    function: each completion path must have decoded the trailer before
//!    giving the connection back. Counting (not ordering) is used because
//!    token order across branches is not path-sensitive; the functions
//!    named `checkin` / `evict` themselves are the primitives and exempt.
//! 3. **`head-without-span-trailer`** — a function encoding a response
//!    head (`encode_response_head`) must also emit the span trailer
//!    (`server_span_trailer`): clean and error terminations alike carry
//!    spans back.

use crate::analysis::Graph;
use crate::findings::{Finding, Severity};
use crate::lexer::Tok;
use std::collections::BTreeMap;

/// Crate in scope: the TCP transport and its client live here.
const SCOPE_PREFIX: &str = "crates/objectstore/src/";

pub fn run(graph: &Graph<'_>) -> Vec<Finding> {
    let n_nodes = graph.nodes.len();
    let in_scope: Vec<bool> =
        (0..n_nodes).map(|n| graph.file(n).path.starts_with(SCOPE_PREFIX)).collect();

    // Attach facts, propagated bottom-up (raw_headers attaches, so its
    // callers attach too).
    let mut attach_seed: Vec<std::collections::BTreeSet<&str>> =
        vec![std::collections::BTreeSet::new(); n_nodes];
    for (n, s) in attach_seed.iter_mut().enumerate() {
        if sets_trace(graph.body_toks(n)) {
            s.insert("attach");
        }
    }
    let attach_sets = graph.propagate_up(attach_seed);
    let attaches: Vec<bool> = attach_sets.iter().map(|s| !s.is_empty()).collect();
    let forwards: Vec<bool> = (0..n_nodes)
        .map(|n| {
            graph.sig_toks(n).iter().any(|t| {
                matches!(&t.tok, Tok::Ident(s) if s == "Request" || s == "Headers")
            })
        })
        .collect();

    let mut out = Vec::new();
    let mut memo: BTreeMap<usize, bool> = BTreeMap::new();

    for (n, &scoped) in in_scope.iter().enumerate() {
        if !scoped {
            continue;
        }
        let pf = graph.file(n);
        let f = graph.func(n);
        let toks = graph.body_toks(n);

        // Rule 1: egress sites outside the net plane.
        if !pf.path.contains("/net/") {
            for c in &graph.calls[n] {
                let egress = match c.name.as_str() {
                    "send_raw" | "send_pipelined" => true,
                    // Bare `send` only as the pool transport's literal
                    // `pool.send(..)` — channel sends share the name.
                    "send" => {
                        c.at >= 2
                            && matches!(toks.get(c.at - 1).map(|t| &t.tok), Some(Tok::Punct('.')))
                            && matches!(toks.get(c.at - 2).map(|t| &t.tok), Some(Tok::Ident(r)) if r == "pool")
                    }
                    _ => false,
                };
                if !egress || allowed(pf, c.line) {
                    continue;
                }
                if !satisfied(graph, n, &attaches, &forwards, &mut memo, &mut Vec::new()) {
                    out.push(Finding {
                        pass: "trace-propagation",
                        severity: Severity::Deny,
                        file: pf.path.clone(),
                        function: f.qual_name.clone(),
                        line: c.line,
                        detail: format!("no-trace-attach:{}", c.name),
                        message: format!(
                            "request egress `{}()` on a path that never attaches `headers::TRACE`",
                            c.name
                        ),
                    });
                }
            }
        }

        // Rule 2: completions balanced by span decodes.
        if f.name != "checkin" && f.name != "evict" {
            let merges = graph.calls[n]
                .iter()
                .filter(|c| c.name == "merge_server_spans" || c.name == "take_server_spans")
                .count();
            let completions: Vec<&crate::analysis::Call> = graph.calls[n]
                .iter()
                .filter(|c| c.name == "checkin" || c.name == "evict")
                .collect();
            if completions.len() > merges {
                let first = completions[0];
                if !allowed(pf, first.line) {
                    out.push(Finding {
                        pass: "trace-propagation",
                        severity: Severity::Deny,
                        file: pf.path.clone(),
                        function: f.qual_name.clone(),
                        line: first.line,
                        detail: "completion-without-span-merge".into(),
                        message: format!(
                            "{} completion path(s) but {merges} server-span decode(s): a response finishes without decoding `x-scoop-server-spans`",
                            completions.len()
                        ),
                    });
                }
            }
        }

        // Rule 3: response heads must be followed by span trailers.
        if graph.calls_name(n, "encode_response_head") && !graph.calls_name(n, "server_span_trailer")
        {
            let line = graph.calls[n]
                .iter()
                .find(|c| c.name == "encode_response_head")
                .map(|c| c.line)
                .unwrap_or(0);
            if !allowed(pf, line) {
                out.push(Finding {
                    pass: "trace-propagation",
                    severity: Severity::Deny,
                    file: pf.path.clone(),
                    function: f.qual_name.clone(),
                    line,
                    detail: "head-without-span-trailer".into(),
                    message: "response head encoded but `server_span_trailer()` never emitted on this path".into(),
                });
            }
        }
    }
    out
}

fn allowed(pf: &crate::model::ParsedFile, line: u32) -> bool {
    pf.allow_for(line).map(|a| !a.reason.trim().is_empty()).unwrap_or(false)
}

/// Does the body contain `.set(.. TRACE ..)` (with `TRACE` anywhere in the
/// balanced argument list)?
fn sets_trace(toks: &[crate::lexer::Token]) -> bool {
    for (i, t) in toks.iter().enumerate() {
        if !matches!(&t.tok, Tok::Ident(s) if s == "set") {
            continue;
        }
        if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(s) if s == "TRACE" => return true,
                _ => {}
            }
            j += 1;
        }
    }
    false
}

/// Rule-1 obligation: the function attaches the trace, or forwards a
/// request and every resolved caller (recursively) satisfies the same.
/// Cycles resolve to "unproven" (deny) — conservative, and absent in
/// practice.
fn satisfied(
    graph: &Graph<'_>,
    n: usize,
    attaches: &[bool],
    forwards: &[bool],
    memo: &mut BTreeMap<usize, bool>,
    stack: &mut Vec<usize>,
) -> bool {
    if let Some(&v) = memo.get(&n) {
        return v;
    }
    if stack.contains(&n) {
        return false;
    }
    let v = if attaches[n] {
        true
    } else if !forwards[n] || graph.callers[n].is_empty() {
        false
    } else {
        stack.push(n);
        let ok = graph.callers[n]
            .clone()
            .iter()
            .all(|&c| satisfied(graph, c, attaches, forwards, memo, stack));
        stack.pop();
        ok
    };
    memo.insert(n, v);
    v
}
