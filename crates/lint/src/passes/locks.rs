//! Lock-order analysis.
//!
//! Builds a per-function lock-acquisition model and a workspace lock-order
//! graph on top of the shared call graph ([`crate::analysis::Graph`]):
//!
//! * **Lock identities** are `Struct.field` pairs for every struct field of
//!   type `Mutex<_>` / `RwLock<_>` (parking_lot or std — the acquisition
//!   grammar `.lock()` / `.read()` / `.write()` with no arguments is the
//!   same).
//! * **Acquisitions** inside a function body open a *guard span*: to the
//!   end of the enclosing statement for temporaries, to the end of the
//!   enclosing block (or an explicit `drop(guard)`) for `let`-bound guards.
//! * While a guard is live, a second acquisition adds a lock-order edge,
//!   and calls resolved through the call graph contribute the locks their
//!   callees take transitively (bottom-up summary propagation).
//! * **Cycles** in the resulting graph across distinct locks are deny
//!   findings; re-acquiring the *same* lock identity while it may be held
//!   is a warn finding (name-based identity cannot distinguish instances).
//!
//! Blocking calls under a guard are the transitive-blocking pass's job
//! ([`crate::passes::blocking`]), which subsumes the old
//! `blocking-under-guard` / `blocking-via` warns this pass used to emit.
//!
//! Known limits (documented in DESIGN.md §15): identities are name-based,
//! so two structs sharing a field name alias unless the enclosing `impl`
//! type disambiguates; call resolution is name-based through receiver
//! types (false negatives, not false positives); guard spans
//! over-approximate `if` conditions (a condition temporary is treated as
//! live through the `if` body).

use crate::analysis::{find_acquisitions, lock_index, Graph};
use crate::findings::{Finding, Severity};
use crate::model::{Function, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

pub fn run(graph: &Graph<'_>) -> Vec<Finding> {
    let by_field = lock_index(graph.files);

    // Direct acquisitions per node, then transitive lock summaries.
    let acquires: Vec<_> = (0..graph.nodes.len())
        .map(|n| find_acquisitions(graph.body_toks(n), graph.func(n), &by_field))
        .collect();
    let seed: Vec<BTreeSet<String>> = acquires
        .iter()
        .map(|acq| acq.iter().map(|a| a.lock.clone()).collect())
        .collect();
    let lock_sets = graph.propagate_up(seed);

    // Walk guard spans: collect edges and self-reacquisitions.
    let mut out = Vec::new();
    // edge -> example (file, function, line)
    let mut edges: BTreeMap<(String, String), (String, String, u32)> = BTreeMap::new();
    for (n, acq) in acquires.iter().enumerate() {
        let pf = graph.file(n);
        let f = graph.func(n);
        let toks = graph.body_toks(n);
        for a in acq {
            let span = a.at..a.until.min(toks.len());
            // Other acquisitions while `a` is held.
            for b in &acquires[n] {
                if b.at <= a.at || !span.contains(&b.at) {
                    continue;
                }
                if a.lock == b.lock {
                    push(&mut out, pf, f, b.line, Severity::Warn,
                        format!("reacquire:{}", a.lock),
                        format!("`{}` may be re-acquired while already held (instance analysis is name-based)", a.lock));
                } else {
                    edges.entry((a.lock.clone(), b.lock.clone())).or_insert((
                        pf.path.clone(),
                        f.qual_name.clone(),
                        b.line,
                    ));
                }
            }
            // Resolved calls while held contribute their transitive locks.
            for c in &graph.calls[n] {
                if !span.contains(&c.at) {
                    continue;
                }
                if matches!(c.name.as_str(), "lock" | "read" | "write" | "drop") {
                    continue;
                }
                let Some(t) = c.target else { continue };
                if t == n {
                    continue;
                }
                for callee_lock in &lock_sets[t] {
                    if *callee_lock == a.lock {
                        push(&mut out, pf, f, c.line, Severity::Warn,
                            format!("reacquire-via:{}:{}", a.lock, c.name),
                            format!("call to `{}()` may re-acquire `{}` already held here", c.name, a.lock));
                    } else {
                        edges.entry((a.lock.clone(), callee_lock.clone())).or_insert((
                            pf.path.clone(),
                            f.qual_name.clone(),
                            c.line,
                        ));
                    }
                }
            }
        }
    }

    // Cycle detection over the lock-order graph.
    for cycle in find_cycles(&edges) {
        let (file, function, line) = edges
            .get(&(cycle[0].clone(), cycle[1 % cycle.len()].clone()))
            .cloned()
            .unwrap_or_else(|| ("<graph>".into(), "<graph>".into(), 0));
        out.push(Finding {
            pass: "lock-order",
            severity: Severity::Deny,
            file,
            function,
            line,
            detail: format!("lock-cycle:{}", cycle.join(",")),
            message: format!(
                "lock-order cycle: {} -> {} (acquisition order differs across call paths)",
                cycle.join(" -> "),
                cycle[0]
            ),
        });
    }
    out
}

fn push(
    out: &mut Vec<Finding>,
    pf: &ParsedFile,
    f: &Function,
    line: u32,
    severity: Severity,
    detail: String,
    message: String,
) {
    if pf.allow_for(line).map(|a| !a.reason.trim().is_empty()).unwrap_or(false) {
        return;
    }
    out.push(Finding {
        pass: "lock-order",
        severity,
        file: pf.path.clone(),
        function: f.qual_name.clone(),
        line,
        detail,
        message,
    });
}

/// Simple cycles in the edge set, canonicalised (rotation-minimal) and
/// deduplicated. The graph is tiny (locks in the workspace), so a DFS per
/// node is fine.
fn find_cycles(edges: &BTreeMap<(String, String), (String, String, u32)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack = vec![(start, adj.get(start).cloned().unwrap_or_default())];
        let mut path = vec![start];
        while let Some((_, nexts)) = stack.last_mut() {
            match nexts.pop() {
                Some(n) => {
                    if n == start {
                        // Canonical rotation: start at the lexicographically
                        // smallest node.
                        let min = path
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, s)| **s)
                            .map(|(i, _)| i)
                            .unwrap_or(0);
                        let rotated: Vec<String> = path
                            .iter()
                            .cycle()
                            .skip(min)
                            .take(path.len())
                            .map(|s| s.to_string())
                            .collect();
                        cycles.insert(rotated);
                    } else if !path.contains(&n) && path.len() < 8 {
                        path.push(n);
                        stack.push((n, adj.get(n).cloned().unwrap_or_default()));
                    }
                }
                None => {
                    stack.pop();
                    path.pop();
                }
            }
        }
    }
    cycles.into_iter().collect()
}
