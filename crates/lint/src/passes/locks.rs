//! Lock-order analysis.
//!
//! Builds a per-function lock-acquisition model and a workspace lock-order
//! graph:
//!
//! * **Lock identities** are `Struct.field` pairs for every struct field of
//!   type `Mutex<_>` / `RwLock<_>` (parking_lot or std — the acquisition
//!   grammar `.lock()` / `.read()` / `.write()` with no arguments is the
//!   same).
//! * **Acquisitions** inside a function body open a *guard span*: to the
//!   end of the enclosing statement for temporaries, to the end of the
//!   enclosing block (or an explicit `drop(guard)`) for `let`-bound guards.
//! * While a guard is live, a second acquisition adds a lock-order edge,
//!   and calls are resolved through the crate call graph (names that are
//!   unique workspace-wide only — see limits below) so edges include locks
//!   taken transitively by callees.
//! * **Cycles** in the resulting graph across distinct locks are deny
//!   findings; re-acquiring the *same* lock identity while it may be held
//!   is a warn finding (name-based identity cannot distinguish instances).
//! * Blocking calls (sleeps, channel receives, joins, file I/O) under a
//!   live guard are warn findings.
//!
//! Known limits (documented in DESIGN.md): identities are name-based, so
//! two structs sharing a field name alias unless the enclosing `impl` type
//! disambiguates; calls are resolved only when the callee name is unique
//! among non-test functions in the workspace (common names like `get` are
//! skipped — false negatives, not false positives); guard spans
//! over-approximate `if` conditions (a condition temporary is treated as
//! live through the `if` body).

use crate::findings::{Finding, Severity};
use crate::lexer::Tok;
use crate::model::{Function, LockField, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// Callee names treated as blocking (sleeps, waits, file I/O).
const BLOCKING_CALLS: &[&str] = &[
    "sleep",
    "recv",
    "recv_timeout",
    "join",
    "wait",
    "wait_timeout",
    "read_to_end",
    "read_exact",
    "write_all",
    "sync_all",
];

/// One acquisition site inside a function body.
#[derive(Debug, Clone)]
struct Acquire {
    /// `Struct.field` identity.
    lock: String,
    /// Body-relative token index of the receiver field ident.
    at: usize,
    /// Body-relative token index one past the guard's live span.
    until: usize,
    line: u32,
}

/// Per-function summary used for transitive resolution.
#[derive(Debug, Default, Clone)]
struct Summary {
    locks: BTreeSet<String>,
    blocking: bool,
}

pub fn run(files: &[ParsedFile]) -> Vec<Finding> {
    // Lock identities: field name -> owning structs.
    let mut by_field: BTreeMap<&str, Vec<&LockField>> = BTreeMap::new();
    for pf in files {
        for lf in &pf.structs {
            by_field.entry(lf.field.as_str()).or_default().push(lf);
        }
    }

    // Function index: name -> (file idx, fn idx) for unique-name call
    // resolution among non-test functions.
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, pf) in files.iter().enumerate() {
        for (gi, f) in pf.functions.iter().enumerate() {
            if !f.is_test {
                by_name.entry(f.name.as_str()).or_default().push((fi, gi));
            }
        }
    }

    // Direct per-function facts.
    let mut acquires: BTreeMap<(usize, usize), Vec<Acquire>> = BTreeMap::new();
    let mut calls: BTreeMap<(usize, usize), Vec<(String, bool)>> = BTreeMap::new();
    let mut summaries: BTreeMap<(usize, usize), Summary> = BTreeMap::new();
    for (fi, pf) in files.iter().enumerate() {
        for (gi, f) in pf.functions.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let toks = &pf.tokens[f.body.clone()];
            let acq = find_acquisitions(toks, f, &by_field);
            let called = find_calls(toks);
            let s = Summary {
                locks: acq.iter().map(|a| a.lock.clone()).collect(),
                blocking: called.iter().any(|(_, blocking)| *blocking),
            };
            summaries.insert((fi, gi), s);
            acquires.insert((fi, gi), acq);
            calls.insert((fi, gi), called);
        }
    }

    // Fixpoint: propagate callee locks/blocking through uniquely-named
    // calls.
    loop {
        let mut changed = false;
        for (&key, called) in &calls {
            let mut add = Summary::default();
            for (callee, _) in called {
                let Some(targets) = by_name.get(callee.as_str()) else { continue };
                if targets.len() != 1 || targets[0] == key {
                    continue;
                }
                if let Some(t) = summaries.get(&targets[0]) {
                    add.locks.extend(t.locks.iter().cloned());
                    add.blocking |= t.blocking;
                }
            }
            let cur = summaries.entry(key).or_default();
            let before = (cur.locks.len(), cur.blocking);
            cur.locks.extend(add.locks);
            cur.blocking |= add.blocking;
            if (cur.locks.len(), cur.blocking) != before {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Walk guard spans: collect edges, self-reacquisitions and blocking
    // calls under guard.
    let mut out = Vec::new();
    // edge -> example (file, function, line)
    let mut edges: BTreeMap<(String, String), (String, String, u32)> = BTreeMap::new();
    for (fi, pf) in files.iter().enumerate() {
        for (gi, f) in pf.functions.iter().enumerate() {
            let Some(acq) = acquires.get(&(fi, gi)) else { continue };
            let toks = &pf.tokens[f.body.clone()];
            for a in acq {
                let span = a.at..a.until.min(toks.len());
                // Other acquisitions while `a` is held.
                for b in acq {
                    if b.at <= a.at || !span.contains(&b.at) {
                        continue;
                    }
                    if a.lock == b.lock {
                        push(&mut out, pf, f, b.line, Severity::Warn,
                            format!("reacquire:{}", a.lock),
                            format!("`{}` may be re-acquired while already held (instance analysis is name-based)", a.lock));
                    } else {
                        edges.entry((a.lock.clone(), b.lock.clone())).or_insert((
                            pf.path.clone(),
                            f.qual_name.clone(),
                            b.line,
                        ));
                    }
                }
                // Calls while held.
                for (ci, t) in toks[span.clone()].iter().enumerate() {
                    let i = a.at + ci;
                    let Tok::Ident(name) = &t.tok else { continue };
                    let is_call = toks.get(i + 1).map(|n| n.tok == Tok::Punct('(')).unwrap_or(false);
                    if !is_call || name == "lock" || name == "read" || name == "write" || name == "drop" {
                        continue;
                    }
                    if is_blocking_call(toks, i, name) {
                        push(&mut out, pf, f, t.line, Severity::Warn,
                            format!("blocking-under-guard:{}:{name}", a.lock),
                            format!("blocking call `{name}()` while holding `{}`", a.lock));
                        continue;
                    }
                    let Some(targets) = by_name.get(name.as_str()) else { continue };
                    if targets.len() != 1 || targets[0] == (fi, gi) {
                        continue;
                    }
                    let Some(sum) = summaries.get(&targets[0]) else { continue };
                    for callee_lock in &sum.locks {
                        if *callee_lock == a.lock {
                            push(&mut out, pf, f, t.line, Severity::Warn,
                                format!("reacquire-via:{}:{name}", a.lock),
                                format!("call to `{name}()` may re-acquire `{}` already held here", a.lock));
                        } else {
                            edges.entry((a.lock.clone(), callee_lock.clone())).or_insert((
                                pf.path.clone(),
                                f.qual_name.clone(),
                                t.line,
                            ));
                        }
                    }
                    if sum.blocking {
                        push(&mut out, pf, f, t.line, Severity::Warn,
                            format!("blocking-via:{}:{name}", a.lock),
                            format!("call to `{name}()` may block while holding `{}`", a.lock));
                    }
                }
            }
        }
    }

    // Cycle detection over the lock-order graph.
    for cycle in find_cycles(&edges) {
        let (file, function, line) = edges
            .get(&(cycle[0].clone(), cycle[1 % cycle.len()].clone()))
            .cloned()
            .unwrap_or_else(|| ("<graph>".into(), "<graph>".into(), 0));
        out.push(Finding {
            pass: "lock-order",
            severity: Severity::Deny,
            file,
            function,
            line,
            detail: format!("lock-cycle:{}", cycle.join(",")),
            message: format!(
                "lock-order cycle: {} -> {} (acquisition order differs across call paths)",
                cycle.join(" -> "),
                cycle[0]
            ),
        });
    }
    out
}

fn push(
    out: &mut Vec<Finding>,
    pf: &ParsedFile,
    f: &Function,
    line: u32,
    severity: Severity,
    detail: String,
    message: String,
) {
    if pf.allow_for(line).map(|a| !a.reason.trim().is_empty()).unwrap_or(false) {
        return;
    }
    out.push(Finding {
        pass: "lock-order",
        severity,
        file: pf.path.clone(),
        function: f.qual_name.clone(),
        line,
        detail,
        message,
    });
}

/// Find `field.lock()` / `.read()` / `.write()` acquisitions in a body and
/// compute each guard's live span.
fn find_acquisitions(
    toks: &[crate::lexer::Token],
    f: &Function,
    by_field: &BTreeMap<&str, Vec<&LockField>>,
) -> Vec<Acquire> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(field) = &t.tok else { continue };
        let Some(owners) = by_field.get(field.as_str()) else { continue };
        // Pattern: field `.` {lock|read|write} `(` `)`
        let m = match (
            toks.get(i + 1).map(|t| &t.tok),
            toks.get(i + 2).map(|t| &t.tok),
            toks.get(i + 3).map(|t| &t.tok),
            toks.get(i + 4).map(|t| &t.tok),
        ) {
            (
                Some(Tok::Punct('.')),
                Some(Tok::Ident(m)),
                Some(Tok::Punct('(')),
                Some(Tok::Punct(')')),
            ) if m == "lock" || m == "read" || m == "write" => m.clone(),
            _ => continue,
        };
        let _ = m;
        // Resolve the identity: prefer the enclosing impl type when it owns
        // a matching field, else a unique owner, else the first (sorted).
        let owner = f
            .impl_type
            .as_deref()
            .filter(|t| owners.iter().any(|lf| lf.owner == *t))
            .map(str::to_string)
            .or_else(|| {
                if owners.len() == 1 {
                    Some(owners[0].owner.clone())
                } else {
                    None
                }
            })
            .unwrap_or_else(|| {
                let mut names: Vec<&str> = owners.iter().map(|lf| lf.owner.as_str()).collect();
                names.sort_unstable();
                names[0].to_string()
            });
        let lock = format!("{owner}.{field}");
        let until = guard_span_end(toks, i);
        out.push(Acquire { lock, at: i, until, line: t.line });
    }
    out
}

/// One past the end of the guard's live span for the acquisition whose
/// receiver ident is at `at`.
fn guard_span_end(toks: &[crate::lexer::Token], at: usize) -> usize {
    // A guard immediately method-chained (`m.lock().remove(k)`) is a
    // temporary even inside a `let` statement — the binding holds the
    // method's result, not the guard.
    let chained = matches!(toks.get(at + 5).map(|t| &t.tok), Some(Tok::Punct('.')));
    // Let-bound? Scan backwards to the statement start.
    let mut j = at;
    let mut let_guard: Option<String> = None;
    while !chained && j > 0 {
        j -= 1;
        match &toks[j].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
            Tok::Ident(kw) if kw == "let" => {
                // Guard name: first ident after `let`, skipping `mut`.
                let mut k = j + 1;
                while let Some(Tok::Ident(n)) = toks.get(k).map(|t| &t.tok) {
                    if n == "mut" {
                        k += 1;
                    } else {
                        let_guard = Some(n.clone());
                        break;
                    }
                }
                break;
            }
            _ => {}
        }
    }
    match let_guard {
        Some(name) => {
            // Live to the end of the enclosing block, or `drop(name)`.
            let mut depth = 0i32;
            let mut i = at;
            while i < toks.len() {
                match &toks[i].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth < 0 {
                            return i;
                        }
                    }
                    Tok::Ident(d) if d == "drop" && depth == 0 => {
                        if let (Some(Tok::Punct('(')), Some(Tok::Ident(g))) =
                            (toks.get(i + 1).map(|t| &t.tok), toks.get(i + 2).map(|t| &t.tok))
                        {
                            if *g == name {
                                return i;
                            }
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            toks.len()
        }
        None => {
            // Temporary: to the end of the statement — the next `;` with
            // balanced delimiters (a `match` scrutinee guard lives through
            // the whole match, so braces are skipped balanced). A brace
            // group closing back to depth 0 with no continuation token
            // after it ends the statement too (`if let ... {}` / `match
            // ... {}` in statement position have no trailing `;`).
            let mut depth = 0i32;
            let mut i = at;
            while i < toks.len() {
                match &toks[i].tok {
                    Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth < 0 {
                            return i;
                        }
                        if depth == 0 {
                            match toks.get(i + 1).map(|t| &t.tok) {
                                // `{...}.method()` / `{...}?` chains on.
                                Some(Tok::Punct('.')) | Some(Tok::Punct('?')) => {}
                                // `if ... {} else {}` continues.
                                Some(Tok::Ident(k)) if k == "else" => {}
                                _ => return i + 1,
                            }
                        }
                    }
                    Tok::Punct(')') | Tok::Punct(']') => {
                        depth -= 1;
                        if depth < 0 {
                            return i;
                        }
                    }
                    Tok::Punct(';') if depth == 0 => return i,
                    _ => {}
                }
                i += 1;
            }
            toks.len()
        }
    }
}

/// Is the call at ident index `i` a blocking one? `join` only counts with
/// zero arguments — `JoinHandle::join()`, not `PathBuf::join(p)` or
/// `slice::join(sep)`.
fn is_blocking_call(toks: &[crate::lexer::Token], i: usize, name: &str) -> bool {
    if !BLOCKING_CALLS.contains(&name) {
        return false;
    }
    name != "join" || matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(')')))
}

/// All callee names in a body (`name(...)` and `.name(...)`), macros
/// excluded; the flag marks blocking callees (see [`is_blocking_call`]).
fn find_calls(toks: &[crate::lexer::Token]) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        if toks.get(i + 1).map(|n| n.tok == Tok::Punct('(')).unwrap_or(false) {
            out.push((name.clone(), is_blocking_call(toks, i, name)));
        }
    }
    out
}

/// Simple cycles in the edge set, canonicalised (rotation-minimal) and
/// deduplicated. The graph is tiny (locks in the workspace), so a DFS per
/// node is fine.
fn find_cycles(edges: &BTreeMap<(String, String), (String, String, u32)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack = vec![(start, adj.get(start).cloned().unwrap_or_default())];
        let mut path = vec![start];
        while let Some((_, nexts)) = stack.last_mut() {
            match nexts.pop() {
                Some(n) => {
                    if n == start {
                        // Canonical rotation: start at the lexicographically
                        // smallest node.
                        let min = path
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, s)| **s)
                            .map(|(i, _)| i)
                            .unwrap_or(0);
                        let rotated: Vec<String> = path
                            .iter()
                            .cycle()
                            .skip(min)
                            .take(path.len())
                            .map(|s| s.to_string())
                            .collect();
                        cycles.insert(rotated);
                    } else if !path.contains(&n) && path.len() < 8 {
                        path.push(n);
                        stack.push((n, adj.get(n).cloned().unwrap_or_default()));
                    }
                }
                None => {
                    stack.pop();
                    path.pop();
                }
            }
        }
    }
    cycles.into_iter().collect()
}
