//! The analysis passes. Each pass takes the parsed workspace and returns
//! findings; the driver in [`crate::analyze`] merges and deduplicates.

pub mod invariants;
pub mod locks;
pub mod panics;
