//! The analysis passes. Each pass takes the parsed workspace (or the
//! shared call graph, for the interprocedural ones) and returns findings;
//! the driver in [`crate::analyze`] merges and deduplicates.

pub mod blocking;
pub mod deadline;
pub mod invariants;
pub mod locks;
pub mod panics;
pub mod trace;
