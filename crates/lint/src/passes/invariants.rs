//! Scoop invariant lints — project-specific rules the type system cannot
//! express:
//!
//! 1. **Error classification**: every `ScoopError` variant must appear in
//!    `ScoopError::class`, and the match must not use a `_` wildcard — a
//!    new variant must force a conscious retryable/non-retryable decision.
//! 2. **Header hygiene**: every `x-*` header string literal must come from
//!    `scoop_common::headers`; a literal anywhere else (outside test code)
//!    is a deny finding.
//! 3. **Bounded retries**: a function that loops on `is_retryable`
//!    decisions must consult a deadline — retry loops without a time bound
//!    turn transient faults into hangs.
//! 4. **Trace propagation**: the `x-scoop-trace` header may only be spelled
//!    out in `scoop_common::headers` — everywhere else, *including test
//!    code*, it must travel via the constant, and the headers module must
//!    actually define it.
//! 5. **Socket read timeouts**: a data-path function that opens a
//!    `TcpStream` (connect or accept) must configure `set_read_timeout`
//!    before reading — a raw blocking read turns one stalled peer into a
//!    hung worker, defeating every deadline above it.
//! 6. **Span layer names**: the layer argument of `telemetry::span` must
//!    come from the `telemetry::layers` constants, never a string literal.
//!    The span wire codec rejects layers outside `layers::ALL`, so a
//!    hand-spelled layer (or a typo of one) records spans the trailer
//!    silently refuses to ship — the trace loses a tier with no error.

use crate::findings::{Finding, Severity};
use crate::lexer::Tok;
use crate::model::ParsedFile;
use crate::passes::panics::DATA_PATH_CRATES;

/// The one module allowed to define `x-*` header literals.
const HEADERS_MODULE: &str = "crates/common/src/headers.rs";

/// The one module allowed to spell span layer names as literals (it defines
/// the `layers` constants and its tests exercise the codec's rejections).
const TELEMETRY_MODULE: &str = "crates/common/src/telemetry.rs";

pub fn run(files: &[ParsedFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    check_error_classification(files, &mut out);
    check_header_literals(files, &mut out);
    check_retry_deadlines(files, &mut out);
    check_trace_header(files, &mut out);
    check_tcp_read_timeouts(files, &mut out);
    check_span_layer_literals(files, &mut out);
    out
}

/// Rule 1: `ScoopError::class` covers every variant, no wildcard.
fn check_error_classification(files: &[ParsedFile], out: &mut Vec<Finding>) {
    let enum_def = files
        .iter()
        .flat_map(|pf| pf.enums.iter().map(move |e| (pf, e)))
        .find(|(_, e)| e.name == "ScoopError" && !e.is_test);
    let class_fn = files
        .iter()
        .flat_map(|pf| pf.functions.iter().map(move |f| (pf, f)))
        .find(|(_, f)| {
            f.name == "class" && f.impl_type.as_deref() == Some("ScoopError") && !f.is_test
        });
    let ((epf, edef), (cpf, cdef)) = match (enum_def, class_fn) {
        (Some(e), Some(c)) => (e, c),
        _ => {
            out.push(Finding {
                pass: "invariants",
                severity: Severity::Deny,
                file: "crates/common/src/error.rs".into(),
                function: "<file>".into(),
                line: 1,
                detail: "error-classification-missing".into(),
                message: "could not locate `enum ScoopError` and `ScoopError::class`".into(),
            });
            return;
        }
    };
    let _ = epf;
    let toks = &cpf.tokens[cdef.body.clone()];
    let mut mentioned: Vec<&str> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if let Tok::Ident(root) = &t.tok {
            // `ScoopError::X` or `Self::X`
            if (root == "ScoopError" || root == "Self")
                && toks.get(i + 1).map(|t| t.tok == Tok::Punct(':')).unwrap_or(false)
                && toks.get(i + 2).map(|t| t.tok == Tok::Punct(':')).unwrap_or(false)
            {
                if let Some(Tok::Ident(v)) = toks.get(i + 3).map(|t| &t.tok) {
                    mentioned.push(v);
                }
            }
            // `_ =>` wildcard arm
            if root == "_"
                && toks.get(i + 1).map(|t| t.tok == Tok::Punct('=')).unwrap_or(false)
                && toks.get(i + 2).map(|t| t.tok == Tok::Punct('>')).unwrap_or(false)
            {
                out.push(Finding {
                    pass: "invariants",
                    severity: Severity::Deny,
                    file: cpf.path.clone(),
                    function: cdef.qual_name.clone(),
                    line: t.line,
                    detail: "error-classification-wildcard".into(),
                    message: "`ScoopError::class` uses a `_` arm; new variants would be classified silently".into(),
                });
            }
        }
    }
    for v in &edef.variants {
        if !mentioned.iter().any(|m| m == v) {
            out.push(Finding {
                pass: "invariants",
                severity: Severity::Deny,
                file: cpf.path.clone(),
                function: cdef.qual_name.clone(),
                line: cdef.line,
                detail: format!("error-variant-unclassified:{v}"),
                message: format!(
                    "`ScoopError::{v}` is not classified retryable/non-retryable in `class()`"
                ),
            });
        }
    }
}

/// Rule 2: `x-*` literals only in the headers module.
fn check_header_literals(files: &[ParsedFile], out: &mut Vec<Finding>) {
    for pf in files {
        if pf.path.ends_with(HEADERS_MODULE) || pf.path == HEADERS_MODULE {
            continue;
        }
        for (i, t) in pf.tokens.iter().enumerate() {
            let Tok::Str(s) = &t.tok else { continue };
            if !s.to_ascii_lowercase().starts_with("x-") || pf.in_test_code(i) {
                continue;
            }
            if pf.allow_for(t.line).map(|a| !a.reason.trim().is_empty()).unwrap_or(false) {
                continue;
            }
            let function = pf
                .functions
                .iter()
                .find(|f| f.body.contains(&i))
                .map(|f| f.qual_name.clone())
                .unwrap_or_else(|| "<file>".into());
            out.push(Finding {
                pass: "invariants",
                severity: Severity::Deny,
                file: pf.path.clone(),
                function,
                line: t.line,
                detail: format!("header-literal:{s}"),
                message: format!(
                    "header literal \"{s}\" outside scoop_common::headers; import the constant"
                ),
            });
        }
    }
}

/// Rule 4: the trace header is only ever spelled out in the headers module.
///
/// Stricter than rule 2 on purpose: it also covers test code. A test that
/// hand-writes `"x-scoop-trace"` keeps passing if the constant drifts, and
/// the trace silently unthreads from the very path the test claims to
/// cover. When the headers module is part of the scanned set, it must also
/// define the literal itself — otherwise the constant the rest of the tree
/// imports no longer names the trace header.
fn check_trace_header(files: &[ParsedFile], out: &mut Vec<Finding>) {
    let mut saw_headers_module = false;
    let mut headers_module_defines_it = false;
    for pf in files {
        let is_headers = pf.path.ends_with(HEADERS_MODULE) || pf.path == HEADERS_MODULE;
        if is_headers {
            saw_headers_module = true;
        }
        for (i, t) in pf.tokens.iter().enumerate() {
            let Tok::Str(s) = &t.tok else { continue };
            if !s.to_ascii_lowercase().contains("scoop-trace") {
                continue;
            }
            if is_headers {
                headers_module_defines_it = true;
                continue;
            }
            if pf.allow_for(t.line).map(|a| !a.reason.trim().is_empty()).unwrap_or(false) {
                continue;
            }
            let function = pf
                .functions
                .iter()
                .find(|f| f.body.contains(&i))
                .map(|f| f.qual_name.clone())
                .unwrap_or_else(|| "<file>".into());
            out.push(Finding {
                pass: "invariants",
                severity: Severity::Deny,
                file: pf.path.clone(),
                function,
                line: t.line,
                detail: "trace-header-literal".into(),
                message: format!(
                    "\"{s}\" spelled out instead of `scoop_common::headers::TRACE` — trace \
                     propagation must go through the constant, in tests too"
                ),
            });
        }
    }
    if saw_headers_module && !headers_module_defines_it {
        out.push(Finding {
            pass: "invariants",
            severity: Severity::Deny,
            file: HEADERS_MODULE.into(),
            function: "<file>".into(),
            line: 1,
            detail: "trace-constant-missing".into(),
            message: "`scoop_common::headers` no longer defines the `x-scoop-trace` constant"
                .into(),
        });
    }
}

/// Rule 5: data-path sockets read under a timeout.
///
/// Keyed off the function that *opens* the stream (`TcpStream` plus a
/// `connect*`/`accept*` call): that is where ownership starts, so that is
/// where the timeout must be configured before any read can block. A
/// function that merely reads a stream someone else opened inherits the
/// opener's configuration and is not flagged.
fn check_tcp_read_timeouts(files: &[ParsedFile], out: &mut Vec<Finding>) {
    for pf in files {
        if !DATA_PATH_CRATES.contains(&pf.crate_name.as_str()) {
            continue;
        }
        for f in &pf.functions {
            if f.is_test {
                continue;
            }
            let toks = &pf.tokens[f.body.clone()];
            let mut tcp = false;
            let mut opens = false;
            let mut timeout = false;
            for t in toks {
                if let Tok::Ident(s) = &t.tok {
                    match s.as_str() {
                        "TcpStream" => tcp = true,
                        "set_read_timeout" => timeout = true,
                        s if s.starts_with("connect") || s.starts_with("accept") => {
                            opens = true;
                        }
                        _ => {}
                    }
                }
            }
            if tcp && opens && !timeout {
                if pf.allow_for(f.line).map(|a| !a.reason.trim().is_empty()).unwrap_or(false) {
                    continue;
                }
                out.push(Finding {
                    pass: "invariants",
                    severity: Severity::Deny,
                    file: pf.path.clone(),
                    function: f.qual_name.clone(),
                    line: f.line,
                    detail: "tcp-read-without-timeout".into(),
                    message: "opens a TcpStream without `set_read_timeout` — a stalled peer \
                              would hang this data-path worker forever"
                        .into(),
                });
            }
        }
    }
}

/// Rule 6: span layer names travel via the `telemetry::layers` constants.
///
/// Flags any `span(...)` call whose *second* top-level argument is a string
/// literal. Like rule 4 this covers test code: a test that hand-writes a
/// layer keeps passing when the canonical list changes, while the wire
/// codec starts dropping the very spans the test claims to observe. Calls
/// whose second argument is anything else (an ident, a path, a non-string
/// expression — e.g. `csvengine`'s unrelated `view.span(i)`) are ignored.
fn check_span_layer_literals(files: &[ParsedFile], out: &mut Vec<Finding>) {
    for pf in files {
        if pf.path.ends_with(TELEMETRY_MODULE) || pf.path == TELEMETRY_MODULE {
            continue;
        }
        for (i, t) in pf.tokens.iter().enumerate() {
            if !matches!(&t.tok, Tok::Ident(s) if s == "span") {
                continue;
            }
            if !pf.tokens.get(i + 1).map(|t| t.tok == Tok::Punct('(')).unwrap_or(false) {
                continue;
            }
            // Walk the argument list, tracking bracket depth; remember the
            // first token of the second depth-1 argument.
            let mut depth = 0i32;
            let mut commas = 0usize;
            let mut second_arg: Option<&Tok> = None;
            for t in &pf.tokens[i + 1..] {
                match &t.tok {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Tok::Punct(',') if depth == 1 => commas += 1,
                    tok if depth == 1 && commas == 1 && second_arg.is_none() => {
                        second_arg = Some(tok);
                    }
                    _ => {}
                }
            }
            let Some(Tok::Str(s)) = second_arg else { continue };
            if pf.allow_for(t.line).map(|a| !a.reason.trim().is_empty()).unwrap_or(false) {
                continue;
            }
            let function = pf
                .functions
                .iter()
                .find(|f| f.body.contains(&i))
                .map(|f| f.qual_name.clone())
                .unwrap_or_else(|| "<file>".into());
            out.push(Finding {
                pass: "invariants",
                severity: Severity::Deny,
                file: pf.path.clone(),
                function,
                line: t.line,
                detail: format!("span-layer-literal:{s}"),
                message: format!(
                    "span layer \"{s}\" spelled as a literal; use a `telemetry::layers` \
                     constant — the span wire codec drops layers outside the canonical list"
                ),
            });
        }
    }
}

/// Rule 3: retry loops consult a deadline.
fn check_retry_deadlines(files: &[ParsedFile], out: &mut Vec<Finding>) {
    for pf in files {
        for f in &pf.functions {
            if f.is_test {
                continue;
            }
            let toks = &pf.tokens[f.body.clone()];
            let mut loops = false;
            let mut retry = false;
            let mut deadline = false;
            for t in toks {
                if let Tok::Ident(s) = &t.tok {
                    match s.as_str() {
                        "loop" | "while" => loops = true,
                        "is_retryable" => retry = true,
                        _ if s.to_ascii_lowercase().contains("deadline") => deadline = true,
                        _ => {}
                    }
                }
            }
            if loops && retry && !deadline {
                if pf.allow_for(f.line).map(|a| !a.reason.trim().is_empty()).unwrap_or(false) {
                    continue;
                }
                out.push(Finding {
                    pass: "invariants",
                    severity: Severity::Deny,
                    file: pf.path.clone(),
                    function: f.qual_name.clone(),
                    line: f.line,
                    detail: "retry-loop-without-deadline".into(),
                    message: "loops on retryable errors without consulting a Deadline — unbounded retry".into(),
                });
            }
        }
    }
}
