//! Panic-path audit: production data-path code must not contain latent
//! panics.
//!
//! Deny-level: `unwrap()`, `expect()`, `panic!`, `unreachable!`, `todo!`,
//! `unimplemented!` in non-test functions of the data-path crates. A
//! `// lint:allow(justification)` on (or immediately above) the line
//! suppresses the finding; an *empty* justification is itself a deny
//! finding.
//!
//! Warn-level (baselined): slice/map indexing (`x[i]` panics on a miss)
//! and unchecked integer arithmetic (`+`/`-`/`*` overflow panics in debug,
//! wraps silently in release), reported once per function so the baseline
//! is stable under edits within a function.

use crate::findings::{Finding, Severity};
use crate::lexer::Tok;
use crate::model::ParsedFile;

/// Crates whose `src/` is a production data path.
pub const DATA_PATH_CRATES: &[&str] = &[
    "objectstore",
    "storlets",
    "connector",
    "compute",
    "common",
    "csvengine",
    "columnar",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn run(files: &[ParsedFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for pf in files {
        if !DATA_PATH_CRATES.contains(&pf.crate_name.as_str()) {
            continue;
        }
        for f in &pf.functions {
            if f.is_test {
                continue;
            }
            let mut saw_indexing: Option<u32> = None;
            let mut saw_arith: Option<u32> = None;
            let toks = &pf.tokens[f.body.clone()];
            for (i, t) in toks.iter().enumerate() {
                match &t.tok {
                    // `.unwrap(` / `.expect(`
                    Tok::Ident(m) if (m == "unwrap" || m == "expect") => {
                        let is_method = i > 0 && toks[i - 1].tok == Tok::Punct('.');
                        let is_call = toks.get(i + 1).map(|n| n.tok == Tok::Punct('(')).unwrap_or(false);
                        if is_method && is_call {
                            push_deny(&mut out, pf, f, t.line, m.clone(), format!("call to `{m}()` on a production data path"));
                        }
                    }
                    Tok::Ident(m) if PANIC_MACROS.contains(&m.as_str()) => {
                        let is_macro = toks.get(i + 1).map(|n| n.tok == Tok::Punct('!')).unwrap_or(false);
                        if is_macro {
                            push_deny(&mut out, pf, f, t.line, format!("{m}!"), format!("`{m}!` reachable on a production data path"));
                        }
                    }
                    // Indexing: `[` after a value (ident / `)` / `]`).
                    // `x[..]` (full-range slicing) cannot panic.
                    Tok::Punct('[')
                        if i > 0 && is_value_end(&toks[i - 1].tok) && !is_full_range(toks, i) =>
                    {
                        saw_indexing.get_or_insert(t.line);
                    }
                    // Binary integer arithmetic.
                    Tok::Punct(op @ ('+' | '-' | '*')) if i > 0 => {
                        let prev = &toks[i - 1].tok;
                        let next = toks.get(i + 1).map(|n| &n.tok);
                        // `->`, `*=` handled below; `&mut *p`, `return -x`
                        // etc. excluded by the binary-position test.
                        let prev_value = is_value_end(prev) && !is_keyword_operand(prev);
                        let next_value = matches!(
                            next,
                            Some(Tok::Ident(_)) | Some(Tok::Num(_)) | Some(Tok::Punct('('))
                        );
                        let arrow = *op == '-' && matches!(next, Some(Tok::Punct('>')));
                        if prev_value && next_value && !arrow {
                            saw_arith.get_or_insert(t.line);
                        }
                    }
                    _ => {}
                }
            }
            if let Some(line) = saw_indexing {
                push_warn(&mut out, pf, f, line, "indexing", "slice/map indexing can panic; prefer `get()`");
            }
            if let Some(line) = saw_arith {
                push_warn(&mut out, pf, f, line, "arithmetic", "unchecked integer arithmetic; prefer checked/saturating ops");
            }
        }
    }
    out
}

/// Can the token end a value expression (making a following `[` an index,
/// or a following operator binary)?
fn is_value_end(t: &Tok) -> bool {
    matches!(t, Tok::Ident(_) | Tok::Num(_) | Tok::Punct(')') | Tok::Punct(']'))
}

/// Keywords that look like idents but cannot be a left operand.
fn is_keyword_operand(t: &Tok) -> bool {
    matches!(
        t,
        Tok::Ident(s) if matches!(
            s.as_str(),
            "mut" | "return" | "in" | "if" | "while" | "match" | "else" | "let" | "as" | "move" | "break"
        )
    )
}

/// Is the bracket group opening at `open` exactly `[..]`?
fn is_full_range(toks: &[crate::lexer::Token], open: usize) -> bool {
    matches!(
        (toks.get(open + 1).map(|t| &t.tok), toks.get(open + 2).map(|t| &t.tok), toks.get(open + 3).map(|t| &t.tok)),
        (Some(Tok::Punct('.')), Some(Tok::Punct('.')), Some(Tok::Punct(']')))
    )
}

fn push_deny(
    out: &mut Vec<Finding>,
    pf: &ParsedFile,
    f: &crate::model::Function,
    line: u32,
    detail: String,
    message: String,
) {
    if let Some(allow) = pf.allow_for(line) {
        if !allow.reason.trim().is_empty() {
            return; // justified at the site
        }
        // An empty justification defeats the purpose of the escape hatch.
        out.push(Finding {
            pass: "panic-path",
            severity: Severity::Deny,
            file: pf.path.clone(),
            function: f.qual_name.clone(),
            line,
            detail: "allow-without-justification".into(),
            message: "`lint:allow()` with an empty justification".into(),
        });
        return;
    }
    out.push(Finding {
        pass: "panic-path",
        severity: Severity::Deny,
        file: pf.path.clone(),
        function: f.qual_name.clone(),
        line,
        detail,
        message,
    });
}

fn push_warn(
    out: &mut Vec<Finding>,
    pf: &ParsedFile,
    f: &crate::model::Function,
    line: u32,
    detail: &str,
    message: &str,
) {
    if pf.allow_for(line).map(|a| !a.reason.trim().is_empty()).unwrap_or(false) {
        return;
    }
    out.push(Finding {
        pass: "panic-path",
        severity: Severity::Warn,
        file: pf.path.clone(),
        function: f.qual_name.clone(),
        line,
        detail: detail.into(),
        message: message.into(),
    });
}
