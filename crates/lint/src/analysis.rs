//! Shared interprocedural analysis: the workspace call graph, method
//! resolution through receiver types, reachability / backward-slice
//! queries, and the guard-span + blocking-call machinery several passes
//! share.
//!
//! # Call resolution
//!
//! A call site `name(...)` resolves to at most one workspace function, by
//! the first rule that applies (all name-based — no type inference):
//!
//! 1. `self.name(...)` — the enclosing `impl` type's method of that name,
//!    when exactly one exists;
//! 2. `self.field.name(...)` — methods of the field's declared type names
//!    ([`crate::model::FieldDef`]), when exactly one matches;
//! 3. `param.name(...)` — methods of the parameter's declared type names
//!    (parsed from the signature span), when exactly one matches;
//! 4. `Type::name(...)` — that type's method, when exactly one exists;
//! 5. bare fallback: the name is unique among all non-test workspace
//!    functions *and* is not on the [`COMMON_NAMES`] deny list (names like
//!    `send` or `lock` are overwhelmingly std methods; resolving them by
//!    global uniqueness would fabricate edges from `tx.send(..)` to an
//!    unrelated workspace `send`).
//!
//! Unresolvable calls stay unresolved — false *negatives*, never false
//! edges. Locals bound by `let`/`match` are untyped, closures dissolve into
//! their enclosing function, and trait dispatch is invisible; DESIGN.md §15
//! spells out the soundness consequences for each pass.

use crate::lexer::{Tok, Token};
use crate::model::{Function, LockField, ParsedFile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method names too common to resolve by bare global uniqueness (rule 5).
/// Typed resolutions (rules 1–4) ignore this list — `self.send(..)` inside
/// `impl HttpPool` is unambiguous no matter how common `send` is.
pub const COMMON_NAMES: &[&str] = &[
    "add", "all", "any", "apply", "as_mut", "as_ref", "as_str", "call", "ceil", "clear", "clone",
    "close", "cmp", "collect", "contains", "count", "dec", "default", "div", "drop", "end",
    "entry", "eq", "err", "expect", "extend", "filter", "find", "first", "floor", "flush", "fmt",
    "fold", "from", "get", "get_mut", "handle", "hash", "inc", "index", "init", "insert", "into",
    "is_empty", "iter", "join", "last", "len", "load", "lock", "main", "map", "max", "min", "mul",
    "new", "next", "observe", "ok", "open", "parse", "peek", "pop", "push", "read", "record",
    "recv", "rem", "remove", "reset", "retain", "run", "send", "set", "sort", "spawn", "split",
    "start", "stop", "store", "sub", "sum", "swap", "take", "tick", "to_string", "trim", "unwrap",
    "update", "wait", "with_capacity", "write",
];

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name as written.
    pub name: String,
    /// Body-relative token index of the callee ident.
    pub at: usize,
    pub line: u32,
    /// Resolved target node, when rules 1–5 pin down exactly one.
    pub target: Option<usize>,
}

/// The workspace call graph over all non-test functions.
pub struct Graph<'a> {
    pub files: &'a [ParsedFile],
    /// Node `n` is `files[nodes[n].0].functions[nodes[n].1]`.
    pub nodes: Vec<(usize, usize)>,
    /// Call sites per node, in body token order.
    pub calls: Vec<Vec<Call>>,
    /// Reverse adjacency: nodes whose resolved calls target `n`.
    pub callers: Vec<Vec<usize>>,
}

impl<'a> Graph<'a> {
    /// Build the graph: index functions, parse parameter types, resolve
    /// every call site.
    pub fn build(files: &'a [ParsedFile]) -> Graph<'a> {
        let mut nodes = Vec::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_impl: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (fi, pf) in files.iter().enumerate() {
            for (gi, f) in pf.functions.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                let n = nodes.len();
                nodes.push((fi, gi));
                by_name.entry(f.name.as_str()).or_default().push(n);
                if let Some(t) = f.impl_type.as_deref() {
                    by_impl.entry((t, f.name.as_str())).or_default().push(n);
                }
            }
        }
        let mut field_types: BTreeMap<(&str, &str), &'a [String]> = BTreeMap::new();
        for pf in files {
            for fd in &pf.fields {
                field_types
                    .entry((fd.owner.as_str(), fd.field.as_str()))
                    .or_insert(&fd.type_names);
            }
        }

        let mut calls = Vec::with_capacity(nodes.len());
        for &(fi, gi) in &nodes {
            let pf = &files[fi];
            let f = &pf.functions[gi];
            let params = param_types(&pf.tokens[f.sig.clone()]);
            let toks = &pf.tokens[f.body.clone()];
            let mut sites = Vec::new();
            for (i, t) in toks.iter().enumerate() {
                let Tok::Ident(name) = &t.tok else { continue };
                if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
                    continue;
                }
                let target = resolve(
                    toks, i, name, f, &params, &by_name, &by_impl, &field_types,
                );
                sites.push(Call { name: name.clone(), at: i, line: t.line, target });
            }
            calls.push(sites);
        }

        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (n, sites) in calls.iter().enumerate() {
            for c in sites {
                if let Some(t) = c.target {
                    if !callers[t].contains(&n) {
                        callers[t].push(n);
                    }
                }
            }
        }
        Graph { files, nodes, calls, callers }
    }

    /// The function behind node `n`.
    pub fn func(&self, n: usize) -> &'a Function {
        let (fi, gi) = self.nodes[n];
        &self.files[fi].functions[gi]
    }

    /// The file behind node `n`.
    pub fn file(&self, n: usize) -> &'a ParsedFile {
        &self.files[self.nodes[n].0]
    }

    /// Body tokens of node `n`.
    pub fn body_toks(&self, n: usize) -> &'a [Token] {
        let (fi, gi) = self.nodes[n];
        let f = &self.files[fi].functions[gi];
        &self.files[fi].tokens[f.body.clone()]
    }

    /// Signature tokens of node `n`.
    pub fn sig_toks(&self, n: usize) -> &'a [Token] {
        let (fi, gi) = self.nodes[n];
        let f = &self.files[fi].functions[gi];
        &self.files[fi].tokens[f.sig.clone()]
    }

    /// Does node `n`'s body call `name(...)` directly (resolved or not)?
    pub fn calls_name(&self, n: usize, name: &str) -> bool {
        self.calls[n].iter().any(|c| c.name == name)
    }

    /// Every node reachable from `starts` through resolved calls
    /// (inclusive).
    pub fn reachable(&self, starts: &[usize]) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = starts.iter().copied().collect();
        let mut queue: VecDeque<usize> = starts.iter().copied().collect();
        while let Some(n) = queue.pop_front() {
            for c in &self.calls[n] {
                if let Some(t) = c.target {
                    if seen.insert(t) {
                        queue.push_back(t);
                    }
                }
            }
        }
        seen
    }

    /// Every node from which `n` is reachable (inclusive): the backward
    /// slice of callers.
    pub fn backward_slice(&self, n: usize) -> BTreeSet<usize> {
        let mut seen = BTreeSet::from([n]);
        let mut queue = VecDeque::from([n]);
        while let Some(m) = queue.pop_front() {
            for &c in &self.callers[m] {
                if seen.insert(c) {
                    queue.push_back(c);
                }
            }
        }
        seen
    }

    /// Smallest fixpoint of `seed` closed under "caller inherits the union
    /// of its resolved callees' sets": the classic bottom-up summary
    /// propagation every flow pass here uses.
    pub fn propagate_up<T: Clone + Ord>(&self, seed: Vec<BTreeSet<T>>) -> Vec<BTreeSet<T>> {
        let mut sets = seed;
        loop {
            let mut changed = false;
            for n in 0..self.nodes.len() {
                let mut add: Vec<T> = Vec::new();
                for c in &self.calls[n] {
                    let Some(t) = c.target else { continue };
                    if t == n {
                        continue;
                    }
                    for v in &sets[t] {
                        if !sets[n].contains(v) {
                            add.push(v.clone());
                        }
                    }
                }
                for v in add {
                    changed |= sets[n].insert(v);
                }
            }
            if !changed {
                return sets;
            }
        }
    }
}

/// Resolve one call site per the module-level rules. `i` is the callee
/// ident's body-relative index.
#[allow(clippy::too_many_arguments)]
fn resolve(
    toks: &[Token],
    i: usize,
    name: &str,
    f: &Function,
    params: &BTreeMap<String, Vec<String>>,
    by_name: &BTreeMap<&str, Vec<usize>>,
    by_impl: &BTreeMap<(&str, &str), Vec<usize>>,
    field_types: &BTreeMap<(&str, &str), &[String]>,
) -> Option<usize> {
    let ident_at = |j: usize| match toks.get(j).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct_at = |j: usize| match toks.get(j).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    };
    let unique = |nodes: Option<&Vec<usize>>| match nodes {
        Some(v) if v.len() == 1 => Some(v[0]),
        _ => None,
    };
    let bare = || {
        if COMMON_NAMES.contains(&name) {
            return None;
        }
        unique(by_name.get(name))
    };

    if i >= 1 && punct_at(i - 1) == Some('.') && i >= 2 {
        let recv = i - 2;
        // Rule 1: `self.name(...)`.
        if ident_at(recv) == Some("self") {
            if let Some(t) = f.impl_type.as_deref() {
                if let Some(n) = unique(by_impl.get(&(t, name))) {
                    return Some(n);
                }
            }
            return bare();
        }
        // Rule 2: `self.field.name(...)`.
        if let Some(field) = ident_at(recv) {
            if recv >= 2 && punct_at(recv - 1) == Some('.') && ident_at(recv - 2) == Some("self") {
                if let Some(owner) = f.impl_type.as_deref() {
                    if let Some(tys) = field_types.get(&(owner, field)) {
                        if let Some(n) = unique_across(tys, name, by_impl) {
                            return Some(n);
                        }
                    }
                }
                return bare();
            }
            // Rule 3: `param.name(...)`.
            if let Some(tys) = params.get(field) {
                if let Some(n) = unique_across(tys, name, by_impl) {
                    return Some(n);
                }
            }
        }
        return bare();
    }
    // Rule 4: `Type::name(...)`.
    if i >= 3 && punct_at(i - 1) == Some(':') && punct_at(i - 2) == Some(':') {
        if let Some(ty) = ident_at(i - 3) {
            if ty.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                if let Some(n) = unique(by_impl.get(&(ty, name))) {
                    return Some(n);
                }
            }
        }
        return bare();
    }
    bare()
}

/// The single node implementing `name` on any of `tys`, if exactly one
/// exists across all candidates.
fn unique_across(
    tys: &[String],
    name: &str,
    by_impl: &BTreeMap<(&str, &str), Vec<usize>>,
) -> Option<usize> {
    let mut found: Option<usize> = None;
    for ty in tys {
        for &n in by_impl.get(&(ty.as_str(), name)).into_iter().flatten() {
            match found {
                None => found = Some(n),
                Some(prev) if prev != n => return None,
                Some(_) => {}
            }
        }
    }
    found
}

/// Parameter name → declared type names (uppercase-initial idents), parsed
/// from a signature token span. `&self` receivers are not parameters; the
/// resolver handles `self` through the impl type.
fn param_types(sig: &[Token]) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    let Some(open) = sig.iter().position(|t| t.tok == Tok::Punct('(')) else {
        return out;
    };
    let mut depth = 1i32;
    let mut angle = 0i32;
    let mut at_start = true;
    let mut i = open + 1;
    while i < sig.len() && depth > 0 {
        match &sig[i].tok {
            Tok::Punct('(') | Tok::Punct('[') => {
                depth += 1;
                at_start = false;
            }
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle = (angle - 1).max(0),
            Tok::Punct(',') if depth == 1 && angle == 0 => at_start = true,
            Tok::Punct('&') | Tok::Lifetime => {}
            Tok::Ident(w) if at_start && w == "mut" => {}
            Tok::Ident(w) if at_start => {
                at_start = false;
                let is_name = matches!(sig.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                    && !matches!(sig.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':')));
                if is_name && w != "self" {
                    let mut tys = Vec::new();
                    let mut j = i + 2;
                    let (mut d, mut a) = (depth, angle);
                    while j < sig.len() {
                        match &sig[j].tok {
                            Tok::Punct('(') | Tok::Punct('[') => d += 1,
                            Tok::Punct(')') | Tok::Punct(']') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            Tok::Punct('<') => a += 1,
                            Tok::Punct('>') => a = (a - 1).max(0),
                            Tok::Punct(',') if d == 1 && a == 0 => break,
                            Tok::Ident(s)
                                if s.chars().next().is_some_and(|c| c.is_ascii_uppercase()) =>
                            {
                                tys.push(s.clone())
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    out.insert(w.clone(), tys);
                }
            }
            _ => at_start = false,
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Guard spans and blocking-call classification (shared by the lock passes).
// ---------------------------------------------------------------------------

/// One lock acquisition site inside a function body.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// `Struct.field` identity.
    pub lock: String,
    /// Body-relative token index of the receiver field ident.
    pub at: usize,
    /// Body-relative token index one past the guard's live span.
    pub until: usize,
    pub line: u32,
}

/// Lock identities: field name → owning structs, over the whole workspace.
pub fn lock_index(files: &[ParsedFile]) -> BTreeMap<&str, Vec<&LockField>> {
    let mut by_field: BTreeMap<&str, Vec<&LockField>> = BTreeMap::new();
    for pf in files {
        for lf in &pf.structs {
            by_field.entry(lf.field.as_str()).or_default().push(lf);
        }
    }
    by_field
}

/// Find `field.lock()` / `.read()` / `.write()` acquisitions in a body and
/// compute each guard's live span.
pub fn find_acquisitions(
    toks: &[Token],
    f: &Function,
    by_field: &BTreeMap<&str, Vec<&LockField>>,
) -> Vec<Acquire> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(field) = &t.tok else { continue };
        let Some(owners) = by_field.get(field.as_str()) else { continue };
        // Pattern: field `.` {lock|read|write} `(` `)`
        let ok = match (
            toks.get(i + 1).map(|t| &t.tok),
            toks.get(i + 2).map(|t| &t.tok),
            toks.get(i + 3).map(|t| &t.tok),
            toks.get(i + 4).map(|t| &t.tok),
        ) {
            (
                Some(Tok::Punct('.')),
                Some(Tok::Ident(m)),
                Some(Tok::Punct('(')),
                Some(Tok::Punct(')')),
            ) => m == "lock" || m == "read" || m == "write",
            _ => false,
        };
        if !ok {
            continue;
        }
        // Resolve the identity: prefer the enclosing impl type when it owns
        // a matching field, else a unique owner, else the first (sorted).
        let owner = f
            .impl_type
            .as_deref()
            .filter(|t| owners.iter().any(|lf| lf.owner == *t))
            .map(str::to_string)
            .or_else(|| {
                if owners.len() == 1 {
                    Some(owners[0].owner.clone())
                } else {
                    None
                }
            })
            .unwrap_or_else(|| {
                let mut names: Vec<&str> = owners.iter().map(|lf| lf.owner.as_str()).collect();
                names.sort_unstable();
                names[0].to_string()
            });
        let lock = format!("{owner}.{field}");
        let until = guard_span_end(toks, i);
        out.push(Acquire { lock, at: i, until, line: t.line });
    }
    out
}

/// One past the end of the guard's live span for the acquisition whose
/// receiver ident is at `at`.
pub fn guard_span_end(toks: &[Token], at: usize) -> usize {
    // A guard immediately method-chained (`m.lock().remove(k)`) is a
    // temporary even inside a `let` statement — the binding holds the
    // method's result, not the guard.
    let chained = matches!(toks.get(at + 5).map(|t| &t.tok), Some(Tok::Punct('.')));
    // Let-bound? Scan backwards to the statement start.
    let mut j = at;
    let mut let_guard: Option<String> = None;
    while !chained && j > 0 {
        j -= 1;
        match &toks[j].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
            Tok::Ident(kw) if kw == "let" => {
                // Guard name: first ident after `let`, skipping `mut`.
                let mut k = j + 1;
                while let Some(Tok::Ident(n)) = toks.get(k).map(|t| &t.tok) {
                    if n == "mut" {
                        k += 1;
                    } else {
                        let_guard = Some(n.clone());
                        break;
                    }
                }
                break;
            }
            _ => {}
        }
    }
    match let_guard {
        Some(name) => {
            // Live to the end of the enclosing block, or `drop(name)`.
            let mut depth = 0i32;
            let mut i = at;
            while i < toks.len() {
                match &toks[i].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth < 0 {
                            return i;
                        }
                    }
                    Tok::Ident(d) if d == "drop" && depth == 0 => {
                        if let (Some(Tok::Punct('(')), Some(Tok::Ident(g))) =
                            (toks.get(i + 1).map(|t| &t.tok), toks.get(i + 2).map(|t| &t.tok))
                        {
                            if *g == name {
                                return i;
                            }
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            toks.len()
        }
        None => {
            // Temporary: to the end of the statement — the next `;` with
            // balanced delimiters (a `match` scrutinee guard lives through
            // the whole match, so braces are skipped balanced). A brace
            // group closing back to depth 0 with no continuation token
            // after it ends the statement too (`if let ... {}` / `match
            // ... {}` in statement position have no trailing `;`).
            let mut depth = 0i32;
            let mut i = at;
            while i < toks.len() {
                match &toks[i].tok {
                    Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth < 0 {
                            return i;
                        }
                        if depth == 0 {
                            match toks.get(i + 1).map(|t| &t.tok) {
                                // `{...}.method()` / `{...}?` chains on.
                                Some(Tok::Punct('.')) | Some(Tok::Punct('?')) => {}
                                // `if ... {} else {}` continues.
                                Some(Tok::Ident(k)) if k == "else" => {}
                                _ => return i + 1,
                            }
                        }
                    }
                    Tok::Punct(')') | Tok::Punct(']') => {
                        depth -= 1;
                        if depth < 0 {
                            return i;
                        }
                    }
                    Tok::Punct(';') if depth == 0 => return i,
                    _ => {}
                }
                i += 1;
            }
            toks.len()
        }
    }
}

/// How a call can block the calling thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BlockClass {
    /// `thread::sleep` — blocks unconditionally for the full duration.
    Sleep,
    /// Channel receives (`recv`, `recv_timeout`).
    ChannelRecv,
    /// Condvar waits (`wait`, `wait_timeout`).
    CondvarWait,
    /// Zero-argument `join()` — thread joins.
    Join,
    /// Bulk reads/writes against local files.
    FileIo,
    /// Bulk reads/writes against sockets (the same call names as
    /// [`BlockClass::FileIo`], classified by the defining file living under
    /// `net/`).
    SocketIo,
}

impl BlockClass {
    /// Stable name used in finding details.
    pub fn name(self) -> &'static str {
        match self {
            BlockClass::Sleep => "sleep",
            BlockClass::ChannelRecv => "channel-recv",
            BlockClass::CondvarWait => "condvar-wait",
            BlockClass::Join => "join",
            BlockClass::FileIo => "file-io",
            BlockClass::SocketIo => "socket-io",
        }
    }
}

/// Is the file part of the socket data plane (for I/O classification)?
pub fn is_net_file(path: &str) -> bool {
    path.contains("/net/")
}

/// Classify the call at ident index `i` as directly blocking, if it is.
/// `join` only counts with zero arguments — `JoinHandle::join()`, not
/// `PathBuf::join(p)` or `slice::join(sep)`.
pub fn block_class(toks: &[Token], i: usize, name: &str, in_net_file: bool) -> Option<BlockClass> {
    let class = match name {
        "sleep" => BlockClass::Sleep,
        "recv" | "recv_timeout" => BlockClass::ChannelRecv,
        "wait" | "wait_timeout" => BlockClass::CondvarWait,
        "join" => {
            if matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(')'))) {
                BlockClass::Join
            } else {
                return None;
            }
        }
        "read_to_end" | "read_exact" | "write_all" | "sync_all" => {
            if in_net_file {
                BlockClass::SocketIo
            } else {
                BlockClass::FileIo
            }
        }
        _ => return None,
    };
    Some(class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_file;

    fn graph_of(srcs: &[(&str, &str)]) -> (Vec<ParsedFile>, Vec<(String, String)>) {
        let files: Vec<(String, String)> =
            srcs.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
        let parsed = files.iter().map(|(p, s)| parse_file(p, s)).collect();
        (parsed, files)
    }

    fn node_named<'a>(g: &Graph<'a>, name: &str) -> usize {
        (0..g.nodes.len())
            .find(|&n| g.func(n).qual_name == name)
            .unwrap_or_else(|| panic!("no node {name}"))
    }

    #[test]
    fn resolves_self_field_param_and_path_receivers() {
        let (parsed, _keep) = graph_of(&[(
            "crates/demo/src/lib.rs",
            r#"
            struct Inner { x: u32 }
            impl Inner { fn poke(&self) {} }
            struct Outer { inner: Inner }
            impl Outer {
                fn direct(&self) { self.step(); }
                fn step(&self) { self.inner.poke(); }
            }
            fn by_param(v: &Inner) { v.poke(); }
            fn by_path() { Inner::make(); }
            impl Inner { fn make() {} }
            fn by_unique() { helper_unique(); }
            fn helper_unique() {}
            fn too_common(tx: std::sync::mpsc::Sender<u32>) { tx.send(1); }
            fn send() {}
            "#,
        )]);
        let g = Graph::build(&parsed);
        let target = |from: &str| {
            let n = node_named(&g, from);
            g.calls[n].iter().filter_map(|c| c.target).map(|t| g.func(t).qual_name.clone()).collect::<Vec<_>>()
        };
        assert_eq!(target("Outer::direct"), vec!["Outer::step"]);
        assert_eq!(target("Outer::step"), vec!["Inner::poke"]);
        assert_eq!(target("by_param"), vec!["Inner::poke"]);
        assert_eq!(target("by_path"), vec!["Inner::make"]);
        assert_eq!(target("by_unique"), vec!["helper_unique"]);
        // `send` is on the deny list: tx.send must NOT resolve to fn send.
        assert_eq!(target("too_common"), Vec::<String>::new());
    }

    #[test]
    fn reachability_and_backward_slice() {
        let (parsed, _keep) = graph_of(&[(
            "crates/demo/src/lib.rs",
            "fn a() { b(); } fn b() { c(); } fn c() {} fn d() { b(); }",
        )]);
        let g = Graph::build(&parsed);
        let (a, b, c, d) = (
            node_named(&g, "a"),
            node_named(&g, "b"),
            node_named(&g, "c"),
            node_named(&g, "d"),
        );
        assert_eq!(g.reachable(&[a]), BTreeSet::from([a, b, c]));
        assert_eq!(g.backward_slice(c), BTreeSet::from([a, b, c, d]));
        assert_eq!(g.backward_slice(d), BTreeSet::from([d]));
    }

    #[test]
    fn propagate_up_unions_callee_sets() {
        let (parsed, _keep) = graph_of(&[(
            "crates/demo/src/lib.rs",
            "fn top() { mid(); } fn mid() { leaf(); } fn leaf() {}",
        )]);
        let g = Graph::build(&parsed);
        let leaf = node_named(&g, "leaf");
        let mut seed: Vec<BTreeSet<&str>> = vec![BTreeSet::new(); g.nodes.len()];
        seed[leaf].insert("blocks");
        let out = g.propagate_up(seed);
        assert!(out[node_named(&g, "top")].contains("blocks"));
        assert!(out[node_named(&g, "mid")].contains("blocks"));
    }

    #[test]
    fn param_types_are_parsed_from_signatures() {
        let (parsed, _keep) = graph_of(&[(
            "crates/demo/src/lib.rs",
            r#"
            struct Conn;
            impl Conn { fn tighten(&self) {} }
            fn uses(conn: &mut Conn, n: usize, label: &str) { conn.tighten(); }
            "#,
        )]);
        let g = Graph::build(&parsed);
        let n = node_named(&g, "uses");
        let targets: Vec<_> =
            g.calls[n].iter().filter_map(|c| c.target).map(|t| g.func(t).qual_name.clone()).collect();
        assert_eq!(targets, vec!["Conn::tighten"]);
    }
}
