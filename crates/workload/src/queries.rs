//! The query workload: Table I verbatim, plus synthetic
//! selectivity-controlled queries.

/// A named query with its description from Table I.
#[derive(Debug, Clone)]
pub struct NamedQuery {
    /// Query name (as in Table I).
    pub name: &'static str,
    /// What it computes (Table I description).
    pub description: &'static str,
    /// SQL text.
    pub sql: String,
}

/// The seven data-intensive GridPocket queries of Table I, verbatim.
pub fn table1_queries() -> Vec<NamedQuery> {
    vec![
        NamedQuery {
            name: "ShowMapCons",
            description: "Per meter aggregated consumption for heatmap / per-state display",
            sql: "SELECT vid, sum(index) as max, first_value(lat) as lat, \
                  first_value(long) as long, first_value(state) as state \
                  FROM largeMeter WHERE date LIKE '2015-01%' \
                  GROUP BY SUBSTRING(date, 0, 7), vid \
                  ORDER BY SUBSTRING(date, 0, 7), vid"
                .to_string(),
        },
        NamedQuery {
            name: "ShowMapMeter",
            description: "Each meter with its info (city, id, ...) for a cluster map",
            sql: "SELECT vid, sum(index) as max, first_value(city) as city, \
                  first_value(lat) as lat, first_value(long) as long, \
                  first_value(state) as state \
                  FROM largeMeter WHERE date LIKE '2015-01%' \
                  GROUP BY SUBSTRING(date, 0, 7), vid \
                  ORDER BY SUBSTRING(date, 0, 7), vid"
                .to_string(),
        },
        NamedQuery {
            name: "ShowMapHeatmonth",
            description: "Daily data for a given month for a per-day slider display",
            sql: "SELECT SUBSTRING(date, 0, 10) as sDate, sum(index) as max, \
                  first_value(lat) as lat, first_value(long) as long \
                  FROM largeMeter WHERE date LIKE '2015-01%' \
                  GROUP BY SUBSTRING(date, 0, 10), vid \
                  ORDER BY SUBSTRING(date, 0, 10), vid"
                .to_string(),
        },
        NamedQuery {
            name: "Showgraphcons",
            description: "Consumption of meters in Rotterdam for Jan. 2015",
            sql: "SELECT SUBSTRING(date, 0, 10) as sDate, sum(index) as max, vid \
                  FROM largeMeter WHERE city LIKE 'Rotterdam' AND date LIKE '2015-01-%' \
                  GROUP BY SUBSTRING(date, 0, 10), vid \
                  ORDER BY SUBSTRING(date, 0, 10), vid"
                .to_string(),
        },
        NamedQuery {
            name: "ShowPiemonth",
            description: "Consumption for a specific subset of state consumption",
            sql: "SELECT SUBSTRING(date, 0, 10) as sDate, state as vid, sum(index) as max \
                  FROM largeMeter WHERE state LIKE 'U%' AND date LIKE '2015-01-%' \
                  GROUP BY SUBSTRING(date, 0, 10), state \
                  ORDER BY SUBSTRING(date, 0, 10), state"
                .to_string(),
        },
        NamedQuery {
            name: "ShowGraphHCHP",
            description: "Peak versus shallow hour consumption",
            sql: "SELECT SUBSTRING(date, 0, 10) as sDate, vid, min(sumHC) as minHC, \
                  max(sumHC) as maxHC, min(sumHP) as minHP, max(sumHP) as maxHP \
                  FROM largeMeter WHERE state LIKE 'FRA' AND date LIKE '2015-01-%' \
                  GROUP BY SUBSTRING(date, 0, 10), vid \
                  ORDER BY SUBSTRING(date, 0, 10), vid"
                .to_string(),
        },
        NamedQuery {
            name: "Showday",
            description: "Consumption of any specified hour of a given month",
            sql: "SELECT SUBSTRING(date, 0, 13) as sDate, sum(index) as max, vid \
                  FROM largeMeter WHERE city LIKE 'Rotterdam' AND date LIKE '2015-01-%' \
                  GROUP BY SUBSTRING(date, 0, 13), vid \
                  ORDER BY SUBSTRING(date, 0, 13), vid"
                .to_string(),
        },
    ]
}

/// Which dimension a synthetic query exercises (Section VI-A: "we executed
/// specific experiments to analyze the impact of row, column and mixed data
/// selectivity").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectivityKind {
    /// Discard rows only (all 10 columns projected).
    Row,
    /// Discard columns only (all rows selected).
    Column,
    /// Both.
    Mixed,
}

impl std::fmt::Display for SelectivityKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectivityKind::Row => write!(f, "row"),
            SelectivityKind::Column => write!(f, "column"),
            SelectivityKind::Mixed => write!(f, "mixed"),
        }
    }
}

/// All 10 columns in file order.
const ALL_COLUMNS: [&str; 10] = [
    "vid", "date", "index", "sumHC", "sumHP", "lat", "long", "city", "state", "region",
];

/// Build a synthetic query with a controlled selectivity fraction.
///
/// * Row selectivity exploits the zero-padded `vid` space: meters are named
///   `M00000..M{n-1:05}`, so `vid < 'M%05d'` keeps an exact meter fraction.
/// * Column selectivity keeps a prefix of the column list; actual byte
///   selectivity is *measured*, not assumed (column widths differ).
pub fn synthetic_query(
    kind: SelectivityKind,
    keep_row_fraction: f64,
    keep_columns: usize,
    total_meters: usize,
) -> String {
    let keep_columns = keep_columns.clamp(1, ALL_COLUMNS.len());
    let projected: Vec<&str> = match kind {
        SelectivityKind::Row => ALL_COLUMNS.to_vec(),
        SelectivityKind::Column | SelectivityKind::Mixed => {
            ALL_COLUMNS[..keep_columns].to_vec()
        }
    };
    let select = projected.join(", ");
    let row_pred = match kind {
        SelectivityKind::Column => None,
        SelectivityKind::Row | SelectivityKind::Mixed => {
            let cutoff = ((total_meters as f64) * keep_row_fraction).round() as usize;
            Some(format!("vid < 'M{cutoff:05}'"))
        }
    };
    match row_pred {
        Some(p) => format!("SELECT {select} FROM largeMeter WHERE {p}"),
        None => format!("SELECT {select} FROM largeMeter"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_sql::parse;

    #[test]
    fn all_table1_queries_parse_and_aggregate() {
        let queries = table1_queries();
        assert_eq!(queries.len(), 7);
        for q in &queries {
            let parsed = parse(&q.sql).unwrap_or_else(|e| panic!("{}: {e}", q.name));
            assert!(parsed.is_aggregate(), "{} should aggregate", q.name);
            assert_eq!(parsed.table, "largemeter");
        }
    }

    #[test]
    fn table1_queries_reference_expected_predicates() {
        let queries = table1_queries();
        assert!(queries[3].sql.contains("Rotterdam"));
        assert!(queries[4].sql.contains("'U%'"));
        assert!(queries[5].sql.contains("'FRA'"));
    }

    #[test]
    fn synthetic_queries_parse() {
        for kind in [SelectivityKind::Row, SelectivityKind::Column, SelectivityKind::Mixed] {
            for frac in [0.0, 0.25, 0.5, 1.0] {
                let sql = synthetic_query(kind, frac, 4, 10_000);
                parse(&sql).unwrap_or_else(|e| panic!("{kind} {frac}: {e}"));
            }
        }
    }

    #[test]
    fn row_cutoff_is_exact_on_vid_space() {
        let sql = synthetic_query(SelectivityKind::Row, 0.3, 10, 10_000);
        assert!(sql.contains("vid < 'M03000'"), "{sql}");
        // Row kind projects all columns.
        assert!(sql.contains("region"));
        let col = synthetic_query(SelectivityKind::Column, 0.3, 3, 10_000);
        assert!(!col.contains("WHERE"));
        assert!(col.contains("vid, date, index"));
    }
}

#[cfg(test)]
mod catalyst_tests {
    use super::*;
    use crate::generator::meter_schema;
    use scoop_sql::catalyst::plan_query;
    use scoop_sql::parse;

    /// Every Table I WHERE clause is expressible in the Data-Sources filter
    /// language, so the store does all the filtering (the property the
    /// paper's implementation section relies on).
    #[test]
    fn all_table1_queries_fully_push_their_filters() {
        let schema = meter_schema();
        for q in table1_queries() {
            let parsed = parse(&q.sql).unwrap();
            let plan = plan_query(&parsed, &schema, true).unwrap();
            assert!(
                plan.fully_pushed(),
                "{}: {} residual conjunct(s)",
                q.name,
                plan.residual_conjuncts
            );
            assert!(plan.pushed_conjuncts >= 1, "{}", q.name);
            // Projection prunes: none of the queries touches all 10 columns.
            let cols = plan.pushdown.columns.as_ref().unwrap_or_else(|| {
                panic!("{}: projection should prune", q.name)
            });
            assert!(cols.len() < 10, "{}: {} columns", q.name, cols.len());
            // And the scan schema matches the projection.
            assert_eq!(plan.scan_schema.len(), cols.len(), "{}", q.name);
        }
    }

    /// The synthetic queries' predicates push too (the Fig. 5 sweep assumes
    /// store-side filtering).
    #[test]
    fn synthetic_queries_fully_push() {
        let schema = meter_schema();
        for kind in [SelectivityKind::Row, SelectivityKind::Mixed] {
            let sql = synthetic_query(kind, 0.5, 4, 10_000);
            let parsed = parse(&sql).unwrap();
            let plan = plan_query(&parsed, &schema, true).unwrap();
            assert!(plan.fully_pushed(), "{kind}: {sql}");
        }
    }
}
