//! The GridPocket workload.
//!
//! The paper evaluates on "anonymized versions of CSV files containing energy
//! consumption values captured by 10K GridPocket smart energy meters", with
//! "identical structure, with 10 columns, and every row represents a reading
//! taken every 10 minutes", and ships a synthetic generator mimicking those
//! structural properties. This crate is that generator plus the query set:
//!
//! * [`generator`] — deterministic synthetic meter data: 10 columns
//!   (`vid, date, index, sumHC, sumHP, lat, long, city, state, region`),
//!   10-minute cadence, cumulative consumption indexes, European cities.
//! * [`dates`] — minimal calendar arithmetic (no external deps).
//! * [`queries`] — the seven Table I queries, verbatim, plus the synthetic
//!   row/column/mixed selectivity-controlled queries of Section VI-A.
//! * [`selectivity`] — measured column/row/data selectivity of a query over a
//!   dataset (the Table I percentage columns).

pub mod dates;
pub mod generator;
pub mod queries;
pub mod selectivity;

pub use generator::{GeneratorConfig, MeterDataset};
pub use queries::{table1_queries, NamedQuery, SelectivityKind};
