//! Measured selectivity of a query over a dataset.
//!
//! Table I reports three percentages per query: *column selectivity* (bytes
//! discarded by projection), *row selectivity* (bytes discarded by
//! selection) and *data selectivity* (bytes discarded overall). This module
//! computes them by actually running the extracted pushdown over sample data
//! — the same measurement the paper derives from its datasets.

use crate::generator::meter_schema;
use scoop_common::Result;
use scoop_csv::filter::filter_buffer;
use scoop_csv::PushdownSpec;
use scoop_sql::catalyst::plan_query;
use scoop_sql::parse;

/// The three Table I percentages (fractions in [0, 1]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectivityReport {
    /// Bytes discarded by projection alone.
    pub column: f64,
    /// Bytes discarded by selection alone.
    pub row: f64,
    /// Bytes discarded by both together.
    pub data: f64,
}

/// Measure a query's selectivities over a CSV dataset (with header).
pub fn measure(sql: &str, csv: &[u8]) -> Result<SelectivityReport> {
    let schema = meter_schema();
    let query = parse(sql)?;
    let plan = plan_query(&query, &schema, true)?;
    let header: Vec<String> = schema.names().iter().map(|s| s.to_string()).collect();

    let out_bytes = |spec: &PushdownSpec| -> Result<f64> {
        let (out, _) = filter_buffer(spec, &header, csv, true)?;
        Ok(out.len() as f64)
    };

    // Baseline: pass everything through (drops only the header record), so
    // the percentages measure projection/selection, not framing.
    let base = out_bytes(&PushdownSpec { has_header: true, ..Default::default() })?;
    if base == 0.0 {
        return Ok(SelectivityReport { column: 0.0, row: 0.0, data: 0.0 });
    }
    let column = 1.0
        - out_bytes(&PushdownSpec {
            columns: plan.pushdown.columns.clone(),
            predicate: None,
            has_header: true,
        })? / base;
    let row = 1.0
        - out_bytes(&PushdownSpec {
            columns: None,
            predicate: plan.pushdown.predicate.clone(),
            has_header: true,
        })? / base;
    let data = 1.0 - out_bytes(&plan.pushdown)? / base;
    Ok(SelectivityReport { column, row, data })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, MeterDataset};
    use crate::queries::{synthetic_query, table1_queries, SelectivityKind};

    fn sample() -> Vec<u8> {
        // Daily readings over ~5 months so the '2015-01%' window is a small
        // fraction of the data, as in the paper's year-spanning datasets.
        let config = GeneratorConfig {
            meters: 50,
            interval_minutes: 24 * 60,
            ..Default::default()
        };
        MeterDataset::new(&config).csv_object(8_000).to_vec()
    }

    #[test]
    fn table1_queries_are_highly_selective() {
        let csv = sample();
        for q in table1_queries() {
            let rep = measure(&q.sql, &csv).unwrap();
            assert!(
                rep.data > 0.5,
                "{}: data selectivity {:.3} too low",
                q.name,
                rep.data
            );
            assert!(rep.column > 0.0, "{}: no column discard", q.name);
        }
        // Rotterdam-only queries discard most rows.
        let rep = measure(&table1_queries()[3].sql, &csv).unwrap();
        assert!(rep.row > 0.7, "Showgraphcons row selectivity {:.3}", rep.row);
    }

    #[test]
    fn synthetic_row_selectivity_tracks_request() {
        let csv = sample();
        for keep in [0.2f64, 0.5, 0.9] {
            let sql = synthetic_query(SelectivityKind::Row, keep, 10, 50);
            let rep = measure(&sql, &csv).unwrap();
            let expect_discard = 1.0 - keep;
            assert!(
                (rep.data - expect_discard).abs() < 0.1,
                "keep={keep}: measured discard {:.3}",
                rep.data
            );
            // Pure row queries keep all columns.
            assert!(rep.column.abs() < 1e-9);
        }
    }

    #[test]
    fn synthetic_column_selectivity_monotone() {
        let csv = sample();
        let mut last = 1.0f64;
        for cols in [2usize, 5, 8, 10] {
            let sql = synthetic_query(SelectivityKind::Column, 1.0, cols, 50);
            let rep = measure(&sql, &csv).unwrap();
            assert!(rep.data <= last + 1e-9, "cols={cols}");
            last = rep.data;
            assert!(rep.row.abs() < 1e-9);
        }
        // All 10 columns → no discard at all.
        assert!(last.abs() < 0.05, "full projection should discard ~0, got {last}");
    }

    #[test]
    fn mixed_combines_both() {
        let csv = sample();
        let row_only = measure(
            &synthetic_query(SelectivityKind::Row, 0.5, 10, 50),
            &csv,
        )
        .unwrap();
        let mixed = measure(
            &synthetic_query(SelectivityKind::Mixed, 0.5, 3, 50),
            &csv,
        )
        .unwrap();
        assert!(mixed.data > row_only.data);
    }
}
