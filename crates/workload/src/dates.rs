//! Minimal calendar arithmetic for `YYYY-MM-DD HH:MM:SS` timestamps.

/// A timestamp with minute precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Timestamp {
    /// Year (e.g. 2015).
    pub year: u32,
    /// Month 1–12.
    pub month: u32,
    /// Day 1–31.
    pub day: u32,
    /// Hour 0–23.
    pub hour: u32,
    /// Minute 0–59.
    pub minute: u32,
}

/// Days in a month, honouring leap years.
pub fn days_in_month(year: u32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400) {
                29
            } else {
                28
            }
        }
        other => panic!("invalid month {other}"),
    }
}

impl Timestamp {
    /// Midnight on the given date.
    pub fn midnight(year: u32, month: u32, day: u32) -> Timestamp {
        Timestamp { year, month, day, hour: 0, minute: 0 }
    }

    /// Advance by `minutes`.
    pub fn plus_minutes(mut self, minutes: u32) -> Timestamp {
        let total = self.minute + minutes;
        self.minute = total % 60;
        let mut hours = self.hour + total / 60;
        self.hour = hours % 24;
        hours /= 24;
        let mut days = self.day + hours;
        loop {
            let dim = days_in_month(self.year, self.month);
            if days <= dim {
                break;
            }
            days -= dim;
            self.month += 1;
            if self.month > 12 {
                self.month = 1;
                self.year += 1;
            }
        }
        self.day = days;
        self
    }

    /// Render as `YYYY-MM-DD HH:MM:SS` (seconds always zero).
    pub fn render(&self) -> String {
        format!(
            "{:04}-{:02}-{:02} {:02}:{:02}:00",
            self.year, self.month, self.day, self.hour, self.minute
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_iso_like() {
        let t = Timestamp::midnight(2015, 1, 3).plus_minutes(10 * 60 + 20);
        assert_eq!(t.render(), "2015-01-03 10:20:00");
    }

    #[test]
    fn advances_across_days_months_years() {
        let t = Timestamp::midnight(2015, 1, 31).plus_minutes(24 * 60);
        assert_eq!(t.render(), "2015-02-01 00:00:00");
        let t = Timestamp::midnight(2015, 12, 31).plus_minutes(25 * 60);
        assert_eq!(t.render(), "2016-01-01 01:00:00");
    }

    #[test]
    fn leap_years() {
        assert_eq!(days_in_month(2016, 2), 29);
        assert_eq!(days_in_month(2015, 2), 28);
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
        let t = Timestamp::midnight(2016, 2, 28).plus_minutes(24 * 60);
        assert_eq!(t.render(), "2016-02-29 00:00:00");
    }

    #[test]
    fn textual_order_matches_chronological() {
        let mut prev = Timestamp::midnight(2015, 1, 1);
        for _ in 0..10_000 {
            let next = prev.plus_minutes(137);
            assert!(next.render() > prev.render());
            prev = next;
        }
    }
}
