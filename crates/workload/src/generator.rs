//! Deterministic synthetic meter-data generation.
//!
//! Ten columns, matching the paper's description and its public generator's
//! structure: `vid, date, index, sumHC, sumHP, lat, long, city, state,
//! region`. Readings arrive every 10 minutes per meter; `index` is the
//! meter's cumulative consumption; `sumHC`/`sumHP` split it into off-peak
//! ("heures creuses") and peak ("heures pleines") components.

use crate::dates::Timestamp;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scoop_common::rng::derive_seed;
use scoop_csv::schema::{DataType, Field, Schema};

/// A city with its geography.
#[derive(Debug, Clone, Copy)]
pub struct City {
    /// City name.
    pub name: &'static str,
    /// Country/state code (3 letters, as the Table I predicates expect).
    pub state: &'static str,
    /// Administrative region.
    pub region: &'static str,
    /// Latitude.
    pub lat: f64,
    /// Longitude.
    pub long: f64,
}

/// The fleet's cities. Includes Rotterdam (Showgraphcons/Showday), FRA states
/// (ShowGraphHCHP) and `U%` states (ShowPiemonth).
pub const CITIES: &[City] = &[
    City { name: "Rotterdam", state: "NLD", region: "South Holland", lat: 51.92, long: 4.47 },
    City { name: "Utrecht", state: "NLD", region: "Utrecht", lat: 52.09, long: 5.12 },
    City { name: "Paris", state: "FRA", region: "Ile-de-France", lat: 48.85, long: 2.35 },
    City { name: "Nice", state: "FRA", region: "PACA", lat: 43.70, long: 7.27 },
    City { name: "Lyon", state: "FRA", region: "Auvergne-Rhone-Alpes", lat: 45.76, long: 4.83 },
    City { name: "Kyiv", state: "UKR", region: "Kyiv Oblast", lat: 50.45, long: 30.52 },
    City { name: "Austin", state: "USA", region: "Texas", lat: 30.27, long: -97.74 },
    City { name: "Berlin", state: "DEU", region: "Brandenburg", lat: 52.52, long: 13.40 },
    City { name: "Madrid", state: "ESP", region: "Comunidad de Madrid", lat: 40.42, long: -3.70 },
    City { name: "Milan", state: "ITA", region: "Lombardy", lat: 45.46, long: 9.19 },
];

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of meters in the fleet (the paper's datasets use 10K).
    pub meters: usize,
    /// First reading timestamp.
    pub start: Timestamp,
    /// Minutes between readings (paper: 10).
    pub interval_minutes: u32,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 42,
            meters: 10_000,
            start: Timestamp::midnight(2015, 1, 1),
            interval_minutes: 10,
        }
    }
}

/// One meter's static identity + consumption state.
#[derive(Debug, Clone)]
struct Meter {
    vid: String,
    city: &'static City,
    /// Cumulative consumption so far (kWh).
    index: f64,
    sum_hc: f64,
    sum_hp: f64,
    /// Mean consumption per reading (meters differ).
    rate: f64,
}

/// The 10-column schema of the generated data.
pub fn meter_schema() -> Schema {
    Schema::new(vec![
        Field::new("vid", DataType::Str),
        Field::new("date", DataType::Str),
        Field::new("index", DataType::Float),
        Field::new("sumHC", DataType::Float),
        Field::new("sumHP", DataType::Float),
        Field::new("lat", DataType::Float),
        Field::new("long", DataType::Float),
        Field::new("city", DataType::Str),
        Field::new("state", DataType::Str),
        Field::new("region", DataType::Str),
    ])
}

/// A streaming dataset generator: rows come out time-major (all meters at
/// t0, then t1, ...), the order readings land in an ingestion pipeline.
pub struct MeterDataset {
    meters: Vec<Meter>,
    clock: Timestamp,
    interval: u32,
    cursor: usize,
    rng: StdRng,
}

impl MeterDataset {
    /// Build the fleet and position the clock at the first reading.
    pub fn new(config: &GeneratorConfig) -> MeterDataset {
        let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, "meter-fleet"));
        let meters = (0..config.meters)
            .map(|i| {
                let city = &CITIES[rng.random_range(0..CITIES.len())];
                Meter {
                    vid: format!("M{i:05}"),
                    city,
                    index: rng.random_range(0.0..5_000.0),
                    sum_hc: 0.0,
                    sum_hp: 0.0,
                    rate: rng.random_range(0.05..0.6),
                }
            })
            .collect();
        MeterDataset {
            meters,
            clock: config.start,
            interval: config.interval_minutes,
            cursor: 0,
            rng: StdRng::seed_from_u64(derive_seed(config.seed, "meter-readings")),
        }
    }

    /// Produce the next reading as raw string fields.
    pub fn next_row(&mut self) -> Vec<String> {
        if self.cursor >= self.meters.len() {
            self.cursor = 0;
            self.clock = self.clock.plus_minutes(self.interval);
        }
        let date = self.clock.render();
        // Off-peak hours (HC): 22:00–06:00.
        let off_peak = self.clock.hour >= 22 || self.clock.hour < 6;
        let m = &mut self.meters[self.cursor];
        self.cursor += 1;
        let delta = (m.rate * self.rng.random_range(0.2..1.8)).max(0.0);
        m.index += delta;
        if off_peak {
            m.sum_hc += delta;
        } else {
            m.sum_hp += delta;
        }
        vec![
            m.vid.clone(),
            date,
            format!("{:.2}", m.index),
            format!("{:.2}", m.sum_hc),
            format!("{:.2}", m.sum_hp),
            format!("{:.2}", m.city.lat),
            format!("{:.2}", m.city.long),
            m.city.name.to_string(),
            m.city.state.to_string(),
            m.city.region.to_string(),
        ]
    }

    /// Write `rows` readings as a CSV object (with a header row).
    pub fn csv_object(&mut self, rows: usize) -> Bytes {
        let schema = meter_schema();
        let mut w = scoop_csv::CsvWriter::with_capacity(rows * 96 + 128);
        w.write_header(&schema);
        for _ in 0..rows {
            let row = self.next_row();
            let refs: Vec<&str> = row.iter().map(String::as_str).collect();
            w.write_strs(&refs);
        }
        w.into_bytes()
    }

    /// Generate objects of roughly `object_bytes` each until at least
    /// `total_bytes` of CSV have been produced. Returns `(name, data)` pairs.
    pub fn csv_objects(
        &mut self,
        total_bytes: u64,
        object_bytes: u64,
    ) -> Vec<(String, Bytes)> {
        assert!(object_bytes > 0);
        let mut out = Vec::new();
        let mut produced = 0u64;
        let mut part = 0usize;
        // Estimate rows per object from a probe row (~96 bytes each).
        let rows_per_object = (object_bytes / 96).max(1) as usize;
        while produced < total_bytes {
            let data = self.csv_object(rows_per_object);
            produced += data.len() as u64;
            out.push((format!("part-{part:05}.csv"), data));
            part += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let config = GeneratorConfig { meters: 5, ..Default::default() };
        let a = MeterDataset::new(&config).csv_object(50);
        let b = MeterDataset::new(&config).csv_object(50);
        assert_eq!(a, b);
        let c = MeterDataset::new(&GeneratorConfig { seed: 43, ..config }).csv_object(50);
        assert_ne!(a, c);
    }

    #[test]
    fn ten_columns_and_parseable() {
        let config = GeneratorConfig { meters: 3, ..Default::default() };
        let data = MeterDataset::new(&config).csv_object(30);
        let schema = scoop_csv::reader::infer_schema(&data, 30).unwrap();
        assert_eq!(schema.len(), 10);
        assert_eq!(schema.names()[0], "vid");
        assert_eq!(schema.fields[2].dtype, DataType::Float);
        let rows: Vec<_> = scoop_csv::CsvReader::new(
            scoop_common::stream::once(data),
            meter_schema(),
            true,
        )
        .collect::<scoop_common::Result<Vec<_>>>()
        .unwrap();
        assert_eq!(rows.len(), 30);
    }

    #[test]
    fn index_is_cumulative_per_meter() {
        let config = GeneratorConfig { meters: 2, ..Default::default() };
        let mut g = MeterDataset::new(&config);
        let mut last: std::collections::HashMap<String, f64> = Default::default();
        for _ in 0..40 {
            let row = g.next_row();
            let idx: f64 = row[2].parse().unwrap();
            if let Some(prev) = last.get(&row[0]) {
                assert!(idx >= *prev, "index decreased for {}", row[0]);
            }
            last.insert(row[0].clone(), idx);
        }
    }

    #[test]
    fn clock_advances_time_major() {
        let config = GeneratorConfig { meters: 2, ..Default::default() };
        let mut g = MeterDataset::new(&config);
        let r1 = g.next_row();
        let r2 = g.next_row();
        let r3 = g.next_row();
        assert_eq!(r1[1], r2[1]);
        assert_ne!(r1[1], r3[1]);
        assert_eq!(r3[1], "2015-01-01 00:10:00");
    }

    #[test]
    fn hc_hp_partition_consumption() {
        let config = GeneratorConfig { meters: 1, ..Default::default() };
        let mut g = MeterDataset::new(&config);
        let first: Vec<String> = g.next_row();
        let base: f64 = first[2].parse().unwrap();
        let mut row = first;
        for _ in 0..2000 {
            row = g.next_row();
        }
        let idx: f64 = row[2].parse().unwrap();
        let hc: f64 = row[3].parse().unwrap();
        let hp: f64 = row[4].parse().unwrap();
        assert!(hc > 0.0 && hp > 0.0);
        // index = initial + hc + hp (within rounding noise).
        assert!(((idx - base) - (hc + hp)).abs() < 1.0, "{idx} {base} {hc} {hp}");
    }

    #[test]
    fn objects_reach_target_size() {
        let config = GeneratorConfig { meters: 10, ..Default::default() };
        let objects = MeterDataset::new(&config).csv_objects(50_000, 10_000);
        assert!(objects.len() >= 5);
        let total: usize = objects.iter().map(|(_, d)| d.len()).sum();
        assert!(total >= 50_000);
        assert!(objects.iter().all(|(n, _)| n.ends_with(".csv")));
    }
}
