//! Differential property tests for store-side data skipping.
//!
//! The block planner is an *optimization*, never a semantics change: for any
//! object, block size, predicate and read window, (1) every record the
//! predicate matches lies inside a surviving planned range, and (2) running
//! the CSV filter over the surviving ranges — exactly as the middleware
//! drives it — is byte-identical to the full scan. A third property checks
//! the end-to-end stale path: overwriting an indexed object must fall back
//! transparently with results computed over the new bytes.

use bytes::Bytes;
use proptest::prelude::*;
use scoop_common::stream;
use scoop_csv::filter::filter_buffer;
use scoop_csv::{Predicate, PushdownSpec, Value};
use scoop_storlets::filters::csv::CsvFilterStorlet;
use scoop_storlets::filters::index::{stats_from_context, ZoneIndexStorlet};
use scoop_storlets::planner::plan_ranges;
use scoop_storlets::{InvocationContext, Storlet};
use std::collections::HashMap;

const SCHEMA: &str = "vid,n,city";

fn make_csv(rows: &[(u32, Option<i32>, u8)]) -> Vec<u8> {
    let mut out = Vec::from(&b"vid,n,city\n"[..]);
    for (vid, n, city) in rows {
        let city = ["Rotterdam", "Paris", "Nice", ""][*city as usize % 4];
        let n = n.map(|n| n.to_string()).unwrap_or_default();
        out.extend_from_slice(format!("m{vid},{n},{city}\n").as_bytes());
    }
    out
}

fn predicate(which: u8) -> Predicate {
    match which % 7 {
        0 => Predicate::Eq("n".into(), Value::Int(5)),
        1 => Predicate::Lt("n".into(), Value::Int(0)),
        2 => Predicate::Eq("city".into(), Value::Str("Paris".into())),
        3 => Predicate::Like("city".into(), "Rot%".into()),
        4 => Predicate::IsNull("n".into()),
        5 => Predicate::And(
            Box::new(Predicate::Ge("n".into(), Value::Int(-20))),
            Box::new(Predicate::Ne("city".into(), Value::Str("Nice".into()))),
        ),
        _ => Predicate::Or(
            Box::new(Predicate::Gt("n".into(), Value::Int(40))),
            Box::new(Predicate::IsNotNull("city".into())),
        ),
    }
}

fn index(data: &[u8], block: u64) -> scoop_common::zonestats::ObjectStats {
    let mut params = HashMap::new();
    params.insert("schema".to_string(), SCHEMA.to_string());
    params.insert("header".to_string(), "1".to_string());
    params.insert("block".to_string(), block.to_string());
    let ctx = InvocationContext::new(params);
    let out = ZoneIndexStorlet
        .invoke(stream::once(Bytes::from(data.to_vec())), ctx.clone())
        .unwrap();
    stream::collect(out).unwrap();
    stats_from_context(&ctx).unwrap().expect("stats published")
}

/// Run `csvfilter` over one planned range exactly as the middleware does:
/// body is the ranged GET `[fetch_start, re)`, the range end is clipped to
/// the window, and `pre_aligned` marks mid-object ranges as starting on a
/// record boundary.
fn invoke_planned_range(
    data: &[u8],
    spec: &PushdownSpec,
    window_start: u64,
    window_end: Option<u64>,
    rs: u64,
    re: u64,
) -> Vec<u8> {
    let fetch_start = rs.max(window_start);
    let mut params = HashMap::new();
    params.insert("spec".to_string(), spec.to_header());
    params.insert("schema".to_string(), SCHEMA.to_string());
    let mut ctx = InvocationContext::new(params);
    ctx.range_start = fetch_start;
    ctx.range_end = Some(window_end.map_or(re - 1, |e| e.min(re - 1)));
    ctx.pre_aligned = fetch_start > window_start;
    let body = Bytes::from(data[fetch_start as usize..re as usize].to_vec());
    let out = CsvFilterStorlet.invoke(stream::chunked(body, 13), ctx).unwrap();
    stream::collect(out).unwrap().to_vec()
}

/// Classic (un-planned) ranged invocation, the reference the planned path
/// must match byte-for-byte.
fn invoke_classic(data: &[u8], spec: &PushdownSpec, start: u64, end_exclusive: u64) -> Vec<u8> {
    let mut params = HashMap::new();
    params.insert("spec".to_string(), spec.to_header());
    params.insert("schema".to_string(), SCHEMA.to_string());
    let mut ctx = InvocationContext::new(params);
    ctx.range_start = start;
    ctx.range_end = Some(end_exclusive.saturating_sub(1));
    let body = Bytes::from(data[start as usize..].to_vec());
    let out = CsvFilterStorlet.invoke(stream::chunked(body, 13), ctx).unwrap();
    stream::collect(out).unwrap().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full-object reads: the planner's surviving ranges cover every matching
    /// record, and filtering only those ranges equals the full scan.
    #[test]
    fn planned_scan_equals_full_scan(
        rows in proptest::collection::vec(
            (0u32..40, proptest::option::of(-50i32..50), 0u8..4),
            1..60,
        ),
        block in 16u64..200,
        which in 0u8..7,
    ) {
        let data = make_csv(&rows);
        let stats = index(&data, block);
        let pred = predicate(which);
        let spec = PushdownSpec {
            columns: None,
            predicate: Some(pred.clone()),
            has_header: true,
        };
        let header: Vec<String> = SCHEMA.split(',').map(str::to_string).collect();
        let plan = plan_ranges(&stats, Some(&pred), 0, None);

        // Soundness: every record the predicate matches starts inside a
        // surviving range.
        let single = PushdownSpec {
            columns: None,
            predicate: Some(pred.clone()),
            has_header: false,
        };
        let mut off = data.iter().position(|&b| b == b'\n').unwrap() as u64 + 1;
        for line in data[off as usize..].split_inclusive(|&b| b == b'\n') {
            let (matched, _) = filter_buffer(&single, &header, line, true).unwrap();
            if !matched.is_empty() {
                prop_assert!(
                    plan.ranges.iter().any(|&(rs, re)| rs <= off && off < re),
                    "matching record at {off} not covered by {:?}",
                    plan.ranges
                );
            }
            off += line.len() as u64;
        }

        // Differential: planned concatenation == full scan, byte for byte.
        let mut planned = Vec::new();
        for &(rs, re) in &plan.ranges {
            planned.extend_from_slice(&invoke_planned_range(&data, &spec, 0, None, rs, re));
        }
        let (whole, _) = filter_buffer(&spec, &header, &data, true).unwrap();
        prop_assert_eq!(
            String::from_utf8_lossy(&planned),
            String::from_utf8_lossy(&whole)
        );
    }

    /// Windowed reads (the Spark-split path): planning inside an arbitrary
    /// logical range must reproduce the classic ranged storlet exactly.
    #[test]
    fn planned_window_equals_classic_range(
        rows in proptest::collection::vec(
            (0u32..40, proptest::option::of(-50i32..50), 0u8..4),
            2..60,
        ),
        block in 16u64..200,
        which in 0u8..7,
        cut in (0u64..1000, 1u64..1000),
    ) {
        let data = make_csv(&rows);
        let len = data.len() as u64;
        let start = cut.0 % len;
        let end_exclusive = start + 1 + cut.1 % (len - start);
        let stats = index(&data, block);
        let pred = predicate(which);
        let spec = PushdownSpec {
            columns: Some(vec!["vid".into(), "n".into()]),
            predicate: Some(pred.clone()),
            has_header: true,
        };
        let plan = plan_ranges(&stats, Some(&pred), start, Some(end_exclusive - 1));
        let mut planned = Vec::new();
        for &(rs, re) in &plan.ranges {
            planned.extend_from_slice(&invoke_planned_range(
                &data,
                &spec,
                start,
                Some(end_exclusive - 1),
                rs,
                re,
            ));
        }
        let classic = invoke_classic(&data, &spec, start, end_exclusive);
        prop_assert_eq!(
            String::from_utf8_lossy(&planned),
            String::from_utf8_lossy(&classic),
            "window [{}, {})", start, end_exclusive
        );
    }
}

/// End-to-end stale path through a real cluster: after an indexed object is
/// overwritten (old stats destroyed or describing the old etag), pushdown
/// must fall back and return results over the NEW bytes.
mod stale {
    use super::*;
    use scoop_objectstore::middleware::Pipeline;
    use scoop_objectstore::{ObjectPath, SwiftCluster, SwiftConfig};
    use scoop_storlets::middleware::encode_params;
    use scoop_storlets::{headers, StorletEngine, StorletMiddleware};
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn overwrite_falls_back_to_new_bytes(
            old_rows in proptest::collection::vec(
                (0u32..40, proptest::option::of(-50i32..50), 0u8..4), 1..30),
            new_rows in proptest::collection::vec(
                (0u32..40, proptest::option::of(-50i32..50), 0u8..4), 1..30),
            which in 0u8..7,
        ) {
            let cluster = SwiftCluster::new(SwiftConfig::default()).unwrap();
            let engine = Arc::new(StorletEngine::with_builtin_filters());
            let mut pipe = Pipeline::new();
            pipe.push(Arc::new(StorletMiddleware::new(engine.clone())));
            cluster.set_object_pipeline(pipe);
            let client = cluster.anonymous_client("AUTH_gp");
            client.create_container("meters").unwrap();
            let path = ObjectPath::new("AUTH_gp", "meters", "w.csv").unwrap();

            // Indexed PUT of the old bytes...
            let old = make_csv(&old_rows);
            let mut p = HashMap::new();
            p.insert("schema".to_string(), SCHEMA.to_string());
            p.insert("header".to_string(), "1".to_string());
            p.insert("block".to_string(), "32".to_string());
            let put = scoop_objectstore::Request::put(path.clone(), Bytes::from(old))
                .with_header(headers::RUN_STORLET, "zoneindex")
                .with_header(headers::PARAMETERS, encode_params(&p));
            prop_assert_eq!(client.request(put).unwrap().status, 201);

            // ...then a plain overwrite with new bytes (stats vanish).
            let new = make_csv(&new_rows);
            client
                .put_object("meters", "w.csv", Bytes::from(new.clone()))
                .unwrap();

            let spec = PushdownSpec {
                columns: None,
                predicate: Some(predicate(which)),
                has_header: true,
            };
            let mut q = HashMap::new();
            q.insert("spec".to_string(), spec.to_header());
            q.insert("schema".to_string(), SCHEMA.to_string());
            let req = scoop_objectstore::Request::get(path)
                .with_header(headers::RUN_STORLET, "csvfilter")
                .with_header(headers::PARAMETERS, encode_params(&q));
            let body = client.request(req).unwrap().read_body().unwrap();
            let header: Vec<String> = SCHEMA.split(',').map(str::to_string).collect();
            let (reference, _) = filter_buffer(&spec, &header, &new, true).unwrap();
            prop_assert_eq!(
                String::from_utf8_lossy(&body),
                String::from_utf8_lossy(&reference)
            );
        }
    }
}
