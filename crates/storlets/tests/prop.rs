//! Property tests for the storlet layer: the ranged CSV storlet must
//! partition any object exactly like the reference `aligned_slice`, for any
//! split plan — including splits landing exactly on record boundaries.

use bytes::Bytes;
use proptest::prelude::*;
use scoop_common::stream;
use scoop_csv::filter::filter_buffer;
use scoop_csv::split::{aligned_slice, plan_splits};
use scoop_csv::{Predicate, PushdownSpec, Value};
use scoop_storlets::filters::csv::CsvFilterStorlet;
use scoop_storlets::{InvocationContext, Storlet};
use std::collections::HashMap;

const SCHEMA: &str = "vid,n,city";

fn make_csv(rows: &[(u32, i32, u8)]) -> Vec<u8> {
    let mut out = Vec::from(&b"vid,n,city\n"[..]);
    for (vid, n, city) in rows {
        let city = ["Rotterdam", "Paris", "Nice"][*city as usize % 3];
        out.extend_from_slice(format!("m{vid},{n},{city}\n").as_bytes());
    }
    out
}

fn invoke_range(
    data: &[u8],
    spec: &PushdownSpec,
    start: u64,
    end_exclusive: u64,
    chunk: usize,
) -> Vec<u8> {
    let mut params = HashMap::new();
    params.insert("spec".to_string(), spec.to_header());
    params.insert("schema".to_string(), SCHEMA.to_string());
    let mut ctx = InvocationContext::new(params);
    ctx.range_start = start;
    // Storlets receive the inclusive HTTP-style end byte.
    ctx.range_end = Some(end_exclusive.saturating_sub(1));
    let body = Bytes::from(data[start as usize..].to_vec());
    let out = CsvFilterStorlet
        .invoke(stream::chunked(body, chunk.max(1)), ctx)
        .unwrap();
    stream::collect(out).unwrap().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Concatenated ranged outputs == the filter over the whole object, for
    /// any split size and stream chunking.
    #[test]
    fn ranged_storlet_partitions_exactly(
        rows in proptest::collection::vec((0u32..30, -100i32..100, 0u8..3), 1..40),
        split in 1u64..120,
        chunk in 1usize..64,
        filtered in any::<bool>(),
    ) {
        let data = make_csv(&rows);
        let spec = PushdownSpec {
            columns: Some(vec!["vid".into(), "n".into()]),
            predicate: filtered
                .then(|| Predicate::Eq("city".into(), Value::Str("Rotterdam".into()))),
            has_header: true,
        };
        let header: Vec<String> = SCHEMA.split(',').map(str::to_string).collect();
        // Reference: filter over each aligned slice.
        let mut reference = Vec::new();
        let mut combined = Vec::new();
        for (s, e) in plan_splits(data.len() as u64, split) {
            let slice = aligned_slice(&data, s, e);
            let spec_for_split =
                PushdownSpec { has_header: spec.has_header && s == 0, ..spec.clone() };
            let (r, _) = filter_buffer(&spec_for_split, &header, slice, true).unwrap();
            reference.extend_from_slice(&r);
            combined.extend_from_slice(&invoke_range(&data, &spec, s, e, chunk));
        }
        prop_assert_eq!(
            String::from_utf8_lossy(&combined),
            String::from_utf8_lossy(&reference)
        );
        // And the unranged invocation equals the whole-object filter.
        let (whole, _) = filter_buffer(&spec, &header, &data, true).unwrap();
        let mut params = HashMap::new();
        params.insert("spec".to_string(), spec.to_header());
        params.insert("schema".to_string(), SCHEMA.to_string());
        let out = CsvFilterStorlet
            .invoke(
                stream::chunked(Bytes::from(data.clone()), chunk.max(1)),
                InvocationContext::new(params),
            )
            .unwrap();
        prop_assert_eq!(stream::collect(out).unwrap().to_vec(), whole);
    }

    /// Split boundaries landing exactly on record starts are the historical
    /// bug class; force them explicitly.
    #[test]
    fn boundary_exact_splits(rows in proptest::collection::vec((0u32..10, 0i32..10, 0u8..3), 2..20)) {
        let data = make_csv(&rows);
        // Record start offsets (positions after each newline).
        let starts: Vec<u64> = data
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .map(|(i, _)| i as u64 + 1)
            .filter(|&p| p < data.len() as u64)
            .collect();
        let spec = PushdownSpec { has_header: true, ..Default::default() };
        let header: Vec<String> = SCHEMA.split(',').map(str::to_string).collect();
        for &boundary in &starts {
            let mut combined = Vec::new();
            combined.extend_from_slice(&invoke_range(&data, &spec, 0, boundary, 7));
            combined.extend_from_slice(&invoke_range(
                &data,
                &spec,
                boundary,
                data.len() as u64,
                7,
            ));
            let (whole, _) = filter_buffer(&spec, &header, &data, true).unwrap();
            prop_assert_eq!(
                String::from_utf8_lossy(&combined),
                String::from_utf8_lossy(&whole),
                "boundary {}", boundary
            );
        }
    }
}
