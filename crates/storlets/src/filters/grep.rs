//! Line-grep storlet: early discard of lines lacking a substring.
//!
//! The simplest useful pushdown filter — the shape of Diamond-style "early
//! discard" cited by the paper — and a second, independent storlet to exercise
//! pipelining (e.g. `linegrep` → `rlecompress`).

use crate::api::{InvocationContext, Storlet};
use bytes::Bytes;
use scoop_common::{ByteStream, Result};
use scoop_csv::record::RecordSplitter;
use std::sync::atomic::Ordering;

/// Keeps lines containing the `pattern` parameter. With `invert=1`, keeps
/// lines *not* containing it.
pub struct LineGrepStorlet;

impl Storlet for LineGrepStorlet {
    fn name(&self) -> &str {
        "linegrep"
    }

    fn invoke(&self, input: ByteStream, ctx: InvocationContext) -> Result<ByteStream> {
        let pattern = ctx.require("pattern")?.as_bytes().to_vec();
        let invert = ctx.params.get("invert").map(String::as_str) == Some("1");
        let metrics = ctx.metrics.clone();
        let mut splitter = Some(RecordSplitter::new());
        let mut input = Some(input);
        let stream = std::iter::from_fn(move || loop {
            let splitter_ref = splitter.as_mut()?;
            let mut out: Vec<u8> = Vec::new();
            match input.as_mut().and_then(Iterator::next) {
                Some(Err(e)) => return Some(Err(e)),
                Some(Ok(chunk)) => {
                    metrics.bytes_in.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                    let m = &metrics;
                    let pat = &pattern;
                    if let Err(e) = splitter_ref.push(&chunk, |line| {
                        m.records_in.fetch_add(1, Ordering::Relaxed);
                        let hit = contains(line, pat);
                        if hit != invert {
                            m.records_out.fetch_add(1, Ordering::Relaxed);
                            out.extend_from_slice(line);
                            out.push(b'\n');
                        }
                    }) {
                        // Record-size cap tripped: surface the classified
                        // error instead of buffering the rest of the object.
                        splitter = None;
                        return Some(Err(e));
                    }
                }
                None => {
                    let m = &metrics;
                    let pat = &pattern;
                    // The loop header already bailed on a consumed splitter;
                    // if that invariant ever breaks, surface a classified
                    // error instead of panicking mid-stream.
                    let Some(sp) = splitter.take() else {
                        return Some(Err(scoop_common::ScoopError::Internal(
                            "grep record splitter consumed twice".into(),
                        )));
                    };
                    sp.finish(|line| {
                        m.records_in.fetch_add(1, Ordering::Relaxed);
                        let hit = contains(line, pat);
                        if hit != invert {
                            m.records_out.fetch_add(1, Ordering::Relaxed);
                            out.extend_from_slice(line);
                            out.push(b'\n');
                        }
                    });
                    input = None;
                }
            }
            if !out.is_empty() {
                metrics.bytes_out.fetch_add(out.len() as u64, Ordering::Relaxed);
                return Some(Ok(Bytes::from(out)));
            }
            splitter.as_ref()?;
        });
        Ok(Box::new(stream))
    }
}

/// Byte-level substring search (empty needle matches everything).
fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    haystack
        .windows(needle.len())
        .any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_common::stream;
    use std::collections::HashMap;

    fn run(data: &'static [u8], pattern: &str, invert: bool) -> String {
        let mut params = HashMap::new();
        params.insert("pattern".to_string(), pattern.to_string());
        if invert {
            params.insert("invert".to_string(), "1".to_string());
        }
        let out = LineGrepStorlet
            .invoke(
                stream::chunked(Bytes::from_static(data), 5),
                InvocationContext::new(params),
            )
            .unwrap();
        String::from_utf8(stream::collect(out).unwrap().to_vec()).unwrap()
    }

    #[test]
    fn keeps_matching_lines() {
        let data = b"ERROR disk full\nINFO ok\nERROR net down\n";
        assert_eq!(run(data, "ERROR", false), "ERROR disk full\nERROR net down\n");
    }

    #[test]
    fn invert_drops_matches() {
        let data = b"ERROR a\nINFO b\n";
        assert_eq!(run(data, "ERROR", true), "INFO b\n");
    }

    #[test]
    fn empty_pattern_matches_all() {
        let data = b"a\nb";
        assert_eq!(run(data, "", false), "a\nb\n");
    }

    #[test]
    fn requires_pattern_param() {
        assert!(LineGrepStorlet
            .invoke(stream::empty(), InvocationContext::new(HashMap::new()))
            .is_err());
    }

    #[test]
    fn substring_search_reference() {
        assert!(contains(b"hello world", b"lo w"));
        assert!(!contains(b"hello", b"world"));
        assert!(contains(b"abc", b""));
        assert!(!contains(b"ab", b"abc"));
    }
}
