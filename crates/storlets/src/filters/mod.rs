//! Storlets shipped with Scoop.
//!
//! * [`csv`] — the paper's `CSVStorlet`: SQL projection/selection pushdown on
//!   CSV objects, byte-range aware.
//! * [`grep`] — line filtering by substring, the "early discard" classic.
//! * [`compress`] — RLE compression/decompression, for the paper's proposed
//!   "intelligent combinations of data filtering and compression".
//! * [`stats`] — storage-side aggregation of a numeric column ("it can perform
//!   aggregations on individual object requests").
//! * [`metadata`] — EXIF-style metadata extraction from binary objects (the
//!   Section VII non-textual data source).
//! * [`etl`] — PUT-path data cleansing and column-splitting transformations
//!   ("ETL often requires data transformations. Storlets permits this in the
//!   PUT data path").
//! * [`index`] — PUT-path zone-map indexing: per-block min/max statistics
//!   published as object metadata so GET pushdown can skip byte ranges.

pub mod compress;
pub mod csv;
pub mod etl;
pub mod grep;
pub mod index;
pub mod metadata;
pub mod stats;
