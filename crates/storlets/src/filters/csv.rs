//! The CSV projection/selection pushdown filter — the paper's `CSVStorlet`.
//!
//! Parameters:
//!
//! * `spec` — a [`PushdownSpec`] header encoding (projection, selection,
//!   header flag) as produced by the analytics delegator.
//! * `schema` — the object's column names in file order, comma-separated.
//!
//! The filter is **byte-range aware** with Hadoop `LineRecordReader`
//! ownership semantics (see `scoop_csv::split`): when invoked with
//! `range_start > 0` it discards bytes through the first newline, and it owns
//! records starting at offsets `p` with `range_start < p <= range_end`,
//! reading past `range_end` to finish the final owned record and then
//! **stopping the input stream early** — the laziness that keeps a ranged
//! invocation from scanning the rest of the object.

use crate::api::{InvocationContext, InvocationMetrics, Storlet};
use bytes::Bytes;
use scoop_common::{ByteStream, Result, ScoopError};
use scoop_csv::filter::CompiledSpec;
use scoop_csv::scan;
use scoop_csv::view::FieldBuf;
use scoop_csv::PushdownSpec;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// The CSV pushdown storlet.
pub struct CsvFilterStorlet;

impl Storlet for CsvFilterStorlet {
    fn name(&self) -> &str {
        "csvfilter"
    }

    fn invoke(&self, input: ByteStream, ctx: InvocationContext) -> Result<ByteStream> {
        let spec = PushdownSpec::from_header(ctx.require("spec")?)?;
        let schema: Vec<String> = ctx
            .require("schema")?
            .split(',')
            .map(str::to_string)
            .collect();
        if schema.is_empty() {
            return Err(ScoopError::Storlet("empty schema parameter".into()));
        }
        let compiled = CompiledSpec::compile(&spec, &schema)?;
        ctx.logger.log(format!(
            "csvfilter: range_start={} range_end={:?} cols={:?}",
            ctx.range_start, ctx.range_end, spec.columns
        ));
        Ok(Box::new(RangedCsvFilterStream {
            input: Some(input),
            compiled,
            fields: FieldBuf::default(),
            buf: Vec::new(),
            offset: ctx.range_start,
            aligned: ctx.range_start == 0 || ctx.pre_aligned,
            header_pending: ctx.range_start == 0 && spec.has_header,
            // ctx.range_end is the inclusive HTTP-style end byte; ownership
            // uses the exclusive split end (records with start <= end+1
            // belong to this range — see scoop_csv::split). Saturating: a
            // suffix-style `bytes=0-18446744073709551615` end is a legal
            // header, and u64::MAX already means "own everything", so the
            // clamp loses nothing.
            end: ctx.range_end.map(|e| e.saturating_add(1)),
            metrics: ctx.metrics,
            done: false,
        }))
    }
}

/// Lazy stream: pulls input chunks, emits filtered record bytes.
struct RangedCsvFilterStream {
    input: Option<ByteStream>,
    compiled: CompiledSpec,
    /// Reusable per-record parse state (field span table).
    fields: FieldBuf,
    /// Unprocessed input bytes; `offset` is the absolute object offset of
    /// `buf[0]`.
    buf: Vec<u8>,
    offset: u64,
    /// False until the partial first record of a mid-object range is dropped.
    aligned: bool,
    /// True while the object's header record is still to be consumed.
    header_pending: bool,
    /// Exclusive end of the logical split (`None` = to EOF): owned records
    /// have start offsets `p <= end`.
    end: Option<u64>,
    metrics: Arc<InvocationMetrics>,
    done: bool,
}

impl RangedCsvFilterStream {
    /// Process complete records in `buf` into `out`. Returns true when the
    /// range end has been passed (caller should stop reading input).
    ///
    /// Scans with an index cursor (SWAR newline search) and drains the
    /// consumed prefix once at the end; the old per-record `Vec::drain` made
    /// this quadratic in records-per-chunk.
    fn drain_records(&mut self, out: &mut Vec<u8>) -> bool {
        let mut pos = 0usize;
        let mut past_end = false;
        loop {
            if !self.aligned {
                // Discard through the first newline (Hadoop semantics).
                match scan::find_byte(&self.buf[pos..], b'\n') {
                    Some(nl) => {
                        pos += nl + 1;
                        self.aligned = true;
                    }
                    None => {
                        pos = self.buf.len();
                        break; // need more input
                    }
                }
                continue;
            }
            let record_start = self.offset + pos as u64;
            if let Some(end) = self.end {
                // Records are owned while their start offset p satisfies
                // p <= end (p > range_start is guaranteed by alignment).
                if record_start > end {
                    past_end = true;
                    break;
                }
            }
            match scan::find_byte(&self.buf[pos..], b'\n') {
                None => break,
                Some(nl) => {
                    let mut rec_end = pos + nl;
                    if rec_end > pos && self.buf[rec_end - 1] == b'\r' {
                        rec_end -= 1;
                    }
                    if rec_end > pos {
                        // Non-blank record.
                        if self.header_pending {
                            self.header_pending = false;
                        } else {
                            self.metrics.records_in.fetch_add(1, Ordering::Relaxed);
                            if self.compiled.filter_record_buf(
                                &self.buf[pos..rec_end],
                                &mut self.fields,
                                out,
                            ) {
                                self.metrics.records_out.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    pos += nl + 1;
                }
            }
        }
        self.offset += pos as u64;
        if pos > 0 {
            self.buf.drain(..pos);
        }
        past_end
    }

    /// Handle the final (newline-less) record at EOF.
    fn drain_tail(&mut self, out: &mut Vec<u8>) {
        if self.buf.is_empty() || !self.aligned {
            self.buf.clear();
            return;
        }
        let record_start = self.offset;
        if let Some(end) = self.end {
            if record_start > end {
                self.buf.clear();
                return;
            }
        }
        let mut rec_end = self.buf.len();
        if self.buf[rec_end - 1] == b'\r' {
            rec_end -= 1;
        }
        if rec_end > 0 {
            if self.header_pending {
                self.header_pending = false;
            } else {
                self.metrics.records_in.fetch_add(1, Ordering::Relaxed);
                if self
                    .compiled
                    .filter_record_buf(&self.buf[..rec_end], &mut self.fields, out)
                {
                    self.metrics.records_out.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.buf.clear();
    }
}

impl Iterator for RangedCsvFilterStream {
    type Item = Result<Bytes>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let started = Instant::now();
        let mut out = Vec::new();
        loop {
            let chunk = match self.input.as_mut().and_then(Iterator::next) {
                Some(Ok(c)) => Some(c),
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e));
                }
                None => None,
            };
            match chunk {
                Some(c) => {
                    self.metrics.bytes_in.fetch_add(c.len() as u64, Ordering::Relaxed);
                    self.buf.extend_from_slice(&c);
                    if self.drain_records(&mut out) {
                        // Passed range end: stop reading input early.
                        self.done = true;
                        self.input = None;
                        break;
                    }
                    // Yield once we have a reasonable chunk of output.
                    if out.len() >= scoop_common::stream::DEFAULT_CHUNK {
                        break;
                    }
                }
                None => {
                    self.drain_tail(&mut out);
                    self.done = true;
                    self.input = None;
                    break;
                }
            }
        }
        self.metrics
            .busy_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if out.is_empty() {
            if self.done {
                None
            } else {
                self.next()
            }
        } else {
            self.metrics
                .bytes_out
                .fetch_add(out.len() as u64, Ordering::Relaxed);
            Some(Ok(Bytes::from(out)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_common::stream;
    use scoop_csv::filter::filter_buffer;
    use scoop_csv::split::{aligned_slice, plan_splits};
    use scoop_csv::{Predicate, Value};
    use std::collections::HashMap;

    const SCHEMA: &str = "vid,date,index,city";
    const DATA: &[u8] = b"vid,date,index,city\n\
        m1,2015-01-03,100.5,Rotterdam\n\
        m2,2015-01-04,200.0,Paris\n\
        m3,2015-02-01,50.0,Utrecht\n\
        m4,2015-01-09,75.0,Rotterdam\n";

    fn spec() -> PushdownSpec {
        PushdownSpec {
            columns: Some(vec!["vid".into(), "index".into()]),
            predicate: Some(Predicate::Eq("city".into(), Value::Str("Rotterdam".into()))),
            has_header: true,
        }
    }

    fn invoke_range(
        data: &'static [u8],
        spec: &PushdownSpec,
        start: u64,
        end: Option<u64>,
        chunk: usize,
    ) -> (String, Arc<InvocationMetrics>) {
        let mut params = HashMap::new();
        params.insert("spec".to_string(), spec.to_header());
        params.insert("schema".to_string(), SCHEMA.to_string());
        let mut ctx = InvocationContext::new(params);
        ctx.range_start = start;
        ctx.range_end = end;
        let metrics = ctx.metrics.clone();
        // The middleware feeds the storlet bytes from range_start onward.
        let body = Bytes::from_static(&data[start as usize..]);
        let out = CsvFilterStorlet
            .invoke(stream::chunked(body, chunk), ctx)
            .unwrap();
        (
            String::from_utf8(stream::collect(out).unwrap().to_vec()).unwrap(),
            metrics,
        )
    }

    #[test]
    fn whole_object_filtering() {
        let (out, m) = invoke_range(DATA, &spec(), 0, None, 7);
        assert_eq!(out, "m1,100.5\nm4,75.0\n");
        assert_eq!(m.records_in.load(Ordering::Relaxed), 4);
        assert_eq!(m.records_out.load(Ordering::Relaxed), 2);
        assert!(m.data_selectivity() > 0.5);
    }

    #[test]
    fn matches_filter_buffer_reference() {
        let header: Vec<String> = SCHEMA.split(',').map(str::to_string).collect();
        let (reference, _) = filter_buffer(&spec(), &header, DATA, true).unwrap();
        let (out, _) = invoke_range(DATA, &spec(), 0, None, 3);
        assert_eq!(out.as_bytes(), &reference[..]);
    }

    /// The key contract: for any split plan, concatenating ranged storlet
    /// outputs equals filtering each record exactly once — identical to the
    /// `aligned_slice` reference implementation.
    #[test]
    fn ranged_invocations_match_aligned_slices() {
        let header: Vec<String> = SCHEMA.split(',').map(str::to_string).collect();
        let spec = spec();
        for chunk_size in [16u64, 23, 40, 64, 200] {
            let mut combined = String::new();
            let mut reference = Vec::new();
            for (s, e) in plan_splits(DATA.len() as u64, chunk_size) {
                // Reference: aligned slice, filtered (header only in split 0).
                let slice = aligned_slice(DATA, s, e);
                let spec_for_split = PushdownSpec {
                    has_header: spec.has_header && s == 0,
                    ..spec.clone()
                };
                let (r, _) = filter_buffer(&spec_for_split, &header, slice, true).unwrap();
                reference.extend_from_slice(&r);
                // Storlet: inclusive-end range [s, e-1].
                let (out, _) = invoke_range(DATA, &spec, s, Some(e - 1), 11);
                combined.push_str(&out);
            }
            assert_eq!(
                combined.as_bytes(),
                &reference[..],
                "chunk_size={chunk_size}"
            );
        }
    }

    #[test]
    fn early_termination_stops_reading() {
        // Large object: range covers only the start; the stream must not
        // consume the whole input.
        let mut big = Vec::from(&b"a,b\n"[..]);
        for i in 0..100_000 {
            big.extend_from_slice(format!("m{i},1\n").as_bytes());
        }
        let big: &'static [u8] = Box::leak(big.into_boxed_slice());
        let spec = PushdownSpec { has_header: true, ..Default::default() };
        let mut params = HashMap::new();
        params.insert("spec".to_string(), spec.to_header());
        params.insert("schema".to_string(), "a,b".to_string());
        let mut ctx = InvocationContext::new(params);
        ctx.range_start = 0;
        ctx.range_end = Some(1000);
        let metrics = ctx.metrics.clone();
        let out = CsvFilterStorlet
            .invoke(
                stream::chunked(Bytes::from_static(big), 4096),
                ctx,
            )
            .unwrap();
        let _ = stream::collect(out).unwrap();
        let consumed = metrics.bytes_in.load(Ordering::Relaxed);
        assert!(
            consumed < 20_000,
            "consumed {consumed} bytes for a 1000-byte range"
        );
    }

    #[test]
    fn u64_max_range_end_owns_everything() {
        // Regression: `e + 1` overflow-panicked on the largest legal
        // inclusive end; it must behave exactly like an unbounded range.
        let (unbounded, _) = invoke_range(DATA, &spec(), 0, None, 9);
        let (clamped, _) = invoke_range(DATA, &spec(), 0, Some(u64::MAX), 9);
        assert_eq!(clamped, unbounded);
        assert_eq!(clamped, "m1,100.5\nm4,75.0\n");
    }

    #[test]
    fn pre_aligned_range_keeps_first_record() {
        // Byte 20 is the start of the m1 record; a planner-cut range
        // starting there must not discard it through newline alignment.
        let start = DATA.iter().position(|&b| b == b'\n').unwrap() as u64 + 1;
        let mut params = HashMap::new();
        params.insert("spec".to_string(), spec().to_header());
        params.insert("schema".to_string(), SCHEMA.to_string());
        let mut ctx = InvocationContext::new(params);
        ctx.range_start = start;
        ctx.range_end = None;
        ctx.pre_aligned = true;
        let body = Bytes::from_static(&DATA[start as usize..]);
        let out = CsvFilterStorlet.invoke(stream::chunked(body, 13), ctx).unwrap();
        let out = String::from_utf8(stream::collect(out).unwrap().to_vec()).unwrap();
        // All data records present: nothing was discarded, no header skip.
        assert_eq!(out, "m1,100.5\nm4,75.0\n");
        // Without the flag, the same invocation drops the first record.
        let (unaligned, _) = invoke_range(DATA, &spec(), start, None, 13);
        assert_eq!(unaligned, "m4,75.0\n");
    }

    #[test]
    fn missing_params_error() {
        let ctx = InvocationContext::new(HashMap::new());
        assert!(CsvFilterStorlet
            .invoke(stream::empty(), ctx)
            .is_err());
        let mut params = HashMap::new();
        params.insert("spec".to_string(), "hdr=1;cols=*;pred=".to_string());
        // schema missing
        assert!(CsvFilterStorlet
            .invoke(stream::empty(), InvocationContext::new(params))
            .is_err());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let (out, m) = invoke_range(b"", &PushdownSpec::passthrough(), 0, None, 8);
        assert!(out.is_empty());
        assert_eq!(m.records_in.load(Ordering::Relaxed), 0);
    }
}
