//! Run-length compression storlets.
//!
//! Section VII of the paper proposes "intelligent combinations of data
//! filtering and compression for low data selectivity queries"; these two
//! storlets make that combination expressible as a pipeline
//! (`csvfilter` → `rlecompress` at the store, `rledecompress` at the client).
//!
//! ## Format
//!
//! A stream of frames: `0x00 len u8[len]` (literal run, 1–255 bytes) or
//! `0x01 count byte` (repeat run, 4–255 repetitions). Runs shorter than 4 are
//! folded into literals.

use crate::api::{InvocationContext, Storlet};
use bytes::Bytes;
use scoop_common::{ByteStream, Result, ScoopError};
use std::sync::atomic::Ordering;

/// Compress a whole buffer.
pub fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 8);
    let mut literal: Vec<u8> = Vec::new();
    let mut i = 0usize;
    let flush_literal = |lit: &mut Vec<u8>, out: &mut Vec<u8>| {
        for chunk in lit.chunks(255) {
            out.push(0x00);
            out.push(chunk.len() as u8);
            out.extend_from_slice(chunk);
        }
        lit.clear();
    };
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 255 {
            run += 1;
        }
        if run >= 4 {
            flush_literal(&mut literal, &mut out);
            out.push(0x01);
            out.push(run as u8);
            out.push(b);
        } else {
            literal.extend(std::iter::repeat_n(b, run));
        }
        i += run;
    }
    flush_literal(&mut literal, &mut out);
    out
}

/// Decompress a whole buffer.
pub fn rle_decompress(data: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0usize;
    while i < data.len() {
        match data[i] {
            0x00 => {
                let len = *data
                    .get(i + 1)
                    .ok_or_else(|| ScoopError::Storlet("truncated RLE literal".into()))?
                    as usize;
                let body = data
                    .get(i + 2..i + 2 + len)
                    .ok_or_else(|| ScoopError::Storlet("truncated RLE literal body".into()))?;
                out.extend_from_slice(body);
                i += 2 + len;
            }
            0x01 => {
                let count = *data
                    .get(i + 1)
                    .ok_or_else(|| ScoopError::Storlet("truncated RLE run".into()))?
                    as usize;
                let byte = *data
                    .get(i + 2)
                    .ok_or_else(|| ScoopError::Storlet("truncated RLE run byte".into()))?;
                out.extend(std::iter::repeat_n(byte, count));
                i += 3;
            }
            tag => {
                return Err(ScoopError::Storlet(format!("bad RLE frame tag {tag}")));
            }
        }
    }
    Ok(out)
}

/// Helper: run an eager whole-buffer transformation as a lazy single-yield
/// stream with metrics.
fn eager_transform(
    input: ByteStream,
    ctx: &InvocationContext,
    f: impl FnOnce(&[u8]) -> Result<Vec<u8>> + Send + 'static,
) -> Result<ByteStream> {
    let metrics = ctx.metrics.clone();
    let mut input = Some(input);
    let mut f = Some(f);
    Ok(Box::new(std::iter::from_fn(move || {
        let inp = input.take()?;
        let transform = f.take()?;
        let run = || -> Result<Bytes> {
            let data = scoop_common::stream::collect(inp)?;
            metrics.bytes_in.fetch_add(data.len() as u64, Ordering::Relaxed);
            let out = transform(&data)?;
            metrics.bytes_out.fetch_add(out.len() as u64, Ordering::Relaxed);
            Ok(Bytes::from(out))
        };
        Some(run())
    })))
}

/// Compressing storlet.
pub struct RleCompressStorlet;

impl Storlet for RleCompressStorlet {
    fn name(&self) -> &str {
        "rlecompress"
    }

    fn invoke(&self, input: ByteStream, ctx: InvocationContext) -> Result<ByteStream> {
        eager_transform(input, &ctx, |d| Ok(rle_compress(d)))
    }
}

/// Decompressing storlet.
pub struct RleDecompressStorlet;

impl Storlet for RleDecompressStorlet {
    fn name(&self) -> &str {
        "rledecompress"
    }

    fn invoke(&self, input: ByteStream, ctx: InvocationContext) -> Result<ByteStream> {
        eager_transform(input, &ctx, rle_decompress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_common::stream;
    use std::collections::HashMap;

    #[test]
    fn roundtrip_various_payloads() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            b"abc".to_vec(),
            vec![7u8; 1000],
            (0..=255u8).collect(),
            b"aaaabbbbbbbbccddddddddddddd".to_vec(),
            vec![0u8, 1, 0, 1, 0, 1],
        ];
        for case in cases {
            let comp = rle_compress(&case);
            assert_eq!(rle_decompress(&comp).unwrap(), case);
        }
    }

    #[test]
    fn compresses_runs() {
        let data = vec![b'x'; 10_000];
        let comp = rle_compress(&data);
        assert!(comp.len() < 200, "compressed to {} bytes", comp.len());
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(rle_decompress(&[0x01, 5]).is_err());
        assert!(rle_decompress(&[0x00, 10, 1, 2]).is_err());
        assert!(rle_decompress(&[0x77]).is_err());
    }

    #[test]
    fn storlet_pipeline_roundtrip() {
        let data = Bytes::from(vec![b'z'; 5000]);
        let ctx = InvocationContext::new(HashMap::new());
        let compressed = RleCompressStorlet
            .invoke(stream::chunked(data.clone(), 512), ctx.clone())
            .unwrap();
        let restored = RleDecompressStorlet
            .invoke(compressed, InvocationContext::new(HashMap::new()))
            .unwrap();
        assert_eq!(stream::collect(restored).unwrap(), data);
        assert_eq!(ctx.metrics.bytes_in.load(Ordering::Relaxed), 5000);
        assert!(ctx.metrics.bytes_out.load(Ordering::Relaxed) < 200);
    }
}
