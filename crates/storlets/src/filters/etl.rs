//! PUT-path ETL storlet: cleansing and format transformation on upload.
//!
//! "We use Storlet for data cleansing and for modifying the data format (e.g.
//! split a column into multiple ones). These transformation simplify Spark
//! workloads without requiring painful rewrites of huge data sets." —
//! Section V. The GridPocket datasets in the evaluation "upon being uploaded
//! into the object store, \[were\] cleansed by an ETL storlet".
//!
//! Transformations (driven by parameters):
//!
//! * trim surrounding whitespace from every field;
//! * drop records whose field count differs from the schema (malformed rows);
//! * optionally split one column on a separator into two columns — e.g. a
//!   `"2015-01-03 10:20:00"` timestamp into `date` + `time`.

use crate::api::{InvocationContext, Storlet};
use bytes::Bytes;
use scoop_common::{ByteStream, Result, ScoopError};
use scoop_csv::record::{parse_fields, write_record, RecordSplitter};
use std::sync::atomic::Ordering;

/// Parameters: `schema` (expected column names), optional `split_column`
/// (name), `split_sep` (default `" "`), `header` ("1" to rewrite the header).
pub struct EtlCleanseStorlet;

impl Storlet for EtlCleanseStorlet {
    fn name(&self) -> &str {
        "etlcleanse"
    }

    fn invoke(&self, input: ByteStream, ctx: InvocationContext) -> Result<ByteStream> {
        let schema: Vec<String> = ctx
            .require("schema")?
            .split(',')
            .map(str::to_string)
            .collect();
        let split_column = ctx.params.get("split_column").cloned();
        let split_sep = ctx
            .params
            .get("split_sep")
            .cloned()
            .unwrap_or_else(|| " ".to_string());
        let split_idx = match &split_column {
            None => None,
            Some(name) => Some(
                schema
                    .iter()
                    .position(|c| c.eq_ignore_ascii_case(name))
                    .ok_or_else(|| {
                        ScoopError::Storlet(format!("unknown split column '{name}'"))
                    })?,
            ),
        };
        let has_header = ctx.params.get("header").map(String::as_str) == Some("1");
        let metrics = ctx.metrics.clone();
        let expected_fields = schema.len();

        let mut splitter = Some(RecordSplitter::new());
        let mut input = Some(input);
        let mut header_pending = has_header;
        let stream = std::iter::from_fn(move || loop {
            splitter.as_ref()?;
            let mut out: Vec<u8> = Vec::new();
            let mut process = |record: &[u8], out: &mut Vec<u8>| {
                metrics.records_in.fetch_add(1, Ordering::Relaxed);
                let fields = parse_fields(record);
                if header_pending {
                    header_pending = false;
                    // Rewrite the header, applying the column split to names.
                    let names: Vec<String> = transform(
                        &fields.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
                        split_idx,
                        &split_sep,
                        true,
                    );
                    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                    write_record(out, &refs);
                    metrics.records_out.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                if fields.len() != expected_fields {
                    return; // malformed row: dropped
                }
                let trimmed: Vec<String> =
                    fields.iter().map(|f| f.trim().to_string()).collect();
                let cells = transform(&trimmed, split_idx, &split_sep, false);
                let refs: Vec<&str> = cells.iter().map(String::as_str).collect();
                write_record(out, &refs);
                metrics.records_out.fetch_add(1, Ordering::Relaxed);
            };
            match input.as_mut().and_then(Iterator::next) {
                Some(Err(e)) => return Some(Err(e)),
                Some(Ok(chunk)) => {
                    metrics.bytes_in.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                    // The loop header already bailed on a consumed splitter;
                    // a classified error beats a panic if that ever breaks.
                    let Some(sp) = splitter.as_mut() else {
                        return Some(Err(ScoopError::Internal(
                            "etl record splitter consumed twice".into(),
                        )));
                    };
                    if let Err(e) = sp.push(&chunk, |r| process(r, &mut out)) {
                        // Record-size cap tripped: surface the classified
                        // error instead of buffering the rest of the object.
                        splitter = None;
                        return Some(Err(e));
                    }
                }
                None => {
                    let Some(sp) = splitter.take() else {
                        return Some(Err(ScoopError::Internal(
                            "etl record splitter consumed twice".into(),
                        )));
                    };
                    sp.finish(|r| process(r, &mut out));
                    input = None;
                }
            }
            if !out.is_empty() {
                metrics.bytes_out.fetch_add(out.len() as u64, Ordering::Relaxed);
                return Some(Ok(Bytes::from(out)));
            }
            splitter.as_ref()?;
        });
        Ok(Box::new(stream))
    }
}

/// Apply the column split. For headers, derive `<name>_1`/`<name>_2`.
fn transform(
    fields: &[String],
    split_idx: Option<usize>,
    sep: &str,
    is_header: bool,
) -> Vec<String> {
    let Some(idx) = split_idx else {
        return fields.to_vec();
    };
    let mut out = Vec::with_capacity(fields.len() + 1);
    for (i, f) in fields.iter().enumerate() {
        if i == idx {
            if is_header {
                out.push(format!("{f}_1"));
                out.push(format!("{f}_2"));
            } else {
                match f.split_once(sep) {
                    Some((a, b)) => {
                        out.push(a.to_string());
                        out.push(b.to_string());
                    }
                    None => {
                        out.push(f.clone());
                        out.push(String::new());
                    }
                }
            }
        } else {
            out.push(f.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_common::stream;
    use std::collections::HashMap;

    fn run(data: &'static [u8], split: Option<&str>) -> String {
        let mut params = HashMap::new();
        params.insert("schema".to_string(), "vid,date,index".to_string());
        params.insert("header".to_string(), "1".to_string());
        if let Some(col) = split {
            params.insert("split_column".to_string(), col.to_string());
        }
        let out = EtlCleanseStorlet
            .invoke(
                stream::chunked(Bytes::from_static(data), 9),
                InvocationContext::new(params),
            )
            .unwrap();
        String::from_utf8(stream::collect(out).unwrap().to_vec()).unwrap()
    }

    #[test]
    fn trims_and_drops_malformed() {
        let data = b"vid,date,index\n m1 , 2015-01-03 ,  5 \nbad,row\nm2,2015-01-04,6\n";
        let out = run(data, None);
        assert_eq!(out, "vid,date,index\nm1,2015-01-03,5\nm2,2015-01-04,6\n");
    }

    #[test]
    fn splits_timestamp_column() {
        let data = b"vid,date,index\nm1,2015-01-03 10:20:00,5\n";
        let out = run(data, Some("date"));
        assert_eq!(out, "vid,date_1,date_2,index\nm1,2015-01-03,10:20:00,5\n");
    }

    #[test]
    fn split_without_separator_pads_empty() {
        let data = b"vid,date,index\nm1,nodate,5\n";
        let out = run(data, Some("date"));
        assert!(out.contains("m1,nodate,,5\n"), "{out}");
    }

    #[test]
    fn unknown_split_column_errors() {
        let mut params = HashMap::new();
        params.insert("schema".to_string(), "a,b".to_string());
        params.insert("split_column".to_string(), "ghost".to_string());
        assert!(EtlCleanseStorlet
            .invoke(stream::empty(), InvocationContext::new(params))
            .is_err());
    }
}
