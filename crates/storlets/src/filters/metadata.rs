//! Metadata extraction from binary objects — the Section VII non-textual
//! data source: "one can imagine different types of Spark jobs ingesting
//! information from non-textual data thanks to Scoop pushdown filters;
//! examples include bringing EXIF metadata from JPEGs".
//!
//! We define SIMG, a tiny EXIF-like tagged binary image container (magic +
//! TLV entries + an opaque pixel payload), and a storlet that extracts the
//! tags as CSV — turning a megapixel blob GET into a hundred-byte response
//! a Spark-like job can ingest as a table.

use crate::api::{InvocationContext, Storlet};
use bytes::Bytes;
use scoop_common::{ByteStream, Result, ScoopError};
use std::sync::atomic::Ordering;

/// Magic prefix of the SIMG container.
pub const SIMG_MAGIC: &[u8; 4] = b"SIMG";

/// Build a SIMG object: `SIMG | n_tags u16 | (klen u16, k, vlen u16, v)* |
/// payload`.
pub fn encode_simg(tags: &[(&str, &str)], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 64);
    out.extend_from_slice(SIMG_MAGIC);
    out.extend_from_slice(&(tags.len() as u16).to_le_bytes());
    for (k, v) in tags {
        out.extend_from_slice(&(k.len() as u16).to_le_bytes());
        out.extend_from_slice(k.as_bytes());
        out.extend_from_slice(&(v.len() as u16).to_le_bytes());
        out.extend_from_slice(v.as_bytes());
    }
    out.extend_from_slice(payload);
    out
}

/// Parse the tag directory of a SIMG object (ignores the pixel payload).
pub fn decode_simg_tags(data: &[u8]) -> Result<Vec<(String, String)>> {
    if data.len() < 6 || &data[..4] != SIMG_MAGIC {
        return Err(ScoopError::Storlet("not a SIMG object".into()));
    }
    let n = u16::from_le_bytes([data[4], data[5]]) as usize;
    let mut tags = Vec::with_capacity(n);
    let mut i = 6usize;
    let read_str = |i: &mut usize| -> Result<String> {
        let len = match data.get(*i..*i + 2) {
            Some(&[lo, hi]) => u16::from_le_bytes([lo, hi]) as usize,
            _ => return Err(ScoopError::Storlet("truncated SIMG tag".into())),
        };
        *i += 2;
        let s = data
            .get(*i..*i + len)
            .ok_or_else(|| ScoopError::Storlet("truncated SIMG tag body".into()))?;
        *i += len;
        Ok(String::from_utf8_lossy(s).into_owned())
    };
    for _ in 0..n {
        let k = read_str(&mut i)?;
        let v = read_str(&mut i)?;
        tags.push((k, v));
    }
    Ok(tags)
}

/// Extracts SIMG tags as `key,value` CSV rows. With a `keys` parameter
/// (comma-separated), only those tags are emitted — projection pushdown for
/// binary metadata.
pub struct MetadataExtractStorlet;

impl Storlet for MetadataExtractStorlet {
    fn name(&self) -> &str {
        "metaextract"
    }

    fn invoke(&self, input: ByteStream, ctx: InvocationContext) -> Result<ByteStream> {
        let wanted: Option<Vec<String>> = ctx
            .params
            .get("keys")
            .map(|s| s.split(',').map(str::to_string).collect());
        let metrics = ctx.metrics.clone();
        let mut input = Some(input);
        Ok(Box::new(std::iter::from_fn(move || {
            let input = input.take()?;
            let run = || -> Result<Bytes> {
                // The tag directory sits at the head of the object: pull
                // chunks only until it parses, never the pixel payload.
                let mut head: Vec<u8> = Vec::new();
                let mut tags = None;
                for chunk in input {
                    let chunk = chunk?;
                    metrics.bytes_in.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                    head.extend_from_slice(&chunk);
                    match decode_simg_tags(&head) {
                        Ok(t) => {
                            tags = Some(t);
                            break;
                        }
                        Err(_) if head.len() < 1 << 20 => continue,
                        Err(e) => return Err(e),
                    }
                }
                let tags = match tags {
                    Some(t) => t,
                    // Stream ended: final parse attempt with what we have.
                    None => decode_simg_tags(&head)?,
                };
                let mut out = Vec::new();
                for (k, v) in &tags {
                    if wanted.as_ref().is_none_or(|w| w.iter().any(|x| x == k)) {
                        scoop_csv::record::write_record(&mut out, &[k, v]);
                        metrics.records_out.fetch_add(1, Ordering::Relaxed);
                    }
                    metrics.records_in.fetch_add(1, Ordering::Relaxed);
                }
                metrics.bytes_out.fetch_add(out.len() as u64, Ordering::Relaxed);
                Ok(Bytes::from(out))
            };
            Some(run())
        })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_common::stream;
    use std::collections::HashMap;

    fn image() -> Vec<u8> {
        encode_simg(
            &[
                ("camera", "GP-Cam 3000"),
                ("taken", "2015-01-03 10:20:00"),
                ("lat", "51.92"),
                ("long", "4.47"),
            ],
            &vec![0xAB; 2_000_000], // 2 MB of "pixels"
        )
    }

    #[test]
    fn simg_roundtrip() {
        let img = image();
        let tags = decode_simg_tags(&img).unwrap();
        assert_eq!(tags.len(), 4);
        assert_eq!(tags[0], ("camera".to_string(), "GP-Cam 3000".to_string()));
        assert!(decode_simg_tags(b"JPEG").is_err());
        assert!(decode_simg_tags(&img[..8]).is_err());
    }

    #[test]
    fn extracts_all_tags_without_reading_pixels() {
        let img = image();
        let total = img.len() as u64;
        let ctx = InvocationContext::new(HashMap::new());
        let metrics = ctx.metrics.clone();
        let out = MetadataExtractStorlet
            .invoke(stream::chunked(Bytes::from(img), 4096), ctx)
            .unwrap();
        let csv = String::from_utf8(stream::collect(out).unwrap().to_vec()).unwrap();
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("camera,GP-Cam 3000"));
        // Early termination: a 2 MB object, only the head consumed.
        assert!(
            metrics.bytes_in.load(Ordering::Relaxed) < total / 100,
            "consumed {} of {total}",
            metrics.bytes_in.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn key_projection() {
        let img = image();
        let mut params = HashMap::new();
        params.insert("keys".to_string(), "lat,long".to_string());
        let out = MetadataExtractStorlet
            .invoke(
                stream::chunked(Bytes::from(img), 1024),
                InvocationContext::new(params),
            )
            .unwrap();
        let csv = String::from_utf8(stream::collect(out).unwrap().to_vec()).unwrap();
        assert_eq!(csv, "lat,51.92\nlong,4.47\n");
    }

    #[test]
    fn non_simg_objects_error() {
        let out = MetadataExtractStorlet
            .invoke(
                stream::once(Bytes::from_static(b"plain,csv\n1,2\n")),
                InvocationContext::new(HashMap::new()),
            )
            .unwrap();
        assert!(stream::collect(out).is_err());
    }
}
