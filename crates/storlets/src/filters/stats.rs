//! Storage-side aggregation storlet.
//!
//! The paper notes the object store "can perform aggregations on individual
//! object requests to facilitate the construction of graphs from a large
//! dataset". This storlet computes count/sum/min/max/mean of one numeric CSV
//! column and emits a single-row CSV — turning a gigabyte GET into a
//! ~100-byte response.

use crate::api::{InvocationContext, Storlet};
use bytes::Bytes;
use scoop_common::{ByteStream, Result, ScoopError};
use scoop_csv::record::{parse_fields, RecordSplitter};
use std::sync::atomic::Ordering;

/// Parameters: `column` (name), `schema` (comma-separated column names),
/// optional `header` ("1" when the object starts with a header row).
pub struct AggregateStorlet;

impl Storlet for AggregateStorlet {
    fn name(&self) -> &str {
        "aggregate"
    }

    fn invoke(&self, input: ByteStream, ctx: InvocationContext) -> Result<ByteStream> {
        let column = ctx.require("column")?.to_string();
        let schema: Vec<String> = ctx
            .require("schema")?
            .split(',')
            .map(str::to_string)
            .collect();
        let col_idx = schema
            .iter()
            .position(|c| c.eq_ignore_ascii_case(&column))
            .ok_or_else(|| ScoopError::Storlet(format!("unknown column '{column}'")))?;
        let has_header = ctx.params.get("header").map(String::as_str) == Some("1");
        let metrics = ctx.metrics.clone();

        // Aggregation cannot stream incrementally — it consumes everything
        // and yields one record.
        let mut input_opt = Some(input);
        Ok(Box::new(std::iter::from_fn(move || {
            let input = input_opt.take()?;
            let run = || -> Result<Bytes> {
                let mut splitter = RecordSplitter::new();
                let mut skip = has_header;
                let (mut count, mut sum) = (0u64, 0f64);
                let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
                let mut consume = |record: &[u8]| {
                    if skip {
                        skip = false;
                        return;
                    }
                    metrics.records_in.fetch_add(1, Ordering::Relaxed);
                    let fields = parse_fields(record);
                    if let Some(v) = fields
                        .get(col_idx)
                        .and_then(|f| f.parse::<f64>().ok())
                    {
                        count += 1;
                        sum += v;
                        min = min.min(v);
                        max = max.max(v);
                    }
                };
                for chunk in input {
                    let chunk = chunk?;
                    metrics.bytes_in.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                    splitter.push(&chunk, &mut consume)?;
                }
                splitter.finish(&mut consume);
                // Zero parsed rows: an explicit empty-aggregate row. min/max/
                // mean have no value — emitting the raw accumulators would
                // ship `inf`/`-inf`/NaN and fabricating `0` would claim a
                // value that never occurred, so those fields stay empty
                // (NULL), exactly how SQL MIN/MAX/AVG over no rows behave.
                let out = if count == 0 {
                    format!("count,sum,min,max,mean\n{count},{sum},,,\n")
                } else {
                    let mean = sum / count as f64;
                    format!("count,sum,min,max,mean\n{count},{sum},{min},{max},{mean}\n")
                };
                metrics.bytes_out.fetch_add(out.len() as u64, Ordering::Relaxed);
                metrics.records_out.fetch_add(1, Ordering::Relaxed);
                Ok(Bytes::from(out))
            };
            Some(run())
        })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_common::stream;
    use std::collections::HashMap;

    fn run(data: &'static [u8]) -> String {
        let mut params = HashMap::new();
        params.insert("column".to_string(), "index".to_string());
        params.insert("schema".to_string(), "vid,index".to_string());
        params.insert("header".to_string(), "1".to_string());
        let out = AggregateStorlet
            .invoke(
                stream::chunked(Bytes::from_static(data), 8),
                InvocationContext::new(params),
            )
            .unwrap();
        String::from_utf8(stream::collect(out).unwrap().to_vec()).unwrap()
    }

    #[test]
    fn aggregates_numeric_column() {
        let data = b"vid,index\nm1,10\nm2,30\nm3,20\n";
        let out = run(data);
        assert_eq!(out, "count,sum,min,max,mean\n3,60,10,30,20\n");
    }

    #[test]
    fn skips_non_numeric_and_handles_empty() {
        let data = b"vid,index\nm1,x\nm2,\n";
        let out = run(data);
        assert_eq!(out, "count,sum,min,max,mean\n0,0,,,\n");
    }

    #[test]
    fn zero_matching_rows_emit_no_inf_or_nan() {
        // Regression: the unguarded accumulators are ±inf/NaN when no field
        // parses; none of that may ever reach the wire.
        for data in [&b"vid,index\n"[..], &b"vid,index\nm1,notanumber\n"[..]] {
            let out = run(data);
            assert!(!out.contains("inf"), "{out}");
            assert!(!out.to_ascii_lowercase().contains("nan"), "{out}");
            assert!(out.starts_with("count,sum,min,max,mean\n0,"), "{out}");
        }
    }

    #[test]
    fn unknown_column_errors() {
        let mut params = HashMap::new();
        params.insert("column".to_string(), "ghost".to_string());
        params.insert("schema".to_string(), "a,b".to_string());
        assert!(AggregateStorlet
            .invoke(stream::empty(), InvocationContext::new(params))
            .is_err());
    }
}
