//! PUT-path zone-map indexing storlet.
//!
//! The paper puts computation where the data lands; this storlet runs on the
//! ingestion path and computes the per-block statistics that later let GET
//! pushdown skip whole byte ranges of an object (`scoop_storlets::planner`).
//! It is a pure passthrough for the object bytes — its only product is
//! metadata: a [`scoop_common::zonestats::ObjectStats`] serialized into
//! `x-object-meta-scoop-stats-*` chunks and published through the invocation
//! context's `extra_meta` out-channel, which the middleware merges into the
//! upstream PUT.

use crate::api::{InvocationContext, Storlet};
use bytes::Bytes;
use scoop_common::hash::fingerprint_hex;
use scoop_common::zonestats::{ObjectStats, StatsBuilder};
use scoop_common::{ByteStream, Result};
use scoop_csv::record::parse_fields;
use std::sync::atomic::Ordering;

/// Nominal block size when the PUT does not specify one. Small enough that a
/// selective predicate skips most of a multi-megabyte object, large enough
/// that the per-block metadata stays a rounding error.
pub const DEFAULT_BLOCK_BYTES: u64 = 64 * 1024;

/// Parameters: `schema` (comma-separated column names, required), optional
/// `header` ("1" when the object starts with a header row), optional `block`
/// (nominal block size in bytes).
pub struct ZoneIndexStorlet;

impl Storlet for ZoneIndexStorlet {
    fn name(&self) -> &str {
        "zoneindex"
    }

    fn invoke(&self, input: ByteStream, ctx: InvocationContext) -> Result<ByteStream> {
        let columns: Vec<String> = ctx
            .require("schema")?
            .split(',')
            .map(str::to_string)
            .collect();
        let has_header = ctx.params.get("header").map(String::as_str) == Some("1");
        let block_bytes = ctx
            .params
            .get("block")
            .and_then(|b| b.parse::<u64>().ok())
            .unwrap_or(DEFAULT_BLOCK_BYTES);
        let metrics = ctx.metrics.clone();
        let extra_meta = ctx.extra_meta.clone();

        // Indexing needs exact byte offsets for every record, so it consumes
        // the whole object before emitting it unchanged. That is the shape of
        // the PUT path anyway: the middleware collects the transformed body
        // before storing it.
        let mut input_opt = Some(input);
        Ok(Box::new(std::iter::from_fn(move || {
            let input = input_opt.take()?;
            let columns = columns.clone();
            let run = || -> Result<Bytes> {
                let mut data: Vec<u8> = Vec::new();
                for chunk in input {
                    let chunk = chunk?;
                    metrics.bytes_in.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                    data.extend_from_slice(&chunk);
                }
                let mut builder = StatsBuilder::new(columns, has_header, block_bytes);
                let mut header_pending = has_header;
                let mut pos = 0usize;
                while pos < data.len() {
                    let (content_end, next) = record_span(&data, pos);
                    let len = next.saturating_sub(pos) as u64;
                    let raw = data.get(pos..content_end).unwrap_or_default();
                    let content = raw.strip_suffix(b"\r").unwrap_or(raw);
                    // Blank lines are not records (matching RecordSplitter),
                    // and the header row carries no data — both only move the
                    // byte cursor.
                    if content.is_empty() || std::mem::take(&mut header_pending) {
                        builder.skip_bytes(len);
                    } else {
                        metrics.records_in.fetch_add(1, Ordering::Relaxed);
                        metrics.records_out.fetch_add(1, Ordering::Relaxed);
                        let parsed = parse_fields(content);
                        let fields: Vec<&str> = parsed.iter().map(|f| f.as_ref()).collect();
                        builder.record(&fields, len);
                    }
                    pos = next;
                }
                // The etag stamps which bytes the stats describe. zoneindex is
                // a passthrough, so when it runs last in the PUT pipeline this
                // fingerprint equals the stored object's etag; any other
                // arrangement yields a mismatch and the planner falls back.
                let stats = builder.finish(fingerprint_hex(&data));
                extra_meta.lock().extend(stats.to_metadata());
                metrics.bytes_out.fetch_add(data.len() as u64, Ordering::Relaxed);
                Ok(Bytes::from(data))
            };
            Some(run())
        })))
    }
}

/// Find the current record's span starting at `start`: returns
/// `(content_end, next_start)` where `content_end` excludes the terminating
/// newline and `next_start` is one past it. Newlines inside double-quoted
/// fields do not terminate a record (same boundary rule as
/// [`scoop_csv::record::RecordSplitter`]).
fn record_span(data: &[u8], start: usize) -> (usize, usize) {
    let mut in_quotes = false;
    let mut i = start;
    while let Some(&b) = data.get(i) {
        match b {
            b'"' => in_quotes = !in_quotes,
            b'\n' if !in_quotes => return (i, i.saturating_add(1)),
            _ => {}
        }
        i = i.saturating_add(1);
    }
    (data.len(), data.len())
}

/// Decode the stats a context's `extra_meta` channel accumulated (test and
/// middleware helper).
pub fn stats_from_context(ctx: &InvocationContext) -> Result<Option<ObjectStats>> {
    let pairs = ctx.extra_meta.lock().clone();
    ObjectStats::from_metadata(pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_common::stream;
    use std::collections::HashMap;

    const DATA: &[u8] = b"vid,index,city\nm1,100.5,Rotterdam\nm2,,Paris\nm3,50,Utrecht\nm4,75,Delft\n";

    fn run(data: &'static [u8], block: &str) -> (String, InvocationContext) {
        let mut params = HashMap::new();
        params.insert("schema".to_string(), "vid,index,city".to_string());
        params.insert("header".to_string(), "1".to_string());
        params.insert("block".to_string(), block.to_string());
        let ctx = InvocationContext::new(params);
        let out = ZoneIndexStorlet
            .invoke(stream::chunked(Bytes::from_static(data), 7), ctx.clone())
            .unwrap();
        let out = String::from_utf8(stream::collect(out).unwrap().to_vec()).unwrap();
        (out, ctx)
    }

    #[test]
    fn passthrough_and_stats_published() {
        let (out, ctx) = run(DATA, "24");
        assert_eq!(out.as_bytes(), DATA, "zoneindex must not alter the object");
        let stats = stats_from_context(&ctx).unwrap().expect("stats published");
        assert_eq!(stats.etag, fingerprint_hex(DATA));
        assert!(stats.has_header);
        assert_eq!(stats.columns, vec!["vid", "index", "city"]);
        assert_eq!(stats.covered_len(), DATA.len() as u64);
        assert_eq!(stats.blocks.iter().map(|b| b.rows).sum::<u64>(), 4);
        assert!(stats.blocks.len() > 1, "small block size must cut blocks");
        // Block boundaries are record boundaries: each interior boundary
        // byte is preceded by a newline.
        for b in &stats.blocks[1..] {
            assert_eq!(DATA[b.start as usize - 1], b'\n');
        }
    }

    #[test]
    fn quoted_newlines_stay_in_one_record() {
        let data: &[u8] = b"a,b\n\"x\ny\",1\n\"p\",2\n";
        let mut params = HashMap::new();
        params.insert("schema".to_string(), "a,b".to_string());
        params.insert("header".to_string(), "1".to_string());
        params.insert("block".to_string(), "4".to_string());
        let ctx = InvocationContext::new(params);
        let out = ZoneIndexStorlet
            .invoke(stream::once(Bytes::from_static(data)), ctx.clone())
            .unwrap();
        stream::collect(out).unwrap();
        let stats = stats_from_context(&ctx).unwrap().unwrap();
        assert_eq!(stats.blocks.iter().map(|b| b.rows).sum::<u64>(), 2);
        // The quoted-newline record is atomic: no block boundary lands
        // inside it (bytes 4..12).
        for b in &stats.blocks[1..] {
            assert!(!(5..12).contains(&(b.start as usize)), "split inside quoted record");
        }
    }

    #[test]
    fn missing_schema_errors() {
        let ctx = InvocationContext::new(HashMap::new());
        assert!(ZoneIndexStorlet.invoke(stream::empty(), ctx).is_err());
    }
}
