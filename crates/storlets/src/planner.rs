//! Block-range planner: turns per-block zone maps into a skip plan.
//!
//! Given an object's [`ObjectStats`] (built at PUT time by the `zoneindex`
//! storlet) and a pushdown [`Predicate`], the planner answers, per
//! record-aligned block, "can any record in this block match?" — three-valued
//! logic collapsed conservatively: only a definite *no* prunes a block, so an
//! unknown column, an absent statistic or a `NOT` never makes a query wrong,
//! only slower. Surviving adjacent blocks are merged into coalesced byte
//! ranges so the engine issues a few bounded ranged GETs instead of one
//! full-object scan.
//!
//! ## Soundness inventory
//!
//! The pruning rules lean on exactly how [`scoop_csv::filter`] evaluates
//! predicates and how [`scoop_common::zonestats`] builds stats:
//!
//! * NULL (empty field): every comparison and string match is false, so
//!   blocks with no non-empty value (`!has_value`) cannot satisfy them.
//! * Numeric literals compare only against fields that parse as `f64`; the
//!   numeric `(min, max)` covers all such fields (NaN excluded — NaN
//!   comparisons are always false).
//! * `str_min` may be a truncated *prefix* of the true minimum — still a
//!   lower bound, usable for `< / <= / =` pruning. `str_max`, when present,
//!   is exact (overlong maxima are dropped at build time, never truncated).
//! * `NOT` is two-valued in the filter; the planner does not push pruning
//!   through it and returns "may match".

use scoop_common::zonestats::{bloom_mask, BlockStats, ColumnStats, ObjectStats};
use scoop_csv::{Predicate, Value};

/// The outcome of planning one GET against an object's zone maps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockPlan {
    /// Surviving coalesced `[start, end)` byte ranges, in object order.
    pub ranges: Vec<(u64, u64)>,
    /// Blocks that must still be scanned.
    pub blocks_scanned: u64,
    /// Blocks eliminated (zone-map pruned or outside the request window).
    pub blocks_pruned: u64,
    /// Object bytes the surviving ranges avoid reading.
    pub bytes_skipped: u64,
}

/// Plan the blocks a ranged pushdown GET must scan.
///
/// `start`/`end` are the request's logical byte range (HTTP semantics:
/// `end` inclusive, `None` = to EOF). Record ownership follows the Hadoop
/// split rule the CSV filter implements: the range owns records starting at
/// offsets `p` with `start < p <= end + 1`, plus offset 0 when `start == 0`.
/// A block survives when it contains at least one owned record start *and*
/// the predicate may match it.
pub fn plan_ranges(
    stats: &ObjectStats,
    pred: Option<&Predicate>,
    start: u64,
    end: Option<u64>,
) -> BlockPlan {
    // Owned record starts form the interval [lo, hi].
    let lo = if start == 0 { 0 } else { start.saturating_add(1) };
    let hi = end.map(|e| e.saturating_add(1));
    let mut plan = BlockPlan::default();
    for b in &stats.blocks {
        let in_window = b.end > lo && hi.is_none_or(|h| b.start <= h);
        let survives = in_window && pred.is_none_or(|p| block_may_match(p, stats, b));
        if survives {
            plan.blocks_scanned += 1;
            match plan.ranges.last_mut() {
                Some(last) if last.1 == b.start => last.1 = b.end,
                _ => plan.ranges.push((b.start, b.end)),
            }
        } else {
            plan.blocks_pruned += 1;
            plan.bytes_skipped += b.end.saturating_sub(b.start);
        }
    }
    plan
}

/// Conservative test: can any record in `block` satisfy `pred`?
///
/// `true` means "maybe" — only provably-impossible blocks return `false`.
pub fn block_may_match(pred: &Predicate, stats: &ObjectStats, block: &BlockStats) -> bool {
    // Resolve a column name the same way the filter does (case-insensitive);
    // unknown columns yield no evidence.
    let col = |name: &str| -> Option<&ColumnStats> {
        stats
            .columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
            .and_then(|i| block.columns.get(i))
    };
    match pred {
        Predicate::Eq(c, v) => col(c).is_none_or(|s| may_eq(s, v)),
        Predicate::Ne(c, v) => col(c).is_none_or(|s| may_ne(s, v)),
        Predicate::Lt(c, v) => col(c).is_none_or(|s| may_cmp(s, v, Cmp::Lt)),
        Predicate::Le(c, v) => col(c).is_none_or(|s| may_cmp(s, v, Cmp::Le)),
        Predicate::Gt(c, v) => col(c).is_none_or(|s| may_cmp(s, v, Cmp::Gt)),
        Predicate::Ge(c, v) => col(c).is_none_or(|s| may_cmp(s, v, Cmp::Ge)),
        Predicate::Like(c, pat) => col(c).is_none_or(|s| {
            // A LIKE match must begin with the pattern's literal prefix.
            let prefix: String = pat.chars().take_while(|&ch| ch != '%' && ch != '_').collect();
            may_start_with(s, &prefix)
        }),
        Predicate::StartsWith(c, p) => col(c).is_none_or(|s| may_start_with(s, p)),
        Predicate::EndsWith(c, _) | Predicate::Contains(c, _) => {
            col(c).is_none_or(|s| s.has_value)
        }
        Predicate::In(c, vs) => col(c).is_none_or(|s| vs.iter().any(|v| may_eq(s, v))),
        Predicate::IsNull(c) => col(c).is_none_or(|s| s.has_null),
        Predicate::IsNotNull(c) => col(c).is_none_or(|s| s.has_value),
        Predicate::And(a, b) => {
            block_may_match(a, stats, block) && block_may_match(b, stats, block)
        }
        Predicate::Or(a, b) => {
            block_may_match(a, stats, block) || block_may_match(b, stats, block)
        }
        // The filter's NOT is two-valued (NULL rows pass NOT); inverting a
        // block-level "maybe" is not sound either way, so never prune.
        Predicate::Not(_) => true,
    }
}

enum Cmp {
    Lt,
    Le,
    Gt,
    Ge,
}

/// Can `field = v` hold for some field summarized by `s`?
fn may_eq(s: &ColumnStats, v: &Value) -> bool {
    match v {
        // `field = NULL` is always false in the filter.
        Value::Null => false,
        Value::Int(_) | Value::Float(_) => match (v.as_f64(), s.num) {
            // No field in the block parses as a number: = can't hold.
            (Some(x), Some((lo, hi))) => x >= lo && x <= hi,
            (Some(_), None) => false,
            (None, _) => true,
        },
        Value::Str(lit) => {
            let lit = lit.as_str();
            if !s.has_value {
                return false;
            }
            // stored str_min <= true minimum (prefix truncation only lowers
            // it), so anything below it is absent.
            if s.str_min.as_deref().is_some_and(|m| lit < m) {
                return false;
            }
            // str_max, when stored, is the exact maximum.
            if s.str_max.as_deref().is_some_and(|m| lit > m) {
                return false;
            }
            if let Some(bloom) = s.bloom {
                let mask = bloom_mask(lit);
                if bloom & mask != mask {
                    return false;
                }
            }
            true
        }
    }
}

/// Can `field <> v` hold for some field summarized by `s`?
fn may_ne(s: &ColumnStats, v: &Value) -> bool {
    match v {
        Value::Null => false,
        Value::Int(_) | Value::Float(_) => match (v.as_f64(), s.num) {
            // Some numeric field differs from x unless the whole block is
            // pinned to exactly x.
            (Some(x), Some((lo, hi))) => !(lo == x && hi == x),
            (Some(_), None) => false,
            (None, _) => true,
        },
        Value::Str(lit) => {
            let lit = lit.as_str();
            if !s.has_value {
                return false;
            }
            // All values equal `lit` only when both exact bounds pin to it
            // (an un-truncated min: equality to the bound proves it was
            // short enough to store verbatim).
            !(s.str_min.as_deref() == Some(lit) && s.str_max.as_deref() == Some(lit))
        }
    }
}

/// Can `field <op> v` hold for some field summarized by `s`?
fn may_cmp(s: &ColumnStats, v: &Value, op: Cmp) -> bool {
    match v {
        Value::Null => false,
        Value::Int(_) | Value::Float(_) => match (v.as_f64(), s.num) {
            (Some(x), Some((lo, hi))) => match op {
                Cmp::Lt => lo < x,
                Cmp::Le => lo <= x,
                Cmp::Gt => hi > x,
                Cmp::Ge => hi >= x,
            },
            (Some(_), None) => false,
            (None, _) => true,
        },
        Value::Str(lit) => {
            let lit = lit.as_str();
            if !s.has_value {
                return false;
            }
            match op {
                // Needs a field below `lit`; stored min bounds all fields
                // from below.
                Cmp::Lt => s.str_min.as_deref().is_none_or(|m| m < lit),
                Cmp::Le => s.str_min.as_deref().is_none_or(|m| m <= lit),
                // Needs a field above `lit`; only an exact max disproves it.
                Cmp::Gt => s.str_max.as_deref().is_none_or(|m| m > lit),
                Cmp::Ge => s.str_max.as_deref().is_none_or(|m| m >= lit),
            }
        }
    }
}

/// Can some field summarized by `s` start with `prefix`?
fn may_start_with(s: &ColumnStats, prefix: &str) -> bool {
    if !s.has_value {
        return false;
    }
    if prefix.is_empty() {
        return true;
    }
    // Fields with this prefix live in [prefix, successor(prefix)).
    // An exact max below the prefix rules them out...
    if s.str_max.as_deref().is_some_and(|m| m < prefix) {
        return false;
    }
    // ...and a minimum already past the prefix's extension range does too:
    // every field is >= str_min, and str_min > prefix without carrying it
    // as a prefix means str_min sorts after every `prefix*` string.
    if s
        .str_min
        .as_deref()
        .is_some_and(|m| m > prefix && !m.starts_with(prefix))
    {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_common::zonestats::StatsBuilder;
    use scoop_csv::Value;

    /// Three blocks over a clustered `index` column: [0,100), [100,200),
    /// [200,300) values; `city` cycles per block.
    fn stats() -> ObjectStats {
        let mut b = StatsBuilder::new(
            vec!["vid".into(), "index".into(), "city".into()],
            false,
            2, // tiny: cut after every record
        );
        b.record(&["m1", "50", "Paris"], 10);
        b.record(&["m2", "150", "Rotterdam"], 10);
        b.record(&["m3", "250", ""], 10);
        b.finish("e".into())
    }

    fn pred_gt(col: &str, v: f64) -> Predicate {
        Predicate::Gt(col.into(), Value::Float(v))
    }

    #[test]
    fn numeric_pruning_keeps_only_covering_blocks() {
        let s = stats();
        assert_eq!(s.blocks.len(), 3);
        let plan = plan_ranges(&s, Some(&pred_gt("index", 200.0)), 0, None);
        assert_eq!(plan.ranges, vec![(20, 30)]);
        assert_eq!(plan.blocks_scanned, 1);
        assert_eq!(plan.blocks_pruned, 2);
        assert_eq!(plan.bytes_skipped, 20);

        // An unselective predicate keeps (and coalesces) everything.
        let plan = plan_ranges(&s, Some(&pred_gt("index", 0.0)), 0, None);
        assert_eq!(plan.ranges, vec![(0, 30)]);
        assert_eq!(plan.bytes_skipped, 0);
    }

    #[test]
    fn string_eq_uses_bounds_and_bloom() {
        let s = stats();
        let eq = |lit: &str| {
            Predicate::Eq("city".into(), Value::Str(lit.into()))
        };
        let plan = plan_ranges(&s, Some(&eq("Rotterdam")), 0, None);
        assert_eq!(plan.ranges, vec![(10, 20)]);
        // A value nobody stored is bloom-pruned everywhere.
        let plan = plan_ranges(&s, Some(&eq("Ghent")), 0, None);
        assert!(plan.ranges.is_empty());
        // NULL city only in block 3.
        let plan = plan_ranges(&s, Some(&Predicate::IsNull("city".into())), 0, None);
        assert_eq!(plan.ranges, vec![(20, 30)]);
    }

    #[test]
    fn unknown_column_and_not_never_prune() {
        let s = stats();
        let plan = plan_ranges(&s, Some(&pred_gt("ghost", 1e9)), 0, None);
        assert_eq!(plan.ranges, vec![(0, 30)]);
        let not = Predicate::Not(Box::new(pred_gt("index", 200.0)));
        let plan = plan_ranges(&s, Some(&not), 0, None);
        assert_eq!(plan.ranges, vec![(0, 30)]);
    }

    #[test]
    fn window_clips_blocks_by_record_ownership() {
        let s = stats();
        // Range [10, 19]: owns record starts in (10, 20] — block 2 only...
        // plus block 3's start offset 20 == end+1 (the split tail rule).
        let plan = plan_ranges(&s, None, 10, Some(19));
        assert_eq!(plan.ranges, vec![(10, 30)]);
        // Range [0, 9] owns starts [0, 10]: blocks 1 and 2.
        let plan = plan_ranges(&s, None, 0, Some(9));
        assert_eq!(plan.ranges, vec![(0, 20)]);
        // A mid-block start owns nothing before the next record boundary.
        let plan = plan_ranges(&s, None, 25, None);
        assert_eq!(plan.ranges, vec![(20, 30)]);
        // Saturation: end = u64::MAX must not overflow.
        let plan = plan_ranges(&s, None, 0, Some(u64::MAX));
        assert_eq!(plan.ranges, vec![(0, 30)]);
    }

    #[test]
    fn truncated_min_and_dropped_max_stay_sound() {
        let mut b = StatsBuilder::new(vec!["s".into()], false, u64::MAX);
        let long = "b".repeat(40); // overlong: max dropped, min truncated
        b.record(&[long.as_str()], 41);
        b.record(&["bb"], 3);
        let s = b.finish("e".into());
        let block = &s.blocks[0];
        // Gt above any stored value: max is unknown, must NOT prune.
        let gt = Predicate::Gt("s".into(), Value::Str("zzzz".into()));
        assert!(block_may_match(&gt, &s, block));
        // Lt below the truncated min: sound to prune.
        let lt = Predicate::Lt("s".into(), Value::Str("a".into()));
        assert!(!block_may_match(&lt, &s, block));
        // Eq below min prunes; Eq above (unknown max) must not.
        let eq_lo = Predicate::Eq("s".into(), Value::Str("a".into()));
        assert!(!block_may_match(&eq_lo, &s, block));
    }

    #[test]
    fn like_prefix_and_startswith() {
        let s = stats();
        let like = Predicate::Like("city".into(), "Rot%".into());
        let plan = plan_ranges(&s, Some(&like), 0, None);
        assert_eq!(plan.ranges, vec![(10, 20)]);
        // A leading-% pattern gives no prefix evidence: only the NULL-only
        // block is pruned (string matches need a non-empty field).
        let any = Predicate::Like("city".into(), "%dam".into());
        let plan = plan_ranges(&s, Some(&any), 0, None);
        assert_eq!(plan.ranges, vec![(0, 20)]);
    }

    #[test]
    fn and_or_compose() {
        let s = stats();
        let and = Predicate::And(
            Box::new(pred_gt("index", 100.0)),
            Box::new(Predicate::Eq("city".into(), Value::Str("Paris".into()))),
        );
        // Paris only in block 1, index>100 only in 2..3: nothing survives.
        assert!(plan_ranges(&s, Some(&and), 0, None).ranges.is_empty());
        let or = Predicate::Or(
            Box::new(pred_gt("index", 200.0)),
            Box::new(Predicate::Eq("city".into(), Value::Str("Paris".into()))),
        );
        let plan = plan_ranges(&s, Some(&or), 0, None);
        assert_eq!(plan.ranges, vec![(0, 10), (20, 30)]);
    }
}
