//! The storlet programming interface.
//!
//! Mirrors the paper's `IStorlet` Java interface:
//!
//! ```java
//! public void invoke(ArrayList<StorletInputStream> iStream,
//!                    ArrayList<StorletOutputStream> oStream,
//!                    Map<String, String> parameters,
//!                    StorletLogger logger) throws StorletException
//! ```
//!
//! In Rust the natural shape is a stream transformer: `invoke` receives the
//! request's input [`ByteStream`] plus an [`InvocationContext`] (parameters,
//! byte-range coordinates, logger, metrics) and returns the transformed output
//! stream. Laziness matters: returning a stream lets a byte-range invocation
//! stop reading the object early, which is how Scoop avoids transferring the
//! full object "from the object node to one of the proxies".

use parking_lot::Mutex;
use scoop_common::{ByteStream, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Collects log lines from a storlet run (the `StorletLogger` argument).
#[derive(Debug, Default)]
pub struct StorletLogger {
    entries: Mutex<Vec<String>>,
}

impl StorletLogger {
    /// Create an empty logger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a log line.
    pub fn log(&self, line: impl Into<String>) {
        self.entries.lock().push(line.into());
    }

    /// Snapshot of logged lines.
    pub fn entries(&self) -> Vec<String> {
        self.entries.lock().clone()
    }
}

/// Live counters for one invocation; the engine aggregates these per storlet.
/// Updated *as the output stream is consumed*, since storlets are lazy.
#[derive(Debug, Default)]
pub struct InvocationMetrics {
    /// Bytes pulled from the input stream.
    pub bytes_in: AtomicU64,
    /// Bytes yielded on the output stream.
    pub bytes_out: AtomicU64,
    /// Records examined (storlets that are record-oriented).
    pub records_in: AtomicU64,
    /// Records emitted.
    pub records_out: AtomicU64,
    /// Nanoseconds of compute spent inside the storlet.
    pub busy_ns: AtomicU64,
}

impl InvocationMetrics {
    /// Add to a counter.
    pub fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Fraction of input bytes discarded so far.
    pub fn data_selectivity(&self) -> f64 {
        let bin = self.bytes_in.load(Ordering::Relaxed);
        if bin == 0 {
            0.0
        } else {
            1.0 - self.bytes_out.load(Ordering::Relaxed) as f64 / bin as f64
        }
    }
}

/// Everything a storlet invocation receives besides the input stream.
#[derive(Clone)]
pub struct InvocationContext {
    /// Invocation parameters (from `X-Storlet-Parameters`).
    pub params: HashMap<String, String>,
    /// Absolute byte offset of the first input byte within the object.
    pub range_start: u64,
    /// Logical end of the requested range (inclusive), if ranged; the storlet
    /// must apply record-alignment semantics against it.
    pub range_end: Option<u64>,
    /// True when the caller guarantees the input stream already begins at a
    /// record boundary it *owns* (the block-range planner fetches ranges cut
    /// on record boundaries). Record-oriented storlets must then skip the
    /// usual discard-through-first-newline alignment, which would throw the
    /// first record away.
    pub pre_aligned: bool,
    /// Shared logger.
    pub logger: Arc<StorletLogger>,
    /// Shared metrics sink.
    pub metrics: Arc<InvocationMetrics>,
    /// Out-channel for metadata a storlet wants attached to the stored
    /// object (PUT-side indexing storlets publish their stats here; the
    /// middleware merges the pairs into the upstream PUT's headers).
    pub extra_meta: Arc<Mutex<Vec<(String, String)>>>,
}

impl InvocationContext {
    /// A context with the given parameters and no range.
    pub fn new(params: HashMap<String, String>) -> Self {
        InvocationContext {
            params,
            range_start: 0,
            range_end: None,
            pre_aligned: false,
            logger: Arc::new(StorletLogger::new()),
            metrics: Arc::new(InvocationMetrics::default()),
            extra_meta: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Fetch a required parameter.
    pub fn require(&self, key: &str) -> Result<&str> {
        self.params
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| {
                scoop_common::ScoopError::Storlet(format!("missing parameter '{key}'"))
            })
    }
}

/// A deployable storage-side computation.
pub trait Storlet: Send + Sync {
    /// Registered name, referenced by `X-Run-Storlet`.
    fn name(&self) -> &str;

    /// Transform the request data stream.
    fn invoke(&self, input: ByteStream, ctx: InvocationContext) -> Result<ByteStream>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logger_collects() {
        let l = StorletLogger::new();
        l.log("started");
        l.log(format!("records={}", 3));
        assert_eq!(l.entries(), vec!["started", "records=3"]);
    }

    #[test]
    fn metrics_selectivity() {
        let m = InvocationMetrics::default();
        assert_eq!(m.data_selectivity(), 0.0);
        m.add(&m.bytes_in, 1000);
        m.add(&m.bytes_out, 100);
        assert!((m.data_selectivity() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn context_param_access() {
        let mut p = HashMap::new();
        p.insert("spec".to_string(), "hdr=1;cols=*;pred=".to_string());
        let ctx = InvocationContext::new(p);
        assert!(ctx.require("spec").is_ok());
        assert!(ctx.require("missing").is_err());
        assert_eq!(ctx.range_start, 0);
        assert_eq!(ctx.range_end, None);
    }
}
