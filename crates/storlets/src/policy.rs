//! Enforcement policies: per-tenant/container storlet rules and tiering.
//!
//! The paper manages pushdown filters "via simple policies" on tenants or
//! containers, and its discussion section sketches tier-aware control: "under
//! peak workloads ... only 'gold' tenants enjoy the pushdown service, whereas
//! 'bronze' tenants will ingest data in the traditional way". Both are
//! implemented here and consulted by the storlet middleware at the proxy.

use parking_lot::RwLock;
use scoop_objectstore::request::Method;
use std::collections::HashMap;

/// Service tier of a tenant (account).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tier {
    /// Pushdown allowed (default).
    #[default]
    Gold,
    /// Pushdown stripped: requests ingest data the traditional way.
    Bronze,
}

/// A rule that auto-applies a storlet pipeline to matching requests that do
/// not explicitly request one.
#[derive(Debug, Clone)]
pub struct PolicyRule {
    /// Account the rule applies to.
    pub account: String,
    /// Restrict to one container (`None` = all containers of the account).
    pub container: Option<String>,
    /// Which method triggers the rule (GET pushdown or PUT-path ETL).
    pub method: Method,
    /// Comma-separated storlet pipeline (as in `X-Run-Storlet`).
    pub storlets: String,
    /// Invocation parameters.
    pub params: HashMap<String, String>,
}

/// Shared policy state.
#[derive(Debug, Default)]
pub struct PolicyStore {
    rules: RwLock<Vec<PolicyRule>>,
    tiers: RwLock<HashMap<String, Tier>>,
}

impl PolicyStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an auto-apply rule.
    pub fn add_rule(&self, rule: PolicyRule) {
        self.rules.write().push(rule);
    }

    /// Remove all rules for an account (returns how many were removed).
    pub fn clear_rules(&self, account: &str) -> usize {
        let mut rules = self.rules.write();
        let before = rules.len();
        rules.retain(|r| r.account != account);
        before - rules.len()
    }

    /// First rule matching the request coordinates.
    pub fn matching_rule(
        &self,
        account: &str,
        container: &str,
        method: Method,
    ) -> Option<PolicyRule> {
        self.rules
            .read()
            .iter()
            .find(|r| {
                r.account == account
                    && r.method == method
                    && r.container.as_deref().is_none_or(|c| c == container)
            })
            .cloned()
    }

    /// Set a tenant's tier.
    pub fn set_tier(&self, account: &str, tier: Tier) {
        self.tiers.write().insert(account.to_string(), tier);
    }

    /// Tenant tier (Gold when unset).
    pub fn tier_of(&self, account: &str) -> Tier {
        self.tiers.read().get(account).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_matching_respects_scope() {
        let store = PolicyStore::new();
        store.add_rule(PolicyRule {
            account: "gp".into(),
            container: Some("meters".into()),
            method: Method::Put,
            storlets: "etlcleanse".into(),
            params: HashMap::new(),
        });
        store.add_rule(PolicyRule {
            account: "gp".into(),
            container: None,
            method: Method::Get,
            storlets: "linegrep".into(),
            params: HashMap::new(),
        });
        assert!(store.matching_rule("gp", "meters", Method::Put).is_some());
        assert!(store.matching_rule("gp", "other", Method::Put).is_none());
        assert!(store.matching_rule("gp", "anything", Method::Get).is_some());
        assert!(store.matching_rule("other", "meters", Method::Put).is_none());
        assert_eq!(store.clear_rules("gp"), 2);
        assert!(store.matching_rule("gp", "meters", Method::Put).is_none());
    }

    #[test]
    fn tiers_default_gold() {
        let store = PolicyStore::new();
        assert_eq!(store.tier_of("anyone"), Tier::Gold);
        store.set_tier("cheap", Tier::Bronze);
        assert_eq!(store.tier_of("cheap"), Tier::Bronze);
        store.set_tier("cheap", Tier::Gold);
        assert_eq!(store.tier_of("cheap"), Tier::Gold);
    }
}
