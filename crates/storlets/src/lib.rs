//! The active-storage layer: Scoop's pushdown-filter framework.
//!
//! This crate is the Rust equivalent of the OpenStack Storlets framework the
//! paper extended: sandboxed computations ("storlets") that run on object
//! request streams inside the store, invoked via request metadata, with
//! *pipelining* and *staging control* (proxy vs object node) — the two
//! capabilities the paper contributed — plus byte-range execution at storage
//! nodes, which "was fundamental to match the natural operation of Spark
//! tasks".
//!
//! * [`api`] — the [`api::Storlet`] trait (the `IStorlet` interface from the
//!   paper's code snippet), invocation context, logger and metrics.
//! * [`engine`] — the registry + execution engine with sandbox-style resource
//!   accounting.
//! * [`middleware`] — the WSGI middleware that intercepts requests carrying
//!   `X-Run-Storlet` metadata on either tier.
//! * [`filters`] — the storlets shipped with Scoop: the CSV projection/
//!   selection filter (the paper's `CSVStorlet`), a line-grep filter, an RLE
//!   compressor, a storage-side aggregator, and the PUT-path ETL cleanser.
//! * [`policy`] — per-tenant/container enforcement policies, including the
//!   gold/bronze tiering sketched in the paper's discussion section.
//! * [`adaptive`] — the Section VII control process (the Crystal sketch):
//!   demote/restore tenants' pushdown based on storage load and an online
//!   selectivity model, plus admission limits for overload shedding.
//!
//! Under overload the engine sheds pushdown GETs with `503` and the
//! [`middleware::headers::DEGRADED`] marker; clients transparently fall
//! back to a plain ranged GET and filter locally.

pub mod adaptive;
pub mod api;
pub mod engine;
pub mod filters;
pub mod middleware;
pub mod planner;
pub mod policy;

pub use api::{InvocationContext, Storlet, StorletLogger};
pub use engine::{AdmissionPermit, EngineStats, StorletEngine};
pub use middleware::{headers, StorletMiddleware};
pub use adaptive::{AdaptiveController, AdaptivePolicy};
pub use policy::{PolicyStore, Tier};
