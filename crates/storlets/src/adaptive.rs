//! Adaptive pushdown execution — the Crystal sketch of Section VII.
//!
//! "Under peak workloads and CPU/parallelism constraints at the object
//! store, an administrator may decide that only 'gold' tenants enjoy the
//! pushdown service ... the effectiveness of the filter could be modeled
//! —e.g., in the SQL pushdown filter by approximating the data selectivity—
//! and contribute to the decision ... the system should dynamically take
//! these decisions based on real-time monitoring information and
//! transparently to the administrator."
//!
//! [`AdaptiveController`] is that control process: fed a storage-load signal
//! and the storlet engine's own per-tenant effectiveness observations, it
//! flips tenants between Gold and Bronze in the [`PolicyStore`] — which the
//! storlet middleware already honours transparently (bronze requests fall
//! back to plain ingestion, and the connector filters client-side).

use crate::engine::StorletEngine;
use crate::policy::{PolicyStore, Tier};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Controller thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivePolicy {
    /// Storage CPU load (0–1) above which pushdown is shed from
    /// low-priority tenants.
    pub max_storage_load: f64,
    /// Minimum observed data selectivity for pushdown to be worthwhile: a
    /// filter that discards less than this fraction consumes storage CPU
    /// without offloading the network.
    pub min_selectivity: f64,
    /// Observations required before the selectivity gate activates.
    pub min_observations: u64,
    /// Maximum concurrently executing pushdown requests per engine;
    /// `None` disables admission control entirely.
    pub max_concurrent_invocations: Option<usize>,
    /// Burst slots beyond the concurrency limit before pushdown requests
    /// are shed with `503` + `x-storlet-degraded`.
    pub max_queue_depth: usize,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            max_storage_load: 0.8,
            min_selectivity: 0.25,
            min_observations: 3,
            max_concurrent_invocations: None,
            max_queue_depth: 0,
        }
    }
}

impl AdaptivePolicy {
    /// Install this policy's admission limits on an engine.
    pub fn apply_admission(&self, engine: &StorletEngine) {
        engine.set_admission_limits(self.max_concurrent_invocations, self.max_queue_depth);
    }
}

/// Per-tenant effectiveness observations (an online selectivity model).
#[derive(Debug, Default, Clone, Copy)]
struct TenantStats {
    invocations: u64,
    bytes_in: u64,
    bytes_out: u64,
    /// Whether the controller demoted this tenant (so it can restore it).
    demoted: bool,
    /// Priority: higher sheds later under load (admins can pin tenants).
    priority: u32,
}

impl TenantStats {
    fn selectivity(&self) -> f64 {
        if self.bytes_in == 0 {
            0.0
        } else {
            1.0 - self.bytes_out as f64 / self.bytes_in as f64
        }
    }
}

/// The control process.
pub struct AdaptiveController {
    policy_store: Arc<PolicyStore>,
    policy: AdaptivePolicy,
    tenants: RwLock<HashMap<String, TenantStats>>,
}

impl AdaptiveController {
    /// Create a controller acting on the given policy store.
    pub fn new(policy_store: Arc<PolicyStore>, policy: AdaptivePolicy) -> Self {
        AdaptiveController { policy_store, policy, tenants: RwLock::new(HashMap::new()) }
    }

    /// Register a tenant with a shedding priority (higher = shed later).
    pub fn register_tenant(&self, account: &str, priority: u32) {
        self.tenants
            .write()
            .entry(account.to_string())
            .or_default()
            .priority = priority;
    }

    /// Record one pushdown invocation's effectiveness for a tenant (bytes
    /// read vs bytes produced, e.g. from [`StorletEngine`] deltas).
    pub fn observe(&self, account: &str, bytes_in: u64, bytes_out: u64) {
        let mut tenants = self.tenants.write();
        let t = tenants.entry(account.to_string()).or_default();
        t.invocations += 1;
        t.bytes_in += bytes_in;
        t.bytes_out += bytes_out;
    }

    /// Convenience: fold the engine's cumulative csvfilter stats in as one
    /// observation for `account` (single-tenant deployments).
    pub fn observe_engine(&self, account: &str, engine: &StorletEngine) {
        let s = engine.stats("csvfilter");
        let mut tenants = self.tenants.write();
        let t = tenants.entry(account.to_string()).or_default();
        t.invocations = s.invocations;
        t.bytes_in = s.bytes_in;
        t.bytes_out = s.bytes_out;
    }

    /// The controller's current selectivity estimate for a tenant.
    pub fn estimated_selectivity(&self, account: &str) -> Option<f64> {
        let tenants = self.tenants.read();
        let t = tenants.get(account)?;
        if t.invocations < self.policy.min_observations {
            None
        } else {
            Some(t.selectivity())
        }
    }

    /// Run one control step with the current storage load (0–1). Returns the
    /// accounts whose tier changed in this step.
    ///
    /// Rules, in order:
    /// 1. A tenant whose observed selectivity stays below `min_selectivity`
    ///    (after `min_observations`) is demoted — its filters burn storage
    ///    CPU without saving meaningful transfer.
    /// 2. Under overload (`load > max_storage_load`), tenants are demoted in
    ///    ascending priority order until only the highest-priority tier
    ///    keeps pushdown.
    /// 3. When neither rule applies, previously demoted tenants are
    ///    restored.
    pub fn control_step(&self, storage_load: f64) -> Vec<(String, Tier)> {
        // Two phases so `tenants` is never held across `policy_store`'s
        // own lock: decide (and mark `demoted`) under the write guard,
        // then apply the tier changes after it drops. A tier flipped by a
        // concurrent manual pin between the phases is simply re-flipped —
        // the next control step re-evaluates from observations either way.
        let mut changes = Vec::new();
        {
            let mut tenants = self.tenants.write();
            let max_priority = tenants.values().map(|t| t.priority).max().unwrap_or(0);
            for (account, t) in tenants.iter_mut() {
                let ineffective = t.invocations >= self.policy.min_observations
                    && t.selectivity() < self.policy.min_selectivity;
                let shed_for_load =
                    storage_load > self.policy.max_storage_load && t.priority < max_priority;
                let want_bronze = ineffective || shed_for_load;
                let is_bronze = self.policy_store.tier_of(account) == Tier::Bronze;
                if want_bronze && !is_bronze {
                    t.demoted = true;
                    changes.push((account.clone(), Tier::Bronze));
                } else if !want_bronze && is_bronze && t.demoted {
                    t.demoted = false;
                    changes.push((account.clone(), Tier::Gold));
                }
            }
        }
        for (account, tier) in &changes {
            self.policy_store.set_tier(account, *tier);
        }
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<PolicyStore>, AdaptiveController) {
        let store = Arc::new(PolicyStore::new());
        let ctl = AdaptiveController::new(store.clone(), AdaptivePolicy::default());
        (store, ctl)
    }

    #[test]
    fn ineffective_filters_get_demoted_and_restored() {
        let (store, ctl) = setup();
        ctl.register_tenant("low-sel", 1);
        // Three observations at ~5% selectivity: below the 25% gate.
        for _ in 0..3 {
            ctl.observe("low-sel", 1000, 950);
        }
        assert!(ctl.estimated_selectivity("low-sel").unwrap() < 0.25);
        let changes = ctl.control_step(0.1);
        assert_eq!(changes, vec![("low-sel".to_string(), Tier::Bronze)]);
        assert_eq!(store.tier_of("low-sel"), Tier::Bronze);
        // The workload becomes selective again → restored.
        for _ in 0..30 {
            ctl.observe("low-sel", 1000, 10);
        }
        let changes = ctl.control_step(0.1);
        assert_eq!(changes, vec![("low-sel".to_string(), Tier::Gold)]);
        assert_eq!(store.tier_of("low-sel"), Tier::Gold);
    }

    #[test]
    fn overload_sheds_by_priority() {
        let (store, ctl) = setup();
        ctl.register_tenant("gold-tenant", 10);
        ctl.register_tenant("bronze-tenant", 1);
        for account in ["gold-tenant", "bronze-tenant"] {
            for _ in 0..5 {
                ctl.observe(account, 1000, 50); // very selective: keep both
            }
        }
        // Calm: nobody demoted.
        assert!(ctl.control_step(0.5).is_empty());
        // Overload: only the lower-priority tenant is shed.
        let changes = ctl.control_step(0.95);
        assert_eq!(changes, vec![("bronze-tenant".to_string(), Tier::Bronze)]);
        assert_eq!(store.tier_of("gold-tenant"), Tier::Gold);
        // Load subsides: restored.
        let changes = ctl.control_step(0.4);
        assert_eq!(changes, vec![("bronze-tenant".to_string(), Tier::Gold)]);
    }

    #[test]
    fn too_few_observations_keep_pushdown() {
        let (store, ctl) = setup();
        ctl.observe("new-tenant", 1000, 1000);
        assert!(ctl.estimated_selectivity("new-tenant").is_none());
        assert!(ctl.control_step(0.1).is_empty());
        assert_eq!(store.tier_of("new-tenant"), Tier::Gold);
    }

    #[test]
    fn manual_demotions_are_not_overridden() {
        let (store, ctl) = setup();
        // Admin pins a tenant to bronze; the controller must not restore it
        // (it only restores tenants it demoted itself).
        store.set_tier("pinned", Tier::Bronze);
        for _ in 0..5 {
            ctl.observe("pinned", 1000, 10);
        }
        assert!(ctl.control_step(0.1).is_empty());
        assert_eq!(store.tier_of("pinned"), Tier::Bronze);
    }
}
