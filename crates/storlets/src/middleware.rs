//! The storlet WSGI middleware.
//!
//! "With Storlets a developer can write code, package and deploy it ... and
//! then explicitly invoke it on data objects as if the code was part of the
//! Swift's WSGI pipeline. Request interception can occur not only at the proxy
//! but also at the object servers." This middleware implements that
//! interception on both tiers, plus the two capabilities the paper added:
//! **staging control** (`X-Storlet-Run-On`) and **byte-range execution**
//! (logical ranges handled record-aligned by the storlet while the backend
//! serves an open-ended read that the lazy filter stream terminates early).

use crate::api::InvocationContext;
use crate::engine::StorletEngine;
use crate::policy::{PolicyStore, Tier};
use scoop_objectstore::middleware::{Handler, Middleware};
use scoop_objectstore::objserver::{STAGE_HEADER, STAGE_OBJECT, STAGE_PROXY};
use scoop_objectstore::request::{ByteRange, Method, Request, Response};
use scoop_common::{stream, Result, ScoopError};
use std::collections::HashMap;
use std::sync::Arc;

/// Header names understood by the middleware. The actual strings live in
/// [`scoop_common::headers`] — the workspace's single constants module —
/// and are re-exported here under the middleware's historical names.
pub mod headers {
    /// Comma-separated storlet pipeline to execute.
    pub use scoop_common::headers::RUN_STORLET;
    /// Invocation parameters, `k=v` pairs joined by `;` (percent-escaped).
    pub use scoop_common::headers::STORLET_PARAMETERS as PARAMETERS;
    /// Execution stage: `proxy` or `object` (default `object`).
    pub use scoop_common::headers::STORLET_RUN_ON as RUN_ON;
    /// Logical byte range handled by the storlet (record-aligned), e.g.
    /// `bytes=1048576-2097151`.
    pub use scoop_common::headers::STORLET_RANGE;
    /// Response marker listing executed storlets.
    pub use scoop_common::headers::STORLET_INVOKED as INVOKED;
    /// Set on `503` responses when pushdown was shed for overload; names
    /// the storlets that were *not* run so the client can fall back to a
    /// plain GET and filter locally.
    pub use scoop_common::headers::STORLET_DEGRADED as DEGRADED;
}

/// Encode invocation parameters for [`headers::PARAMETERS`].
pub fn encode_params(params: &HashMap<String, String>) -> String {
    let mut keys: Vec<&String> = params.keys().collect();
    keys.sort();
    let esc = |s: &str| -> String {
        let mut out = String::with_capacity(s.len());
        for b in s.bytes() {
            match b {
                b'%' | b';' | b'=' => out.push_str(&format!("%{b:02X}")),
                _ => out.push(b as char),
            }
        }
        out
    };
    keys.iter()
        .map(|k| format!("{}={}", esc(k), esc(&params[*k])))
        .collect::<Vec<_>>()
        .join(";")
}

/// Decode [`headers::PARAMETERS`].
pub fn decode_params(header: &str) -> Result<HashMap<String, String>> {
    let unesc = |s: &str| -> Result<String> {
        let bytes = s.as_bytes();
        let mut out = Vec::with_capacity(bytes.len());
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'%' {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| ScoopError::InvalidRequest("bad %-escape".into()))?;
                let v = u8::from_str_radix(
                    std::str::from_utf8(hex)
                        .map_err(|_| ScoopError::InvalidRequest("bad %-escape".into()))?,
                    16,
                )
                .map_err(|_| ScoopError::InvalidRequest("bad %-escape".into()))?;
                out.push(v);
                i += 3;
            } else {
                out.push(bytes[i]);
                i += 1;
            }
        }
        String::from_utf8(out).map_err(|_| ScoopError::InvalidRequest("non-utf8 param".into()))
    };
    let mut map = HashMap::new();
    for pair in header.split(';').filter(|p| !p.is_empty()) {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| ScoopError::InvalidRequest(format!("bad parameter pair '{pair}'")))?;
        map.insert(unesc(k)?, unesc(v)?);
    }
    Ok(map)
}

/// The middleware. Install one instance (sharing the engine) on both the
/// proxy and object-server pipelines.
pub struct StorletMiddleware {
    engine: Arc<StorletEngine>,
    policy: Option<Arc<PolicyStore>>,
}

impl StorletMiddleware {
    /// Middleware without policies (explicit invocation only).
    pub fn new(engine: Arc<StorletEngine>) -> Self {
        StorletMiddleware { engine, policy: None }
    }

    /// Middleware consulting a policy store at the proxy stage.
    pub fn with_policy(engine: Arc<StorletEngine>, policy: Arc<PolicyStore>) -> Self {
        StorletMiddleware { engine, policy: Some(policy) }
    }

    /// The shared engine (for stats inspection).
    pub fn engine(&self) -> &Arc<StorletEngine> {
        &self.engine
    }

    /// Proxy-stage policy work: strip pushdown for bronze tenants, inject
    /// configured storlets for matching rules.
    fn apply_policy(&self, req: &mut Request) {
        let Some(policy) = &self.policy else { return };
        if policy.tier_of(&req.path.account) == Tier::Bronze {
            req.headers.remove(headers::RUN_STORLET);
            req.headers.remove(headers::PARAMETERS);
            req.headers.remove(headers::RUN_ON);
            // Degrade X-Storlet-Range to an *open-ended* plain range so the
            // compute side can record-align (it must read past the logical
            // end to finish the last owned record). The client detects the
            // missing x-storlet-invoked response header and filters locally.
            if let Some(r) = req.headers.remove(headers::STORLET_RANGE) {
                if let Ok(parsed) = ByteRange::parse(&r) {
                    req.headers.set(
                        "range",
                        ByteRange { start: parsed.start, end: None }.to_header(),
                    );
                }
            }
            return;
        }
        if !req.headers.contains(headers::RUN_STORLET) {
            if let Some(rule) = policy.matching_rule(
                &req.path.account,
                &req.path.container,
                req.method,
            ) {
                req.headers.set(headers::RUN_STORLET, rule.storlets.clone());
                req.headers
                    .set(headers::PARAMETERS, encode_params(&rule.params));
            }
        }
    }

    fn build_context(req: &Request) -> Result<InvocationContext> {
        let params = match req.headers.get(headers::PARAMETERS) {
            Some(h) => decode_params(h)?,
            None => HashMap::new(),
        };
        Ok(InvocationContext::new(params))
    }

    fn pipeline_names(header: &str) -> Vec<String> {
        header
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    }

    /// GET with storlet: resolve ranges, fetch (open-ended when record
    /// alignment is needed), and wrap the response body in the filter stream.
    fn run_get(
        &self,
        names: &[String],
        mut req: Request,
        next: &dyn Handler,
    ) -> Result<Response> {
        // Overload shedding: when the engine's admission slots are
        // exhausted the request is refused *before* any backend read, and
        // the degraded marker tells the client which filters to apply
        // itself after a plain GET. (PUT-path ETL is never shed: dropping
        // it would change what gets stored.)
        let Some(permit) = self.engine.try_admit() else {
            return Ok(Response::unavailable().with_header(headers::DEGRADED, names.join(",")));
        };
        let _span = scoop_common::telemetry::span(
            req.headers.get(scoop_common::headers::TRACE),
            scoop_common::telemetry::layers::STORLET,
            format!("GET pipeline [{}]", names.join(",")),
        );
        let mut ctx = Self::build_context(&req)?;
        // Logical range: X-Storlet-Range wins, else a plain Range is promoted
        // to a storlet-handled (record-aligned) range.
        let logical = match req.headers.remove(headers::STORLET_RANGE) {
            Some(h) => Some(ByteRange::parse(&h)?),
            None => req.range()?,
        };
        req.headers.remove("range");
        if let Some(r) = logical {
            ctx.range_start = r.start;
            ctx.range_end = r.end;
            // Backend serves from the range start to EOF; the storlet's lazy
            // stream stops pulling once past the logical end.
            req.headers
                .set("range", ByteRange { start: r.start, end: None }.to_header());
        }
        // Don't re-run downstream.
        let invoked = names.join(",");
        req.headers.remove(headers::RUN_STORLET);
        req.headers.remove(headers::PARAMETERS);
        req.headers.remove(headers::RUN_ON);
        let resp = next.call(req)?;
        if !resp.is_success() {
            return Ok(resp);
        }
        // Guard the raw body before it enters the filter: a backend that cut
        // the stream short would otherwise just look like an early EOF and
        // silently drop records from the filtered output. `enforce_length`
        // turns that into a retryable error; lazy early termination by the
        // range-aligned filter is unaffected (it stops pulling, which never
        // trips the check).
        let body = match resp
            .headers
            .get("content-length")
            .and_then(|l| l.parse::<u64>().ok())
        {
            Some(expected) => stream::enforce_length(resp.body, expected),
            None => resp.body,
        };
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let body = permit.attach(self.engine.invoke_pipeline(&name_refs, body, &ctx)?);
        let mut out = Response { status: 200, headers: resp.headers, body };
        // Filtered length is unknown until the stream is consumed.
        out.headers.remove("content-length");
        out.headers.remove("content-range");
        out.headers.set(headers::INVOKED, invoked);
        Ok(out)
    }

    /// PUT with storlet (ETL path): transform the body once, then store the
    /// transformed object.
    fn run_put(
        &self,
        names: &[String],
        mut req: Request,
        next: &dyn Handler,
    ) -> Result<Response> {
        let _span = scoop_common::telemetry::span(
            req.headers.get(scoop_common::headers::TRACE),
            scoop_common::telemetry::layers::STORLET,
            format!("PUT pipeline [{}]", names.join(",")),
        );
        let ctx = Self::build_context(&req)?;
        let body = req.body.take().unwrap_or_default();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let transformed = self
            .engine
            .invoke_pipeline(&name_refs, stream::once(body), &ctx)?;
        let new_body = stream::collect(transformed)?;
        req.body = Some(new_body);
        let invoked = names.join(",");
        req.headers.remove(headers::RUN_STORLET);
        req.headers.remove(headers::PARAMETERS);
        req.headers.remove(headers::RUN_ON);
        let resp = next.call(req)?;
        Ok(resp.with_header(headers::INVOKED, invoked))
    }
}

impl Middleware for StorletMiddleware {
    fn name(&self) -> &str {
        "storlets"
    }

    fn handle(&self, mut req: Request, next: &dyn Handler) -> Result<Response> {
        let stage = req
            .headers
            .get(STAGE_HEADER)
            .unwrap_or(STAGE_OBJECT)
            .to_string();
        if stage == STAGE_PROXY {
            self.apply_policy(&mut req);
        }
        let Some(run_header) = req.headers.get(headers::RUN_STORLET).map(str::to_string)
        else {
            return next.call(req);
        };
        let names = Self::pipeline_names(&run_header);
        if names.is_empty() {
            return next.call(req);
        }
        match req.method {
            Method::Get => {
                // GET storlets honour the requested execution stage.
                let run_on = req
                    .headers
                    .get(headers::RUN_ON)
                    .unwrap_or(STAGE_OBJECT)
                    .to_string();
                if run_on != stage {
                    return next.call(req);
                }
                self.run_get(&names, req, next)
            }
            // PUT-path ETL always runs at the proxy, *before* replication
            // fan-out, so each replica stores the transformed object.
            Method::Put if stage == STAGE_PROXY => self.run_put(&names, req, next),
            _ => next.call(req),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use scoop_csv::{Predicate, PushdownSpec};
    use scoop_objectstore::middleware::Pipeline;
    use scoop_objectstore::{ObjectPath, SwiftCluster, SwiftConfig};

    const DATA: &[u8] = b"vid,date,index,city\n\
        m1,2015-01-03,100.5,Rotterdam\n\
        m2,2015-01-04,200.0,Paris\n\
        m3,2015-02-01,50.0,Utrecht\n";

    fn cluster_with_storlets() -> (Arc<SwiftCluster>, Arc<StorletEngine>, Arc<PolicyStore>) {
        let cluster = SwiftCluster::new(SwiftConfig::default()).unwrap();
        let engine = Arc::new(StorletEngine::with_builtin_filters());
        let policy = Arc::new(PolicyStore::new());
        let mut obj_pipe = Pipeline::new();
        obj_pipe.push(Arc::new(StorletMiddleware::new(engine.clone())));
        cluster.set_object_pipeline(obj_pipe);
        let mut proxy_pipe = Pipeline::new();
        proxy_pipe.push(Arc::new(StorletMiddleware::with_policy(
            engine.clone(),
            policy.clone(),
        )));
        cluster.set_proxy_pipeline(proxy_pipe);
        (cluster, engine, policy)
    }

    fn csv_params() -> HashMap<String, String> {
        let spec = PushdownSpec {
            columns: Some(vec!["vid".into(), "index".into()]),
            predicate: Some(Predicate::Like("date".into(), "2015-01%".into())),
            has_header: true,
        };
        let mut p = HashMap::new();
        p.insert("spec".to_string(), spec.to_header());
        p.insert("schema".to_string(), "vid,date,index,city".to_string());
        p
    }

    fn path() -> ObjectPath {
        ObjectPath::new("AUTH_gp", "meters", "jan.csv").unwrap()
    }

    #[test]
    fn params_roundtrip() {
        let mut p = HashMap::new();
        p.insert("spec".to_string(), "hdr=1;cols=a,b;pred=(eq c s:x=y)".to_string());
        p.insert("schema".to_string(), "a,b,c".to_string());
        let enc = encode_params(&p);
        assert_eq!(decode_params(&enc).unwrap(), p);
        assert!(decode_params("novalue").is_err());
        assert!(decode_params("k=%zz").is_err());
        assert!(decode_params("").unwrap().is_empty());
    }

    #[test]
    fn get_pushdown_at_object_stage() {
        let (cluster, engine, _) = cluster_with_storlets();
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        client
            .put_object("meters", "jan.csv", Bytes::from_static(DATA))
            .unwrap();

        let req = scoop_objectstore::Request::get(path())
            .with_header(headers::RUN_STORLET, "csvfilter")
            .with_header(headers::PARAMETERS, encode_params(&csv_params()));
        let resp = client.request(req).unwrap();
        assert_eq!(resp.headers.get(headers::INVOKED), Some("csvfilter"));
        assert_eq!(resp.read_body().unwrap(), "m1,100.5\nm2,200.0\n");
        assert_eq!(engine.stats("csvfilter").invocations, 1);
    }

    #[test]
    fn get_pushdown_at_proxy_stage() {
        let (cluster, engine, _) = cluster_with_storlets();
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        client
            .put_object("meters", "jan.csv", Bytes::from_static(DATA))
            .unwrap();
        let req = scoop_objectstore::Request::get(path())
            .with_header(headers::RUN_STORLET, "csvfilter")
            .with_header(headers::RUN_ON, "proxy")
            .with_header(headers::PARAMETERS, encode_params(&csv_params()));
        let resp = client.request(req).unwrap();
        assert_eq!(resp.read_body().unwrap(), "m1,100.5\nm2,200.0\n");
        assert_eq!(engine.stats("csvfilter").invocations, 1);
    }

    #[test]
    fn ranged_pushdown_is_record_aligned() {
        let (cluster, _, _) = cluster_with_storlets();
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        client
            .put_object("meters", "jan.csv", Bytes::from_static(DATA))
            .unwrap();
        // Collect ranged outputs over a 30-byte split plan; concatenation
        // must equal the unranged result.
        let whole = {
            let req = scoop_objectstore::Request::get(path())
                .with_header(headers::RUN_STORLET, "csvfilter")
                .with_header(headers::PARAMETERS, encode_params(&csv_params()));
            client.request(req).unwrap().read_body().unwrap()
        };
        let mut combined = Vec::new();
        for (s, e) in scoop_csv::split::plan_splits(DATA.len() as u64, 30) {
            let req = scoop_objectstore::Request::get(path())
                .with_header(headers::RUN_STORLET, "csvfilter")
                .with_header(headers::PARAMETERS, encode_params(&csv_params()))
                .with_header(
                    headers::STORLET_RANGE,
                    ByteRange { start: s, end: Some(e - 1) }.to_header(),
                );
            combined.extend_from_slice(&client.request(req).unwrap().read_body().unwrap());
        }
        assert_eq!(combined, whole);
    }

    #[test]
    fn put_path_etl_transforms_before_storage() {
        let (cluster, engine, _) = cluster_with_storlets();
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        let raw = b"vid,date,index\n m1 ,2015-01-03, 5 \nbad,row\n";
        let mut params = HashMap::new();
        params.insert("schema".to_string(), "vid,date,index".to_string());
        params.insert("header".to_string(), "1".to_string());
        let req = scoop_objectstore::Request::put(path(), Bytes::from_static(raw))
            .with_header(headers::RUN_STORLET, "etlcleanse")
            .with_header(headers::PARAMETERS, encode_params(&params));
        let resp = client.request(req).unwrap();
        assert_eq!(resp.status, 201);
        assert_eq!(resp.headers.get(headers::INVOKED), Some("etlcleanse"));
        // Stored object is the cleansed version.
        let got = client.get_object("meters", "jan.csv").unwrap();
        assert_eq!(got.read_body().unwrap(), "vid,date,index\nm1,2015-01-03,5\n");
        // ETL ran exactly once (at the proxy), not once per replica.
        assert_eq!(engine.stats("etlcleanse").invocations, 1);
    }

    #[test]
    fn pipelined_filters_compose() {
        let (cluster, engine, _) = cluster_with_storlets();
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        client
            .put_object("meters", "jan.csv", Bytes::from_static(DATA))
            .unwrap();
        let mut params = csv_params();
        params.insert("pattern".to_string(), "m1".to_string());
        // csvfilter then linegrep: filtered rows further narrowed to m1.
        let req = scoop_objectstore::Request::get(path())
            .with_header(headers::RUN_STORLET, "csvfilter,linegrep")
            .with_header(headers::PARAMETERS, encode_params(&params));
        let resp = client.request(req).unwrap();
        assert_eq!(resp.read_body().unwrap(), "m1,100.5\n");
        assert_eq!(engine.stats("csvfilter").invocations, 1);
        assert_eq!(engine.stats("linegrep").invocations, 1);
    }

    #[test]
    fn bronze_tenants_get_plain_ingestion() {
        let (cluster, engine, policy) = cluster_with_storlets();
        policy.set_tier("AUTH_gp", Tier::Bronze);
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        client
            .put_object("meters", "jan.csv", Bytes::from_static(DATA))
            .unwrap();
        let req = scoop_objectstore::Request::get(path())
            .with_header(headers::RUN_STORLET, "csvfilter")
            .with_header(headers::PARAMETERS, encode_params(&csv_params()));
        let resp = client.request(req).unwrap();
        // Full object returned; no storlet ran.
        assert_eq!(resp.read_body().unwrap(), DATA);
        assert_eq!(engine.stats("csvfilter").invocations, 0);
    }

    #[test]
    fn policy_auto_applies_put_etl() {
        let (cluster, engine, policy) = cluster_with_storlets();
        let mut params = HashMap::new();
        params.insert("schema".to_string(), "vid,date,index".to_string());
        params.insert("header".to_string(), "1".to_string());
        policy.add_rule(crate::policy::PolicyRule {
            account: "AUTH_gp".into(),
            container: Some("meters".into()),
            method: Method::Put,
            storlets: "etlcleanse".into(),
            params,
        });
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        // Plain PUT with no storlet headers — the policy injects the ETL.
        client
            .put_object(
                "meters",
                "jan.csv",
                Bytes::from_static(b"vid,date,index\n a ,b, 1 \n"),
            )
            .unwrap();
        let got = client.get_object("meters", "jan.csv").unwrap();
        assert_eq!(got.read_body().unwrap(), "vid,date,index\na,b,1\n");
        assert_eq!(engine.stats("etlcleanse").invocations, 1);
    }

    #[test]
    fn saturated_engine_sheds_with_degraded_marker() {
        let (cluster, engine, _) = cluster_with_storlets();
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        client
            .put_object("meters", "jan.csv", Bytes::from_static(DATA))
            .unwrap();
        // Zero slots: every pushdown GET is shed before touching the disk.
        engine.set_admission_limits(Some(0), 0);
        let req = scoop_objectstore::Request::get(path())
            .with_header(headers::RUN_STORLET, "csvfilter")
            .with_header(headers::PARAMETERS, encode_params(&csv_params()));
        let resp = client.request(req).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.headers.get(headers::DEGRADED), Some("csvfilter"));
        assert!(resp.headers.get(headers::INVOKED).is_none());
        assert_eq!(engine.stats("csvfilter").invocations, 0);
        assert!(engine.admission_sheds() > 0);
        // A plain GET (the client's fallback) is unaffected by shedding.
        let full = client.get_object("meters", "jan.csv").unwrap();
        assert_eq!(full.read_body().unwrap(), DATA);
        // PUT-path ETL keeps running even while saturated.
        let mut params = HashMap::new();
        params.insert("schema".to_string(), "vid,date,index".to_string());
        params.insert("header".to_string(), "1".to_string());
        let put = scoop_objectstore::Request::put(
            ObjectPath::new("AUTH_gp", "meters", "etl.csv").unwrap(),
            Bytes::from_static(b"vid,date,index\n a ,b, 1 \n"),
        )
        .with_header(headers::RUN_STORLET, "etlcleanse")
        .with_header(headers::PARAMETERS, encode_params(&params));
        assert_eq!(client.request(put).unwrap().status, 201);
        // Lifting the limit restores pushdown.
        engine.set_admission_limits(None, 0);
        let req = scoop_objectstore::Request::get(path())
            .with_header(headers::RUN_STORLET, "csvfilter")
            .with_header(headers::PARAMETERS, encode_params(&csv_params()));
        let resp = client.request(req).unwrap();
        assert_eq!(resp.headers.get(headers::INVOKED), Some("csvfilter"));
    }

    #[test]
    fn unknown_storlet_fails_request() {
        let (cluster, _, _) = cluster_with_storlets();
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        client
            .put_object("meters", "jan.csv", Bytes::from_static(DATA))
            .unwrap();
        let req = scoop_objectstore::Request::get(path())
            .with_header(headers::RUN_STORLET, "nope");
        assert!(client.request(req).is_err());
    }
}
