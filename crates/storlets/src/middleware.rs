//! The storlet WSGI middleware.
//!
//! "With Storlets a developer can write code, package and deploy it ... and
//! then explicitly invoke it on data objects as if the code was part of the
//! Swift's WSGI pipeline. Request interception can occur not only at the proxy
//! but also at the object servers." This middleware implements that
//! interception on both tiers, plus the two capabilities the paper added:
//! **staging control** (`X-Storlet-Run-On`) and **byte-range execution**
//! (logical ranges handled record-aligned by the storlet while the backend
//! serves an open-ended read that the lazy filter stream terminates early).

use crate::api::{InvocationContext, InvocationMetrics};
use crate::engine::StorletEngine;
use crate::planner::plan_ranges;
use crate::policy::{PolicyStore, Tier};
use scoop_common::zonestats::ObjectStats;
use scoop_common::{stream, ByteStream, Result, ScoopError};
use scoop_csv::PushdownSpec;
use scoop_objectstore::middleware::{Handler, Middleware};
use scoop_objectstore::objserver::{STAGE_HEADER, STAGE_OBJECT, STAGE_PROXY};
use scoop_objectstore::request::{ByteRange, Method, Request, Response};
use std::collections::HashMap;
use std::sync::Arc;

/// Header names understood by the middleware. The actual strings live in
/// [`scoop_common::headers`] — the workspace's single constants module —
/// and are re-exported here under the middleware's historical names.
pub mod headers {
    /// Comma-separated storlet pipeline to execute.
    pub use scoop_common::headers::RUN_STORLET;
    /// Invocation parameters, `k=v` pairs joined by `;` (percent-escaped).
    pub use scoop_common::headers::STORLET_PARAMETERS as PARAMETERS;
    /// Execution stage: `proxy` or `object` (default `object`).
    pub use scoop_common::headers::STORLET_RUN_ON as RUN_ON;
    /// Logical byte range handled by the storlet (record-aligned), e.g.
    /// `bytes=1048576-2097151`.
    pub use scoop_common::headers::STORLET_RANGE;
    /// Response marker listing executed storlets.
    pub use scoop_common::headers::STORLET_INVOKED as INVOKED;
    /// Set on `503` responses when pushdown was shed for overload; names
    /// the storlets that were *not* run so the client can fall back to a
    /// plain GET and filter locally.
    pub use scoop_common::headers::STORLET_DEGRADED as DEGRADED;
}

/// Encode invocation parameters for [`headers::PARAMETERS`].
pub fn encode_params(params: &HashMap<String, String>) -> String {
    let mut keys: Vec<&String> = params.keys().collect();
    keys.sort();
    let esc = |s: &str| -> String {
        let mut out = String::with_capacity(s.len());
        for b in s.bytes() {
            match b {
                b'%' | b';' | b'=' => out.push_str(&format!("%{b:02X}")),
                _ => out.push(b as char),
            }
        }
        out
    };
    keys.iter()
        .map(|k| format!("{}={}", esc(k), esc(&params[*k])))
        .collect::<Vec<_>>()
        .join(";")
}

/// Decode [`headers::PARAMETERS`].
pub fn decode_params(header: &str) -> Result<HashMap<String, String>> {
    let unesc = |s: &str| -> Result<String> {
        let bytes = s.as_bytes();
        let mut out = Vec::with_capacity(bytes.len());
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'%' {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| ScoopError::InvalidRequest("bad %-escape".into()))?;
                let v = u8::from_str_radix(
                    std::str::from_utf8(hex)
                        .map_err(|_| ScoopError::InvalidRequest("bad %-escape".into()))?,
                    16,
                )
                .map_err(|_| ScoopError::InvalidRequest("bad %-escape".into()))?;
                out.push(v);
                i += 3;
            } else {
                out.push(bytes[i]);
                i += 1;
            }
        }
        String::from_utf8(out).map_err(|_| ScoopError::InvalidRequest("non-utf8 param".into()))
    };
    let mut map = HashMap::new();
    for pair in header.split(';').filter(|p| !p.is_empty()) {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| ScoopError::InvalidRequest(format!("bad parameter pair '{pair}'")))?;
        map.insert(unesc(k)?, unesc(v)?);
    }
    Ok(map)
}

/// The middleware. Install one instance (sharing the engine) on both the
/// proxy and object-server pipelines.
pub struct StorletMiddleware {
    engine: Arc<StorletEngine>,
    policy: Option<Arc<PolicyStore>>,
}

impl StorletMiddleware {
    /// Middleware without policies (explicit invocation only).
    pub fn new(engine: Arc<StorletEngine>) -> Self {
        StorletMiddleware { engine, policy: None }
    }

    /// Middleware consulting a policy store at the proxy stage.
    pub fn with_policy(engine: Arc<StorletEngine>, policy: Arc<PolicyStore>) -> Self {
        StorletMiddleware { engine, policy: Some(policy) }
    }

    /// The shared engine (for stats inspection).
    pub fn engine(&self) -> &Arc<StorletEngine> {
        &self.engine
    }

    /// Proxy-stage policy work: strip pushdown for bronze tenants, inject
    /// configured storlets for matching rules.
    fn apply_policy(&self, req: &mut Request) {
        let Some(policy) = &self.policy else { return };
        if policy.tier_of(&req.path.account) == Tier::Bronze {
            req.headers.remove(headers::RUN_STORLET);
            req.headers.remove(headers::PARAMETERS);
            req.headers.remove(headers::RUN_ON);
            // Degrade X-Storlet-Range to an *open-ended* plain range so the
            // compute side can record-align (it must read past the logical
            // end to finish the last owned record). The client detects the
            // missing x-storlet-invoked response header and filters locally.
            if let Some(r) = req.headers.remove(headers::STORLET_RANGE) {
                if let Ok(parsed) = ByteRange::parse(&r) {
                    req.headers.set(
                        "range",
                        ByteRange { start: parsed.start, end: None }.to_header(),
                    );
                }
            }
            return;
        }
        if !req.headers.contains(headers::RUN_STORLET) {
            if let Some(rule) = policy.matching_rule(
                &req.path.account,
                &req.path.container,
                req.method,
            ) {
                req.headers.set(headers::RUN_STORLET, rule.storlets.clone());
                req.headers
                    .set(headers::PARAMETERS, encode_params(&rule.params));
            }
        }
    }

    fn build_context(req: &Request) -> Result<InvocationContext> {
        let params = match req.headers.get(headers::PARAMETERS) {
            Some(h) => decode_params(h)?,
            None => HashMap::new(),
        };
        Ok(InvocationContext::new(params))
    }

    fn pipeline_names(header: &str) -> Vec<String> {
        header
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    }

    /// GET with storlet: resolve ranges, fetch (open-ended when record
    /// alignment is needed), and wrap the response body in the filter stream.
    fn run_get(
        &self,
        names: &[String],
        mut req: Request,
        next: &dyn Handler,
    ) -> Result<Response> {
        // Overload shedding: when the engine's admission slots are
        // exhausted the request is refused *before* any backend read, and
        // the degraded marker tells the client which filters to apply
        // itself after a plain GET. (PUT-path ETL is never shed: dropping
        // it would change what gets stored.)
        let Some(permit) = self.engine.try_admit() else {
            return Ok(Response::unavailable().with_header(headers::DEGRADED, names.join(",")));
        };
        let _span = scoop_common::telemetry::span(
            req.headers.get(scoop_common::headers::TRACE),
            scoop_common::telemetry::layers::STORLET,
            format!("GET pipeline [{}]", names.join(",")),
        );
        let mut ctx = Self::build_context(&req)?;
        // Logical range: X-Storlet-Range wins, else a plain Range is promoted
        // to a storlet-handled (record-aligned) range.
        let logical = match req.headers.remove(headers::STORLET_RANGE) {
            Some(h) => Some(ByteRange::parse(&h)?),
            None => req.range()?,
        };
        req.headers.remove("range");
        // Store-side data skipping: when the object carries fresh zone-map
        // stats, serve the pushdown from a few bounded ranged GETs over the
        // surviving blocks instead of one open-ended scan. Any reason the
        // plan can't be trusted falls through to the classic path below.
        if let Some(mut planned) = self.try_planned_get(names, &req, next, &ctx, logical)? {
            planned.body = permit.attach(planned.body);
            planned.headers.set(headers::INVOKED, names.join(","));
            return Ok(planned);
        }
        if let Some(r) = logical {
            ctx.range_start = r.start;
            ctx.range_end = r.end;
            // Backend serves from the range start to EOF; the storlet's lazy
            // stream stops pulling once past the logical end.
            req.headers
                .set("range", ByteRange { start: r.start, end: None }.to_header());
        }
        // Don't re-run downstream.
        let invoked = names.join(",");
        req.headers.remove(headers::RUN_STORLET);
        req.headers.remove(headers::PARAMETERS);
        req.headers.remove(headers::RUN_ON);
        let resp = next.call(req)?;
        if !resp.is_success() {
            return Ok(resp);
        }
        // Guard the raw body before it enters the filter: a backend that cut
        // the stream short would otherwise just look like an early EOF and
        // silently drop records from the filtered output. `enforce_length`
        // turns that into a retryable error; lazy early termination by the
        // range-aligned filter is unaffected (it stops pulling, which never
        // trips the check).
        let body = match resp
            .headers
            .get("content-length")
            .and_then(|l| l.parse::<u64>().ok())
        {
            Some(expected) => stream::enforce_length(resp.body, expected),
            None => resp.body,
        };
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let body = permit.attach(self.engine.invoke_pipeline(&name_refs, body, &ctx)?);
        let mut out = Response { status: 200, headers: resp.headers, body };
        // Filtered length is unknown until the stream is consumed.
        out.headers.remove("content-length");
        out.headers.remove("content-range");
        out.headers.set(headers::INVOKED, invoked);
        Ok(out)
    }

    /// Attempt the block-skipping GET path.
    ///
    /// Applicable when the pipeline head is `csvfilter` with a parseable
    /// spec, and a HEAD shows the object carries zone-map stats that are
    /// fresh (etag and length match) and consistent with the query's schema.
    /// Returns `Ok(None)` whenever the plan cannot be trusted — the caller
    /// then runs the classic full-scan path, so a bad or stale index is
    /// never a correctness event, only a performance one.
    fn try_planned_get(
        &self,
        names: &[String],
        req: &Request,
        next: &dyn Handler,
        ctx: &InvocationContext,
        logical: Option<ByteRange>,
    ) -> Result<Option<Response>> {
        if names.first().map(String::as_str) != Some("csvfilter") {
            return Ok(None);
        }
        // An unparseable spec/schema goes down the classic path and fails
        // there with the proper invocation error.
        let Some(spec) = ctx
            .params
            .get("spec")
            .and_then(|h| PushdownSpec::from_header(h).ok())
        else {
            return Ok(None);
        };
        let Some(schema) = ctx.params.get("schema") else {
            return Ok(None);
        };
        let trace = req.headers.get(scoop_common::headers::TRACE).map(str::to_string);
        let mut head = Request::head(req.path.clone()).with_deadline(req.deadline);
        if let Some(t) = &trace {
            head = head.with_header(scoop_common::headers::TRACE, t.as_str());
        }
        let Ok(head_resp) = next.call(head) else {
            return Ok(None); // backend trouble: let the classic path surface it
        };
        if !head_resp.is_success() {
            return Ok(None);
        }
        let skip = self.engine.skip_stats();
        let stats = match ObjectStats::from_metadata(head_resp.headers.iter()) {
            Ok(Some(s)) => s,
            // Absent, undecodable, or corrupt stats: full scan.
            Ok(None) | Err(_) => {
                skip.record_fallback();
                return Ok(None);
            }
        };
        // Freshness: the stats must describe exactly the stored bytes
        // (overwrites change the etag, truncations change the length), and
        // the query must agree with the indexed schema — pruning evidence is
        // positional, so a different column layout would be unsound.
        let object_len = head_resp
            .headers
            .get("content-length")
            .and_then(|l| l.parse::<u64>().ok());
        let schema_matches = schema.split(',').map(str::trim).eq(stats
            .columns
            .iter()
            .map(String::as_str));
        if head_resp.headers.get("etag") != Some(stats.etag.as_str())
            || object_len != Some(stats.covered_len())
            || !schema_matches
            || spec.has_header != stats.has_header
        {
            skip.record_fallback();
            return Ok(None);
        }

        let (start, end) = logical.map(|r| (r.start, r.end)).unwrap_or((0, None));
        let plan = plan_ranges(&stats, spec.predicate.as_ref(), start, end);
        // Fetch every surviving coalesced range eagerly with a *bounded*
        // GET (the handler borrow cannot escape into the lazy body), then
        // chain the per-range filter streams lazily.
        let mut parts: Vec<ByteStream> = Vec::new();
        let mut scanned_bytes = 0u64;
        for &(rs, re) in &plan.ranges {
            // The first surviving block may begin before the requested
            // start; fetch from the start and let newline alignment drop
            // the unowned prefix, exactly like the classic path.
            let fetch_start = rs.max(start);
            let range_last = re.saturating_sub(1);
            let mut get = Request::get(req.path.clone())
                .with_deadline(req.deadline)
                .with_range(ByteRange { start: fetch_start, end: Some(range_last) });
            if let Some(t) = &trace {
                get = get.with_header(scoop_common::headers::TRACE, t.as_str());
            }
            let Ok(resp) = next.call(get) else {
                skip.record_fallback();
                return Ok(None);
            };
            if !resp.is_success() {
                skip.record_fallback();
                return Ok(None);
            }
            let expected = re.saturating_sub(fetch_start);
            scanned_bytes += expected;
            let body = stream::enforce_length(resp.body, expected);
            // A range cut at a block boundary past the request start begins
            // at a record the range *owns*: alignment discard would lose it.
            let range_ctx = InvocationContext {
                range_start: fetch_start,
                range_end: Some(end.map_or(range_last, |e| e.min(range_last))),
                pre_aligned: fetch_start > start,
                metrics: Arc::new(InvocationMetrics::default()),
                ..ctx.clone()
            };
            parts.push(self.engine.invoke("csvfilter", body, range_ctx)?);
        }
        let chained: ByteStream = Box::new(parts.into_iter().flatten());
        // Downstream pipeline stages see one concatenated derived stream,
        // same as the classic path.
        let rest: Vec<&str> = names
            .get(1..)
            .unwrap_or(&[])
            .iter()
            .map(String::as_str)
            .collect();
        let body = if rest.is_empty() {
            chained
        } else {
            let down_ctx = InvocationContext {
                range_start: 0,
                range_end: None,
                pre_aligned: false,
                metrics: Arc::new(InvocationMetrics::default()),
                ..ctx.clone()
            };
            self.engine.invoke_pipeline(&rest, chained, &down_ctx)?
        };
        skip.record_plan(plan.blocks_pruned, plan.blocks_scanned, plan.bytes_skipped);
        let mut out = Response { status: 200, headers: head_resp.headers, body };
        out.headers.remove("content-length");
        out.headers.remove("content-range");
        out.headers.set(
            scoop_common::headers::SCANNED_BYTES,
            scanned_bytes.to_string(),
        );
        out.headers.set(
            scoop_common::headers::SKIPPED_BYTES,
            stats.covered_len().saturating_sub(scanned_bytes).to_string(),
        );
        Ok(Some(out))
    }

    /// PUT with storlet (ETL path): transform the body once, then store the
    /// transformed object.
    fn run_put(
        &self,
        names: &[String],
        mut req: Request,
        next: &dyn Handler,
    ) -> Result<Response> {
        let _span = scoop_common::telemetry::span(
            req.headers.get(scoop_common::headers::TRACE),
            scoop_common::telemetry::layers::STORLET,
            format!("PUT pipeline [{}]", names.join(",")),
        );
        let ctx = Self::build_context(&req)?;
        let body = req.body.take().unwrap_or_default();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let transformed = self
            .engine
            .invoke_pipeline(&name_refs, stream::once(body), &ctx)?;
        let new_body = stream::collect(transformed)?;
        req.body = Some(new_body);
        // Indexing storlets publish metadata for the stored object (zone-map
        // stats chunks) through the context's out-channel; attach it to the
        // upstream PUT so it persists and replicates with the object.
        for (k, v) in ctx.extra_meta.lock().iter() {
            req.headers.set(k, v.clone());
        }
        let invoked = names.join(",");
        req.headers.remove(headers::RUN_STORLET);
        req.headers.remove(headers::PARAMETERS);
        req.headers.remove(headers::RUN_ON);
        let resp = next.call(req)?;
        Ok(resp.with_header(headers::INVOKED, invoked))
    }
}

impl Middleware for StorletMiddleware {
    fn name(&self) -> &str {
        "storlets"
    }

    fn handle(&self, mut req: Request, next: &dyn Handler) -> Result<Response> {
        let stage = req
            .headers
            .get(STAGE_HEADER)
            .unwrap_or(STAGE_OBJECT)
            .to_string();
        if stage == STAGE_PROXY {
            self.apply_policy(&mut req);
        }
        let Some(run_header) = req.headers.get(headers::RUN_STORLET).map(str::to_string)
        else {
            return next.call(req);
        };
        let names = Self::pipeline_names(&run_header);
        if names.is_empty() {
            return next.call(req);
        }
        match req.method {
            Method::Get => {
                // GET storlets honour the requested execution stage.
                let run_on = req
                    .headers
                    .get(headers::RUN_ON)
                    .unwrap_or(STAGE_OBJECT)
                    .to_string();
                if run_on != stage {
                    return next.call(req);
                }
                self.run_get(&names, req, next)
            }
            // PUT-path ETL always runs at the proxy, *before* replication
            // fan-out, so each replica stores the transformed object.
            Method::Put if stage == STAGE_PROXY => self.run_put(&names, req, next),
            _ => next.call(req),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use scoop_csv::{Predicate, PushdownSpec};
    use scoop_objectstore::middleware::Pipeline;
    use scoop_objectstore::{ObjectPath, SwiftCluster, SwiftConfig};

    const DATA: &[u8] = b"vid,date,index,city\n\
        m1,2015-01-03,100.5,Rotterdam\n\
        m2,2015-01-04,200.0,Paris\n\
        m3,2015-02-01,50.0,Utrecht\n";

    fn cluster_with_storlets() -> (Arc<SwiftCluster>, Arc<StorletEngine>, Arc<PolicyStore>) {
        let cluster = SwiftCluster::new(SwiftConfig::default()).unwrap();
        let engine = Arc::new(StorletEngine::with_builtin_filters());
        let policy = Arc::new(PolicyStore::new());
        let mut obj_pipe = Pipeline::new();
        obj_pipe.push(Arc::new(StorletMiddleware::new(engine.clone())));
        cluster.set_object_pipeline(obj_pipe);
        let mut proxy_pipe = Pipeline::new();
        proxy_pipe.push(Arc::new(StorletMiddleware::with_policy(
            engine.clone(),
            policy.clone(),
        )));
        cluster.set_proxy_pipeline(proxy_pipe);
        (cluster, engine, policy)
    }

    fn csv_params() -> HashMap<String, String> {
        let spec = PushdownSpec {
            columns: Some(vec!["vid".into(), "index".into()]),
            predicate: Some(Predicate::Like("date".into(), "2015-01%".into())),
            has_header: true,
        };
        let mut p = HashMap::new();
        p.insert("spec".to_string(), spec.to_header());
        p.insert("schema".to_string(), "vid,date,index,city".to_string());
        p
    }

    fn path() -> ObjectPath {
        ObjectPath::new("AUTH_gp", "meters", "jan.csv").unwrap()
    }

    #[test]
    fn params_roundtrip() {
        let mut p = HashMap::new();
        p.insert("spec".to_string(), "hdr=1;cols=a,b;pred=(eq c s:x=y)".to_string());
        p.insert("schema".to_string(), "a,b,c".to_string());
        let enc = encode_params(&p);
        assert_eq!(decode_params(&enc).unwrap(), p);
        assert!(decode_params("novalue").is_err());
        assert!(decode_params("k=%zz").is_err());
        assert!(decode_params("").unwrap().is_empty());
    }

    #[test]
    fn get_pushdown_at_object_stage() {
        let (cluster, engine, _) = cluster_with_storlets();
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        client
            .put_object("meters", "jan.csv", Bytes::from_static(DATA))
            .unwrap();

        let req = scoop_objectstore::Request::get(path())
            .with_header(headers::RUN_STORLET, "csvfilter")
            .with_header(headers::PARAMETERS, encode_params(&csv_params()));
        let resp = client.request(req).unwrap();
        assert_eq!(resp.headers.get(headers::INVOKED), Some("csvfilter"));
        assert_eq!(resp.read_body().unwrap(), "m1,100.5\nm2,200.0\n");
        assert_eq!(engine.stats("csvfilter").invocations, 1);
    }

    #[test]
    fn get_pushdown_at_proxy_stage() {
        let (cluster, engine, _) = cluster_with_storlets();
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        client
            .put_object("meters", "jan.csv", Bytes::from_static(DATA))
            .unwrap();
        let req = scoop_objectstore::Request::get(path())
            .with_header(headers::RUN_STORLET, "csvfilter")
            .with_header(headers::RUN_ON, "proxy")
            .with_header(headers::PARAMETERS, encode_params(&csv_params()));
        let resp = client.request(req).unwrap();
        assert_eq!(resp.read_body().unwrap(), "m1,100.5\nm2,200.0\n");
        assert_eq!(engine.stats("csvfilter").invocations, 1);
    }

    #[test]
    fn ranged_pushdown_is_record_aligned() {
        let (cluster, _, _) = cluster_with_storlets();
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        client
            .put_object("meters", "jan.csv", Bytes::from_static(DATA))
            .unwrap();
        // Collect ranged outputs over a 30-byte split plan; concatenation
        // must equal the unranged result.
        let whole = {
            let req = scoop_objectstore::Request::get(path())
                .with_header(headers::RUN_STORLET, "csvfilter")
                .with_header(headers::PARAMETERS, encode_params(&csv_params()));
            client.request(req).unwrap().read_body().unwrap()
        };
        let mut combined = Vec::new();
        for (s, e) in scoop_csv::split::plan_splits(DATA.len() as u64, 30) {
            let req = scoop_objectstore::Request::get(path())
                .with_header(headers::RUN_STORLET, "csvfilter")
                .with_header(headers::PARAMETERS, encode_params(&csv_params()))
                .with_header(
                    headers::STORLET_RANGE,
                    ByteRange { start: s, end: Some(e - 1) }.to_header(),
                );
            combined.extend_from_slice(&client.request(req).unwrap().read_body().unwrap());
        }
        assert_eq!(combined, whole);
    }

    #[test]
    fn put_path_etl_transforms_before_storage() {
        let (cluster, engine, _) = cluster_with_storlets();
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        let raw = b"vid,date,index\n m1 ,2015-01-03, 5 \nbad,row\n";
        let mut params = HashMap::new();
        params.insert("schema".to_string(), "vid,date,index".to_string());
        params.insert("header".to_string(), "1".to_string());
        let req = scoop_objectstore::Request::put(path(), Bytes::from_static(raw))
            .with_header(headers::RUN_STORLET, "etlcleanse")
            .with_header(headers::PARAMETERS, encode_params(&params));
        let resp = client.request(req).unwrap();
        assert_eq!(resp.status, 201);
        assert_eq!(resp.headers.get(headers::INVOKED), Some("etlcleanse"));
        // Stored object is the cleansed version.
        let got = client.get_object("meters", "jan.csv").unwrap();
        assert_eq!(got.read_body().unwrap(), "vid,date,index\nm1,2015-01-03,5\n");
        // ETL ran exactly once (at the proxy), not once per replica.
        assert_eq!(engine.stats("etlcleanse").invocations, 1);
    }

    #[test]
    fn pipelined_filters_compose() {
        let (cluster, engine, _) = cluster_with_storlets();
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        client
            .put_object("meters", "jan.csv", Bytes::from_static(DATA))
            .unwrap();
        let mut params = csv_params();
        params.insert("pattern".to_string(), "m1".to_string());
        // csvfilter then linegrep: filtered rows further narrowed to m1.
        let req = scoop_objectstore::Request::get(path())
            .with_header(headers::RUN_STORLET, "csvfilter,linegrep")
            .with_header(headers::PARAMETERS, encode_params(&params));
        let resp = client.request(req).unwrap();
        assert_eq!(resp.read_body().unwrap(), "m1,100.5\n");
        assert_eq!(engine.stats("csvfilter").invocations, 1);
        assert_eq!(engine.stats("linegrep").invocations, 1);
    }

    #[test]
    fn bronze_tenants_get_plain_ingestion() {
        let (cluster, engine, policy) = cluster_with_storlets();
        policy.set_tier("AUTH_gp", Tier::Bronze);
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        client
            .put_object("meters", "jan.csv", Bytes::from_static(DATA))
            .unwrap();
        let req = scoop_objectstore::Request::get(path())
            .with_header(headers::RUN_STORLET, "csvfilter")
            .with_header(headers::PARAMETERS, encode_params(&csv_params()));
        let resp = client.request(req).unwrap();
        // Full object returned; no storlet ran.
        assert_eq!(resp.read_body().unwrap(), DATA);
        assert_eq!(engine.stats("csvfilter").invocations, 0);
    }

    #[test]
    fn policy_auto_applies_put_etl() {
        let (cluster, engine, policy) = cluster_with_storlets();
        let mut params = HashMap::new();
        params.insert("schema".to_string(), "vid,date,index".to_string());
        params.insert("header".to_string(), "1".to_string());
        policy.add_rule(crate::policy::PolicyRule {
            account: "AUTH_gp".into(),
            container: Some("meters".into()),
            method: Method::Put,
            storlets: "etlcleanse".into(),
            params,
        });
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        // Plain PUT with no storlet headers — the policy injects the ETL.
        client
            .put_object(
                "meters",
                "jan.csv",
                Bytes::from_static(b"vid,date,index\n a ,b, 1 \n"),
            )
            .unwrap();
        let got = client.get_object("meters", "jan.csv").unwrap();
        assert_eq!(got.read_body().unwrap(), "vid,date,index\na,b,1\n");
        assert_eq!(engine.stats("etlcleanse").invocations, 1);
    }

    #[test]
    fn saturated_engine_sheds_with_degraded_marker() {
        let (cluster, engine, _) = cluster_with_storlets();
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        client
            .put_object("meters", "jan.csv", Bytes::from_static(DATA))
            .unwrap();
        // Zero slots: every pushdown GET is shed before touching the disk.
        engine.set_admission_limits(Some(0), 0);
        let req = scoop_objectstore::Request::get(path())
            .with_header(headers::RUN_STORLET, "csvfilter")
            .with_header(headers::PARAMETERS, encode_params(&csv_params()));
        let resp = client.request(req).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.headers.get(headers::DEGRADED), Some("csvfilter"));
        assert!(resp.headers.get(headers::INVOKED).is_none());
        assert_eq!(engine.stats("csvfilter").invocations, 0);
        assert!(engine.admission_sheds() > 0);
        // A plain GET (the client's fallback) is unaffected by shedding.
        let full = client.get_object("meters", "jan.csv").unwrap();
        assert_eq!(full.read_body().unwrap(), DATA);
        // PUT-path ETL keeps running even while saturated.
        let mut params = HashMap::new();
        params.insert("schema".to_string(), "vid,date,index".to_string());
        params.insert("header".to_string(), "1".to_string());
        let put = scoop_objectstore::Request::put(
            ObjectPath::new("AUTH_gp", "meters", "etl.csv").unwrap(),
            Bytes::from_static(b"vid,date,index\n a ,b, 1 \n"),
        )
        .with_header(headers::RUN_STORLET, "etlcleanse")
        .with_header(headers::PARAMETERS, encode_params(&params));
        assert_eq!(client.request(put).unwrap().status, 201);
        // Lifting the limit restores pushdown.
        engine.set_admission_limits(None, 0);
        let req = scoop_objectstore::Request::get(path())
            .with_header(headers::RUN_STORLET, "csvfilter")
            .with_header(headers::PARAMETERS, encode_params(&csv_params()));
        let resp = client.request(req).unwrap();
        assert_eq!(resp.headers.get(headers::INVOKED), Some("csvfilter"));
    }

    /// 400 rows with a clustered `index` column (0..400 ascending), indexed
    /// at PUT time into ~512-byte blocks.
    fn indexed_fixture() -> (Arc<SwiftCluster>, Arc<StorletEngine>, Vec<u8>) {
        let (cluster, engine, _) = cluster_with_storlets();
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        let mut data = Vec::from(&b"vid,date,index,city\n"[..]);
        for i in 0..400 {
            data.extend_from_slice(
                format!("m{i},2015-01-{:02},{i},city{}\n", i % 28 + 1, i % 7).as_bytes(),
            );
        }
        let mut params = HashMap::new();
        params.insert("schema".to_string(), "vid,date,index,city".to_string());
        params.insert("header".to_string(), "1".to_string());
        params.insert("block".to_string(), "512".to_string());
        let put = scoop_objectstore::Request::put(path(), Bytes::from(data.clone()))
            .with_header(headers::RUN_STORLET, "zoneindex")
            .with_header(headers::PARAMETERS, encode_params(&params));
        assert_eq!(client.request(put).unwrap().status, 201);
        (cluster, engine, data)
    }

    fn eq_index_spec(v: i64) -> PushdownSpec {
        PushdownSpec {
            columns: None,
            predicate: Some(Predicate::Eq("index".into(), scoop_csv::Value::Int(v))),
            has_header: true,
        }
    }

    fn pushdown_get(spec: &PushdownSpec) -> scoop_objectstore::Request {
        let mut p = HashMap::new();
        p.insert("spec".to_string(), spec.to_header());
        p.insert("schema".to_string(), "vid,date,index,city".to_string());
        scoop_objectstore::Request::get(path())
            .with_header(headers::RUN_STORLET, "csvfilter")
            .with_header(headers::PARAMETERS, encode_params(&p))
    }

    #[test]
    fn planned_get_skips_blocks_and_matches_full_scan() {
        let (cluster, engine, data) = indexed_fixture();
        let client = cluster.anonymous_client("AUTH_gp");
        let spec = eq_index_spec(123);
        let resp = client.request(pushdown_get(&spec)).unwrap();
        assert_eq!(resp.headers.get(headers::INVOKED), Some("csvfilter"));
        let scanned: u64 = resp
            .headers
            .get(scoop_common::headers::SCANNED_BYTES)
            .unwrap()
            .parse()
            .unwrap();
        let skipped: u64 = resp
            .headers
            .get(scoop_common::headers::SKIPPED_BYTES)
            .unwrap()
            .parse()
            .unwrap();
        let body = resp.read_body().unwrap();
        // Byte-identical to the reference full scan.
        let header: Vec<String> =
            "vid,date,index,city".split(',').map(str::to_string).collect();
        let (reference, _) =
            scoop_csv::filter::filter_buffer(&spec, &header, &data, true).unwrap();
        assert_eq!(&body[..], &reference[..]);
        assert!(body.starts_with(&b"m123,"[..]));
        // The point of the exercise: almost everything was skipped.
        assert_eq!(scanned + skipped, data.len() as u64);
        assert!(
            scanned < data.len() as u64 / 5,
            "scanned {scanned} of {} bytes",
            data.len()
        );
        let skip = engine.skip_stats();
        assert_eq!(skip.plans(), 1);
        assert_eq!(skip.fallbacks(), 0);
        assert!(skip.blocks_pruned() > 0);
        assert_eq!(skip.bytes_skipped(), skipped);
        // The filter never saw the pruned bytes.
        assert!(engine.stats("csvfilter").bytes_in <= scanned);
    }

    #[test]
    fn planned_get_empty_plan_yields_empty_success() {
        let (cluster, engine, _) = indexed_fixture();
        let client = cluster.anonymous_client("AUTH_gp");
        // No record can match index = -5: every block is pruned.
        let resp = client.request(pushdown_get(&eq_index_spec(-5))).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.headers.get(headers::INVOKED), Some("csvfilter"));
        assert_eq!(
            resp.headers.get(scoop_common::headers::SCANNED_BYTES),
            Some("0")
        );
        assert!(resp.read_body().unwrap().is_empty());
        assert_eq!(engine.skip_stats().plans(), 1);
        assert_eq!(engine.skip_stats().blocks_scanned(), 0);
    }

    #[test]
    fn planned_ranged_splits_match_whole_object() {
        let (cluster, _, data) = indexed_fixture();
        let client = cluster.anonymous_client("AUTH_gp");
        let spec = PushdownSpec {
            columns: Some(vec!["vid".into()]),
            predicate: Some(Predicate::Gt(
                "index".into(),
                scoop_csv::Value::Int(390),
            )),
            has_header: true,
        };
        let whole = client
            .request(pushdown_get(&spec))
            .unwrap()
            .read_body()
            .unwrap();
        for split in [997u64, 2048, 5000] {
            let mut combined = Vec::new();
            for (s, e) in scoop_csv::split::plan_splits(data.len() as u64, split) {
                let req = pushdown_get(&spec).with_header(
                    headers::STORLET_RANGE,
                    ByteRange { start: s, end: Some(e - 1) }.to_header(),
                );
                combined
                    .extend_from_slice(&client.request(req).unwrap().read_body().unwrap());
            }
            assert_eq!(combined, whole, "split={split}");
        }
    }

    #[test]
    fn stale_stats_fall_back_to_full_scan() {
        let (cluster, engine, _) = indexed_fixture();
        let client = cluster.anonymous_client("AUTH_gp");
        // Read the stored stats chunks, then overwrite the object with new
        // bytes while replaying the OLD stats as user metadata: present but
        // describing a different etag.
        let head = client
            .request(scoop_objectstore::Request::head(path()))
            .unwrap();
        let old_stats: Vec<(String, String)> = head
            .headers
            .iter()
            .filter(|(k, _)| k.starts_with(scoop_common::headers::SCOOP_STATS_PREFIX))
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        assert!(!old_stats.is_empty(), "fixture must be indexed");
        let new_data = b"vid,date,index,city\nm0,2016-01-01,123,newcity\n";
        let mut put = scoop_objectstore::Request::put(path(), Bytes::from_static(new_data));
        for (k, v) in &old_stats {
            put = put.with_header(k.as_str(), v.as_str());
        }
        assert_eq!(client.request(put).unwrap().status, 201);

        let before = engine.skip_stats().fallbacks();
        let spec = eq_index_spec(123);
        let resp = client.request(pushdown_get(&spec)).unwrap();
        assert_eq!(resp.headers.get(headers::INVOKED), Some("csvfilter"));
        // No skip headers: this was a full scan...
        assert!(resp.headers.get(scoop_common::headers::SKIPPED_BYTES).is_none());
        // ...with byte-identical results over the NEW object.
        let header: Vec<String> =
            "vid,date,index,city".split(',').map(str::to_string).collect();
        let (reference, _) =
            scoop_csv::filter::filter_buffer(&spec, &header, new_data, true).unwrap();
        assert_eq!(resp.read_body().unwrap(), reference);
        assert_eq!(engine.skip_stats().fallbacks(), before + 1);
    }

    #[test]
    fn planned_get_composes_with_downstream_pipeline() {
        let (cluster, _, data) = indexed_fixture();
        let client = cluster.anonymous_client("AUTH_gp");
        let spec = PushdownSpec {
            columns: None,
            predicate: Some(Predicate::Gt("index".into(), scoop_csv::Value::Int(395))),
            has_header: true,
        };
        let mut p = HashMap::new();
        p.insert("spec".to_string(), spec.to_header());
        p.insert("schema".to_string(), "vid,date,index,city".to_string());
        p.insert("pattern".to_string(), "m397".to_string());
        let req = scoop_objectstore::Request::get(path())
            .with_header(headers::RUN_STORLET, "csvfilter,linegrep")
            .with_header(headers::PARAMETERS, encode_params(&p));
        let resp = client.request(req).unwrap();
        assert_eq!(resp.headers.get(headers::INVOKED), Some("csvfilter,linegrep"));
        let body = resp.read_body().unwrap();
        let expected: Vec<u8> = data
            .split(|&b| b == b'\n')
            .filter(|l| l.starts_with(b"m397,"))
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect();
        assert_eq!(&body[..], &expected[..]);
    }

    #[test]
    fn unknown_storlet_fails_request() {
        let (cluster, _, _) = cluster_with_storlets();
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        client
            .put_object("meters", "jan.csv", Bytes::from_static(DATA))
            .unwrap();
        let req = scoop_objectstore::Request::get(path())
            .with_header(headers::RUN_STORLET, "nope");
        assert!(client.request(req).is_err());
    }
}
