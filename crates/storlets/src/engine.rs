//! Storlet registry and execution engine.
//!
//! The engine is what the paper calls the "rich and extensible compute layer":
//! administrators register storlet implementations ("a third party integrating
//! a new pushdown filter only needs to contribute the logic; the deployment
//! and execution of the filter is managed by the system"), and the engine
//! executes one or a *pipeline* of them on a request stream with sandbox-style
//! resource accounting standing in for the Docker isolation of the original.

use crate::api::{InvocationContext, InvocationMetrics, Storlet};
use parking_lot::RwLock;
use scoop_common::telemetry::{self, names};
use scoop_common::{ByteStream, Result, ScoopError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Aggregated per-storlet counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Completed invocations (streams fully consumed or dropped).
    pub invocations: u64,
    /// Total bytes read from objects by this storlet.
    pub bytes_in: u64,
    /// Total bytes produced.
    pub bytes_out: u64,
    /// Records examined.
    pub records_in: u64,
    /// Records emitted.
    pub records_out: u64,
    /// Total compute nanoseconds inside the storlet.
    pub busy_ns: u64,
}

#[derive(Default)]
struct StatsCell {
    inner: RwLock<EngineStats>,
}

/// Shared admission bookkeeping: concurrency limits, the live-invocation
/// gauge, and the shed counter.
#[derive(Debug)]
struct AdmissionState {
    /// `(max_concurrent, max_queue_depth)`; `None` = admission control off.
    limits: RwLock<Option<(usize, usize)>>,
    /// Pushdown requests whose output stream is still live.
    active: AtomicUsize,
    /// Pushdown requests refused for overload.
    sheds: AtomicU64,
    /// Registry mirror of `sheds` (registered at construction so snapshots
    /// carry the metric even before the first shed).
    sheds_global: telemetry::Counter,
    /// Registry gauge mirroring `active` for limit-bounded invocations.
    active_global: telemetry::Gauge,
}

impl Default for AdmissionState {
    fn default() -> Self {
        AdmissionState {
            limits: RwLock::new(None),
            active: AtomicUsize::new(0),
            sheds: AtomicU64::new(0),
            sheds_global: telemetry::counter(names::STORLETS_ADMISSION_SHEDS),
            active_global: telemetry::gauge(names::STORLETS_ACTIVE),
        }
    }
}

/// RAII admission slot for one pushdown request. Dropping it (normally via
/// the response stream it is attached to) releases the slot.
pub struct AdmissionPermit {
    state: Option<Arc<AdmissionState>>,
}

impl AdmissionPermit {
    /// Tie the permit's lifetime to a response stream: the slot frees when
    /// the consumer finishes (or abandons) the body.
    pub fn attach(self, stream: ByteStream) -> ByteStream {
        Box::new(PermittedStream { inner: stream, _permit: self })
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        if let Some(state) = &self.state {
            state.active.fetch_sub(1, Ordering::Relaxed);
            state.active_global.sub(1);
        }
    }
}

struct PermittedStream {
    inner: ByteStream,
    _permit: AdmissionPermit,
}

impl Iterator for PermittedStream {
    type Item = scoop_common::Result<bytes::Bytes>;
    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

/// Registry mirrors of the engine-wide invocation totals, registered at
/// engine construction so a telemetry snapshot always carries the metrics.
#[derive(Debug, Clone)]
struct StorletGlobals {
    invocations: telemetry::Counter,
    bytes_in: telemetry::Counter,
    bytes_out: telemetry::Counter,
}

impl Default for StorletGlobals {
    fn default() -> Self {
        StorletGlobals {
            invocations: telemetry::counter(names::STORLETS_INVOCATIONS),
            bytes_in: telemetry::counter(names::STORLETS_BYTES_IN),
            bytes_out: telemetry::counter(names::STORLETS_BYTES_OUT),
        }
    }
}

/// Counters for the block-range planner (store-side data skipping). Local
/// atomics feed test assertions; the registry mirrors are registered at
/// engine construction so snapshots always carry the metrics.
#[derive(Debug)]
pub struct SkipStats {
    plans: AtomicU64,
    fallbacks: AtomicU64,
    blocks_pruned: AtomicU64,
    blocks_scanned: AtomicU64,
    bytes_skipped: AtomicU64,
    plans_global: telemetry::Counter,
    fallbacks_global: telemetry::Counter,
    pruned_global: telemetry::Counter,
    scanned_global: telemetry::Counter,
    skipped_global: telemetry::Counter,
}

impl Default for SkipStats {
    fn default() -> Self {
        SkipStats {
            plans: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            blocks_pruned: AtomicU64::new(0),
            blocks_scanned: AtomicU64::new(0),
            bytes_skipped: AtomicU64::new(0),
            plans_global: telemetry::counter(names::STORLETS_SKIP_PLANS),
            fallbacks_global: telemetry::counter(names::STORLETS_PLAN_FALLBACKS),
            pruned_global: telemetry::counter(names::STORLETS_BLOCKS_PRUNED),
            scanned_global: telemetry::counter(names::STORLETS_BLOCKS_SCANNED),
            skipped_global: telemetry::counter(names::STORLETS_BYTES_SKIPPED),
        }
    }
}

impl SkipStats {
    /// Record one GET served through a zone-map block plan.
    pub fn record_plan(&self, pruned: u64, scanned: u64, bytes_skipped: u64) {
        self.plans.fetch_add(1, Ordering::Relaxed);
        self.plans_global.inc();
        self.blocks_pruned.fetch_add(pruned, Ordering::Relaxed);
        self.pruned_global.add(pruned);
        self.blocks_scanned.fetch_add(scanned, Ordering::Relaxed);
        self.scanned_global.add(scanned);
        self.bytes_skipped.fetch_add(bytes_skipped, Ordering::Relaxed);
        self.skipped_global.add(bytes_skipped);
    }

    /// Record one GET that wanted a plan but fell back to a full scan
    /// (stats absent, stale, or undecodable).
    pub fn record_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        self.fallbacks_global.inc();
    }

    /// GETs served via a block plan.
    pub fn plans(&self) -> u64 {
        self.plans.load(Ordering::Relaxed)
    }

    /// GETs that fell back to a full scan.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Blocks pruned by the planner.
    pub fn blocks_pruned(&self) -> u64 {
        self.blocks_pruned.load(Ordering::Relaxed)
    }

    /// Blocks scanned after planning.
    pub fn blocks_scanned(&self) -> u64 {
        self.blocks_scanned.load(Ordering::Relaxed)
    }

    /// Object bytes never read thanks to pruning.
    pub fn bytes_skipped(&self) -> u64 {
        self.bytes_skipped.load(Ordering::Relaxed)
    }
}

/// The engine: registry + execution + accounting.
pub struct StorletEngine {
    registry: RwLock<HashMap<String, Arc<dyn Storlet>>>,
    stats: RwLock<HashMap<String, Arc<StatsCell>>>,
    admission: Arc<AdmissionState>,
    globals: StorletGlobals,
    skip: SkipStats,
}

impl Default for StorletEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl StorletEngine {
    /// Create an empty engine.
    pub fn new() -> Self {
        StorletEngine {
            registry: RwLock::new(HashMap::new()),
            stats: RwLock::new(HashMap::new()),
            admission: Arc::new(AdmissionState::default()),
            globals: StorletGlobals::default(),
            skip: SkipStats::default(),
        }
    }

    /// Block-range planner counters.
    pub fn skip_stats(&self) -> &SkipStats {
        &self.skip
    }

    /// Bound concurrent pushdown execution: at most `max_concurrent` live
    /// invocations plus `max_queue_depth` burst slots; anything beyond is
    /// shed (the middleware answers 503 so clients fall back to a plain
    /// GET). `None` removes the bound.
    pub fn set_admission_limits(&self, max_concurrent: Option<usize>, max_queue_depth: usize) {
        *self.admission.limits.write() = max_concurrent.map(|c| (c, max_queue_depth));
    }

    /// Try to claim an admission slot for one pushdown request. `None`
    /// means the engine is saturated and the request must be shed.
    pub fn try_admit(&self) -> Option<AdmissionPermit> {
        let Some((max_concurrent, max_queue)) = *self.admission.limits.read() else {
            return Some(AdmissionPermit { state: None });
        };
        let cap = max_concurrent.saturating_add(max_queue);
        let mut current = self.admission.active.load(Ordering::Relaxed);
        loop {
            if current >= cap {
                self.admission.sheds.fetch_add(1, Ordering::Relaxed);
                self.admission.sheds_global.inc();
                return None;
            }
            match self.admission.active.compare_exchange(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.admission.active_global.add(1);
                    return Some(AdmissionPermit { state: Some(self.admission.clone()) });
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Pushdown requests shed for overload since startup.
    pub fn admission_sheds(&self) -> u64 {
        self.admission.sheds.load(Ordering::Relaxed)
    }

    /// Pushdown requests currently holding an admission slot.
    pub fn active_invocations(&self) -> usize {
        self.admission.active.load(Ordering::Relaxed)
    }

    /// Create an engine with all filters shipped in [`crate::filters`]
    /// pre-deployed.
    pub fn with_builtin_filters() -> Self {
        let engine = Self::new();
        engine.deploy(Arc::new(crate::filters::csv::CsvFilterStorlet));
        engine.deploy(Arc::new(crate::filters::grep::LineGrepStorlet));
        engine.deploy(Arc::new(crate::filters::compress::RleCompressStorlet));
        engine.deploy(Arc::new(crate::filters::compress::RleDecompressStorlet));
        engine.deploy(Arc::new(crate::filters::stats::AggregateStorlet));
        engine.deploy(Arc::new(crate::filters::etl::EtlCleanseStorlet));
        engine.deploy(Arc::new(crate::filters::metadata::MetadataExtractStorlet));
        engine.deploy(Arc::new(crate::filters::index::ZoneIndexStorlet));
        engine
    }

    /// Register (deploy) a storlet. Re-deploying replaces the previous
    /// implementation, mirroring Swift object overwrite semantics for
    /// deployed storlet code.
    pub fn deploy(&self, storlet: Arc<dyn Storlet>) {
        self.registry
            .write()
            .insert(storlet.name().to_string(), storlet);
    }

    /// Remove a deployed storlet.
    pub fn undeploy(&self, name: &str) -> bool {
        self.registry.write().remove(name).is_some()
    }

    /// Names of deployed storlets.
    pub fn deployed(&self) -> Vec<String> {
        let mut names: Vec<String> = self.registry.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Look up a deployed storlet.
    pub fn get(&self, name: &str) -> Result<Arc<dyn Storlet>> {
        self.registry
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ScoopError::Storlet(format!("storlet '{name}' is not deployed")))
    }

    fn stats_cell(&self, name: &str) -> Arc<StatsCell> {
        if let Some(c) = self.stats.read().get(name) {
            return c.clone();
        }
        self.stats
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Invoke a single storlet on a stream. Accounting is folded into the
    /// engine totals when the returned stream is dropped.
    pub fn invoke(
        &self,
        name: &str,
        input: ByteStream,
        ctx: InvocationContext,
    ) -> Result<ByteStream> {
        let storlet = self.get(name)?;
        let cell = self.stats_cell(name);
        let metrics = ctx.metrics.clone();
        let out = storlet.invoke(input, ctx)?;
        Ok(Box::new(AccountedStream {
            inner: Some(out),
            metrics,
            cell,
            globals: self.globals.clone(),
        }))
    }

    /// Invoke a pipeline of storlets, each consuming the previous one's
    /// output — the paper's "Scoop is able to execute several pushdown filters
    /// on a single request (i.e., pipelining)".
    pub fn invoke_pipeline(
        &self,
        names: &[&str],
        input: ByteStream,
        ctx: &InvocationContext,
    ) -> Result<ByteStream> {
        let mut stream = input;
        for (i, name) in names.iter().enumerate() {
            // Only the first storlet in the pipeline sees object byte-range
            // coordinates; downstream ones see a fresh derived stream.
            let stage_ctx = if i == 0 {
                ctx.clone()
            } else {
                InvocationContext {
                    range_start: 0,
                    range_end: None,
                    pre_aligned: false,
                    metrics: Arc::new(InvocationMetrics::default()),
                    ..ctx.clone()
                }
            };
            stream = self.invoke(name, stream, stage_ctx)?;
        }
        Ok(stream)
    }

    /// Aggregated stats for one storlet.
    pub fn stats(&self, name: &str) -> EngineStats {
        self.stats
            .read()
            .get(name)
            .map(|c| *c.inner.read())
            .unwrap_or_default()
    }

    /// Aggregated stats over all storlets.
    pub fn total_stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for cell in self.stats.read().values() {
            let s = *cell.inner.read();
            total.invocations += s.invocations;
            total.bytes_in += s.bytes_in;
            total.bytes_out += s.bytes_out;
            total.records_in += s.records_in;
            total.records_out += s.records_out;
            total.busy_ns += s.busy_ns;
        }
        total
    }

    /// Reset all counters (between experiment runs).
    pub fn reset_stats(&self) {
        for cell in self.stats.read().values() {
            *cell.inner.write() = EngineStats::default();
        }
    }
}

impl std::fmt::Debug for StorletEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorletEngine")
            .field("deployed", &self.deployed())
            .finish()
    }
}

/// Stream wrapper that folds invocation metrics into engine totals when the
/// stream is dropped (fully consumed or abandoned early).
struct AccountedStream {
    inner: Option<ByteStream>,
    metrics: Arc<InvocationMetrics>,
    cell: Arc<StatsCell>,
    globals: StorletGlobals,
}

impl Iterator for AccountedStream {
    type Item = scoop_common::Result<bytes::Bytes>;
    fn next(&mut self) -> Option<Self::Item> {
        self.inner.as_mut()?.next()
    }
}

impl Drop for AccountedStream {
    fn drop(&mut self) {
        // Drop the inner stream first so lazy storlets flush their counters.
        self.inner = None;
        let bytes_in = self.metrics.bytes_in.load(Ordering::Relaxed);
        let bytes_out = self.metrics.bytes_out.load(Ordering::Relaxed);
        let mut s = self.cell.inner.write();
        s.invocations += 1;
        s.bytes_in += bytes_in;
        s.bytes_out += bytes_out;
        s.records_in += self.metrics.records_in.load(Ordering::Relaxed);
        s.records_out += self.metrics.records_out.load(Ordering::Relaxed);
        s.busy_ns += self.metrics.busy_ns.load(Ordering::Relaxed);
        drop(s);
        self.globals.invocations.inc();
        self.globals.bytes_in.add(bytes_in);
        self.globals.bytes_out.add(bytes_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use scoop_common::stream;

    /// Upper-cases its input; counts bytes through ctx metrics.
    struct Upper;
    impl Storlet for Upper {
        fn name(&self) -> &str {
            "upper"
        }
        fn invoke(&self, input: ByteStream, ctx: InvocationContext) -> Result<ByteStream> {
            let m = ctx.metrics.clone();
            Ok(Box::new(input.map(move |chunk| {
                let chunk = chunk?;
                m.add(&m.bytes_in, chunk.len() as u64);
                m.add(&m.bytes_out, chunk.len() as u64);
                Ok(Bytes::from(
                    chunk.iter().map(|b| b.to_ascii_uppercase()).collect::<Vec<u8>>(),
                ))
            })))
        }
    }

    /// Drops vowels.
    struct DropVowels;
    impl Storlet for DropVowels {
        fn name(&self) -> &str {
            "novowels"
        }
        fn invoke(&self, input: ByteStream, ctx: InvocationContext) -> Result<ByteStream> {
            let m = ctx.metrics.clone();
            Ok(Box::new(input.map(move |chunk| {
                let chunk = chunk?;
                m.add(&m.bytes_in, chunk.len() as u64);
                let out: Vec<u8> = chunk
                    .iter()
                    .copied()
                    .filter(|b| !b"aeiouAEIOU".contains(b))
                    .collect();
                m.add(&m.bytes_out, out.len() as u64);
                Ok(Bytes::from(out))
            })))
        }
    }

    fn engine() -> StorletEngine {
        let e = StorletEngine::new();
        e.deploy(Arc::new(Upper));
        e.deploy(Arc::new(DropVowels));
        e
    }

    #[test]
    fn deploy_lookup_undeploy() {
        let e = engine();
        assert_eq!(e.deployed(), vec!["novowels", "upper"]);
        assert!(e.get("upper").is_ok());
        assert!(e.get("ghost").is_err());
        assert!(e.undeploy("upper"));
        assert!(!e.undeploy("upper"));
        assert!(e.get("upper").is_err());
    }

    #[test]
    fn invoke_transforms_and_accounts() {
        let e = engine();
        let ctx = InvocationContext::new(HashMap::new());
        let out = e
            .invoke("upper", stream::once(Bytes::from_static(b"scoop")), ctx)
            .unwrap();
        assert_eq!(stream::collect(out).unwrap(), "SCOOP");
        let s = e.stats("upper");
        assert_eq!(s.invocations, 1);
        assert_eq!(s.bytes_in, 5);
        assert_eq!(s.bytes_out, 5);
    }

    #[test]
    fn pipeline_composes_in_order() {
        let e = engine();
        let ctx = InvocationContext::new(HashMap::new());
        let out = e
            .invoke_pipeline(
                &["novowels", "upper"],
                stream::once(Bytes::from_static(b"analytics")),
                &ctx,
            )
            .unwrap();
        assert_eq!(stream::collect(out).unwrap(), "NLYTCS");
        assert_eq!(e.stats("novowels").invocations, 1);
        assert_eq!(e.stats("upper").invocations, 1);
        // Cross-check: total stats sum both.
        assert_eq!(e.total_stats().invocations, 2);
    }

    #[test]
    fn abandoned_stream_still_accounted() {
        let e = engine();
        let ctx = InvocationContext::new(HashMap::new());
        let mut out = e
            .invoke(
                "upper",
                stream::chunked(Bytes::from(vec![b'x'; 10_000]), 100),
                ctx,
            )
            .unwrap();
        // Consume only the first chunk, then drop.
        let first = out.next().unwrap().unwrap();
        assert_eq!(first.len(), 100);
        drop(out);
        let s = e.stats("upper");
        assert_eq!(s.invocations, 1);
        assert_eq!(s.bytes_in, 100);
    }

    #[test]
    fn reset_clears_counters() {
        let e = engine();
        let ctx = InvocationContext::new(HashMap::new());
        let out = e
            .invoke("upper", stream::once(Bytes::from_static(b"abc")), ctx)
            .unwrap();
        stream::collect(out).unwrap();
        e.reset_stats();
        assert_eq!(e.stats("upper"), EngineStats::default());
    }

    #[test]
    fn admission_limits_shed_and_release() {
        let e = engine();
        e.set_admission_limits(Some(1), 0);
        let permit = e.try_admit().expect("first slot admitted");
        let ctx = InvocationContext::new(HashMap::new());
        let out = e
            .invoke("upper", stream::once(Bytes::from_static(b"busy")), ctx)
            .unwrap();
        let held = permit.attach(out);
        // Engine saturated while the stream is live.
        assert!(e.try_admit().is_none());
        assert_eq!(e.admission_sheds(), 1);
        assert_eq!(e.active_invocations(), 1);
        // Consuming/dropping the stream frees the slot.
        drop(held);
        assert_eq!(e.active_invocations(), 0);
        assert!(e.try_admit().is_some());
        // Queue depth grants burst slots; removing limits disables control.
        e.set_admission_limits(Some(0), 2);
        let a = e.try_admit().unwrap();
        let b = e.try_admit().unwrap();
        assert!(e.try_admit().is_none());
        drop((a, b));
        e.set_admission_limits(None, 0);
        assert!(e.try_admit().is_some());
    }

    #[test]
    fn builtin_filters_deploy() {
        let e = StorletEngine::with_builtin_filters();
        for name in [
            "csvfilter",
            "linegrep",
            "rlecompress",
            "rledecompress",
            "aggregate",
            "etlcleanse",
            "metaextract",
            "zoneindex",
        ] {
            assert!(e.get(name).is_ok(), "{name} should be deployed");
        }
    }
}
