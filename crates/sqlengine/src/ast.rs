//! The SQL abstract syntax tree.

use scoop_csv::Value;
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// Render the SQL token.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `SUM(expr)`
    Sum,
    /// `COUNT(expr)` / `COUNT(*)`
    Count,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
    /// `AVG(expr)`
    Avg,
    /// `FIRST_VALUE(expr)` — first value in encounter order.
    First,
}

impl AggFunc {
    /// Parse a function name as an aggregate.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_lowercase().as_str() {
            "sum" => Some(AggFunc::Sum),
            "count" => Some(AggFunc::Count),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "avg" => Some(AggFunc::Avg),
            "first_value" | "first" => Some(AggFunc::First),
            _ => None,
        }
    }

    /// SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
            AggFunc::First => "first_value",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference (stored lowercased by the parser).
    Column(String),
    /// Literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT expr`
    Not(Box<Expr>),
    /// `expr [NOT] LIKE 'pattern'`
    Like {
        /// Matched expression.
        expr: Box<Expr>,
        /// SQL LIKE pattern.
        pattern: String,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, ...)`
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// Scalar function call (`SUBSTRING`, `UPPER`, ...).
    Func {
        /// Lowercased function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Aggregate call. `arg == None` encodes `COUNT(*)`.
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Argument (None for `COUNT(*)`).
        arg: Option<Box<Expr>>,
    },
    /// `*` in `SELECT *`.
    Star,
}

impl Expr {
    /// All column names referenced (lowercased).
    pub fn columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(c) => {
                if !out.contains(c) {
                    out.push(c.clone());
                }
            }
            Expr::Literal(_) | Expr::Star => {}
            Expr::Binary { left, right, .. } => {
                left.columns(out);
                right.columns(out);
            }
            Expr::Not(e) => e.columns(out),
            Expr::Like { expr, .. } => expr.columns(out),
            Expr::InList { expr, list, .. } => {
                expr.columns(out);
                for e in list {
                    e.columns(out);
                }
            }
            Expr::IsNull { expr, .. } => expr.columns(out),
            Expr::Func { args, .. } => {
                for a in args {
                    a.columns(out);
                }
            }
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.columns(out);
                }
            }
        }
    }

    /// True when the expression (transitively) contains an aggregate call.
    pub fn contains_agg(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Column(_) | Expr::Literal(_) | Expr::Star => false,
            Expr::Binary { left, right, .. } => left.contains_agg() || right.contains_agg(),
            Expr::Not(e) => e.contains_agg(),
            Expr::Like { expr, .. } => expr.contains_agg(),
            Expr::InList { expr, list, .. } => {
                expr.contains_agg() || list.iter().any(Expr::contains_agg)
            }
            Expr::IsNull { expr, .. } => expr.contains_agg(),
            Expr::Func { args, .. } => args.iter().any(Expr::contains_agg),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Like { expr, pattern, negated } => {
                write!(f, "({expr} {}LIKE '{pattern}')", if *negated { "NOT " } else { "" })
            }
            Expr::InList { expr, list, negated } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::Func { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Agg { func, arg } => match arg {
                Some(a) => write!(f, "{}({a})", func.name()),
                None => write!(f, "{}(*)", func.name()),
            },
            Expr::Star => write!(f, "*"),
        }
    }
}

/// One SELECT-list item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: Expr,
    /// Optional `AS alias`.
    pub alias: Option<String>,
}

impl SelectItem {
    /// The output column name: alias, or a rendering of the expression.
    pub fn output_name(&self) -> String {
        match &self.alias {
            Some(a) => a.clone(),
            None => self.expr.to_string(),
        }
    }
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: Expr,
    /// Descending order.
    pub desc: bool,
}

/// A parsed SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// SELECT list.
    pub items: Vec<SelectItem>,
    /// FROM table name (lowercased).
    pub table: String,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate (post-aggregation filter).
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

impl Query {
    /// True when the query aggregates (GROUP BY present or any aggregate in
    /// the select list).
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty() || self.items.iter().any(|i| i.expr.contains_agg())
    }

    /// All referenced column names; `None` when `SELECT *` requires all.
    pub fn referenced_columns(&self) -> Option<Vec<String>> {
        if self.items.iter().any(|i| matches!(i.expr, Expr::Star)) {
            return None;
        }
        let mut cols = Vec::new();
        for item in &self.items {
            item.expr.columns(&mut cols);
        }
        if let Some(w) = &self.where_clause {
            w.columns(&mut cols);
        }
        for g in &self.group_by {
            g.columns(&mut cols);
        }
        if let Some(h) = &self.having {
            h.columns(&mut cols);
        }
        for o in &self.order_by {
            o.expr.columns(&mut cols);
        }
        Some(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(c: &str) -> Expr {
        Expr::Column(c.into())
    }

    #[test]
    fn columns_dedup_and_walk_nested() {
        let e = Expr::Binary {
            op: BinOp::And,
            left: Box::new(Expr::Like {
                expr: Box::new(col("date")),
                pattern: "2015%".into(),
                negated: false,
            }),
            right: Box::new(Expr::Binary {
                op: BinOp::Gt,
                left: Box::new(Expr::Func {
                    name: "substring".into(),
                    args: vec![col("date"), Expr::Literal(Value::Int(0))],
                }),
                right: Box::new(col("vid")),
            }),
        };
        let mut cols = Vec::new();
        e.columns(&mut cols);
        assert_eq!(cols, vec!["date".to_string(), "vid".to_string()]);
    }

    #[test]
    fn contains_agg_detects_nesting() {
        let agg = Expr::Agg { func: AggFunc::Sum, arg: Some(Box::new(col("index"))) };
        let nested = Expr::Binary {
            op: BinOp::Div,
            left: Box::new(agg.clone()),
            right: Box::new(Expr::Literal(Value::Int(100))),
        };
        assert!(agg.contains_agg());
        assert!(nested.contains_agg());
        assert!(!col("x").contains_agg());
    }

    #[test]
    fn output_names() {
        let item = SelectItem {
            expr: Expr::Agg { func: AggFunc::Sum, arg: Some(Box::new(col("index"))) },
            alias: Some("max".into()),
        };
        assert_eq!(item.output_name(), "max");
        let bare = SelectItem { expr: col("vid"), alias: None };
        assert_eq!(bare.output_name(), "vid");
    }

    #[test]
    fn referenced_columns_covers_all_clauses() {
        let q = Query {
            distinct: false,
            items: vec![SelectItem { expr: col("a"), alias: None }],
            table: "t".into(),
            where_clause: Some(Expr::IsNull { expr: Box::new(col("b")), negated: false }),
            group_by: vec![col("c")],
            having: Some(Expr::IsNull { expr: Box::new(col("e")), negated: true }),
            order_by: vec![OrderItem { expr: col("d"), desc: true }],
            limit: None,
        };
        assert_eq!(
            q.referenced_columns().unwrap(),
            vec!["a", "b", "c", "e", "d"]
        );
        let star = Query {
            items: vec![SelectItem { expr: Expr::Star, alias: None }],
            ..q
        };
        assert!(star.referenced_columns().is_none());
    }
}
