//! Recursive-descent SQL parser.
//!
//! Grammar (the GridPocket dialect from Table I, plus the usual extras):
//!
//! ```text
//! query      := SELECT [DISTINCT] item (',' item)* FROM ident
//!               [WHERE expr] [GROUP BY expr (',' expr)*] [HAVING expr]
//!               [ORDER BY order (',' order)*] [LIMIT int] [';']
//! item       := '*' | expr [[AS] ident]
//! order      := expr [ASC|DESC]
//! expr       := or_expr
//! or_expr    := and_expr (OR and_expr)*
//! and_expr   := not_expr (AND not_expr)*
//! not_expr   := NOT not_expr | predicate
//! predicate  := additive [cmp additive | [NOT] LIKE str | [NOT] IN (...) |
//!               IS [NOT] NULL]
//! additive   := multiplicative (('+'|'-') multiplicative)*
//! multiplicative := unary (('*'|'/'|'%') unary)*
//! unary      := '-' unary | primary
//! primary    := literal | ident | func '(' args ')' | '(' expr ')'
//! ```

use crate::ast::{AggFunc, BinOp, Expr, OrderItem, Query, SelectItem};
use crate::lexer::{tokenize, Symbol, Token};
use scoop_common::{Result, ScoopError};
use scoop_csv::Value;

/// Parse a single SELECT statement.
///
/// ```
/// let q = scoop_sql::parse(
///     "SELECT vid, sum(index) as total FROM largeMeter \
///      WHERE date LIKE '2015-01%' GROUP BY vid ORDER BY vid",
/// )
/// .unwrap();
/// assert_eq!(q.table, "largemeter");
/// assert!(q.is_aggregate());
/// ```
pub fn parse(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    // Allow a trailing semicolon.
    if p.peek() == Some(&Token::Symbol(Symbol::Semicolon)) {
        p.pos += 1;
    }
    if p.pos != p.tokens.len() {
        return Err(ScoopError::Sql(format!(
            "unexpected trailing tokens starting at {:?}",
            p.peek()
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Words that terminate an expression list.
const CLAUSE_KEYWORDS: &[&str] = &[
    "from", "where", "group", "having", "order", "limit", "asc", "desc", "by", "and", "or",
    "as",
];

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(ScoopError::Sql(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, s: Symbol) -> bool {
        if self.peek() == Some(&Token::Symbol(s)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Symbol) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(ScoopError::Sql(format!(
                "expected {s:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s.to_ascii_lowercase()),
            other => Err(ScoopError::Sql(format!("expected identifier, found {other:?}"))),
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = vec![self.select_item()?];
        while self.eat_symbol(Symbol::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.expr()?);
            while self.eat_symbol(Symbol::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(ScoopError::Sql(format!(
                        "expected LIMIT count, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query { distinct, items, table, where_clause, group_by, having, order_by, limit })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol(Symbol::Star) {
            return Ok(SelectItem { expr: Expr::Star, alias: None });
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            // Bare alias: an identifier that is not a clause keyword.
            match self.peek() {
                Some(Token::Ident(s))
                    if !CLAUSE_KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)) =>
                {
                    Some(self.ident()?)
                }
                _ => None,
            }
        };
        Ok(SelectItem { expr, alias })
    }

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::Binary { op: BinOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::Binary { op: BinOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // Comparison operators.
        let cmp = match self.peek() {
            Some(Token::Symbol(Symbol::Eq)) => Some(BinOp::Eq),
            Some(Token::Symbol(Symbol::Ne)) => Some(BinOp::Ne),
            Some(Token::Symbol(Symbol::Lt)) => Some(BinOp::Lt),
            Some(Token::Symbol(Symbol::Le)) => Some(BinOp::Le),
            Some(Token::Symbol(Symbol::Gt)) => Some(BinOp::Gt),
            Some(Token::Symbol(Symbol::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = cmp {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::Binary { op, left: Box::new(left), right: Box::new(right) });
        }
        // [NOT] LIKE / IN, IS [NOT] NULL.
        let negated = if self.peek().is_some_and(|t| t.is_kw("not")) {
            // Only treat as postfix NOT when followed by LIKE/IN.
            match self.tokens.get(self.pos + 1) {
                Some(t) if t.is_kw("like") || t.is_kw("in") => {
                    self.pos += 1;
                    true
                }
                _ => false,
            }
        } else {
            false
        };
        if self.eat_kw("like") {
            match self.next() {
                Some(Token::Str(pattern)) => {
                    return Ok(Expr::Like { expr: Box::new(left), pattern, negated })
                }
                other => {
                    return Err(ScoopError::Sql(format!(
                        "expected LIKE pattern string, found {other:?}"
                    )))
                }
            }
        }
        if self.eat_kw("in") {
            self.expect_symbol(Symbol::LParen)?;
            let mut list = vec![self.expr()?];
            while self.eat_symbol(Symbol::Comma) {
                list.push(self.expr()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if negated {
            return Err(ScoopError::Sql("dangling NOT".into()));
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Symbol::Plus)) => BinOp::Add,
                Some(Token::Symbol(Symbol::Minus)) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Symbol::Star)) => BinOp::Mul,
                Some(Token::Symbol(Symbol::Slash)) => BinOp::Div,
                Some(Token::Symbol(Symbol::Percent)) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol(Symbol::Minus) {
            let inner = self.unary()?;
            // Fold negative literals.
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Binary {
                    op: BinOp::Sub,
                    left: Box::new(Expr::Literal(Value::Int(0))),
                    right: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Expr::Literal(Value::Int(i))),
            Some(Token::Float(f)) => Ok(Expr::Literal(Value::Float(f))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Str(s.into()))),
            Some(Token::Symbol(Symbol::LParen)) => {
                let e = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                let lower = name.to_ascii_lowercase();
                if lower == "null" {
                    return Ok(Expr::Literal(Value::Null));
                }
                if self.eat_symbol(Symbol::LParen) {
                    // Function call (aggregate or scalar).
                    if let Some(func) = AggFunc::from_name(&lower) {
                        if func == AggFunc::Count && self.eat_symbol(Symbol::Star) {
                            self.expect_symbol(Symbol::RParen)?;
                            return Ok(Expr::Agg { func, arg: None });
                        }
                        let arg = self.expr()?;
                        self.expect_symbol(Symbol::RParen)?;
                        return Ok(Expr::Agg { func, arg: Some(Box::new(arg)) });
                    }
                    let mut args = Vec::new();
                    if !self.eat_symbol(Symbol::RParen) {
                        args.push(self.expr()?);
                        while self.eat_symbol(Symbol::Comma) {
                            args.push(self.expr()?);
                        }
                        self.expect_symbol(Symbol::RParen)?;
                    }
                    return Ok(Expr::Func { name: lower, args });
                }
                Ok(Expr::Column(lower))
            }
            other => Err(ScoopError::Sql(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_showmapcons() {
        let q = parse(
            "SELECT vid, sum(index) as max, first_value(lat) as lat, \
             first_value(long) as long, first_value(state) as state \
             FROM largeMeter WHERE date LIKE '2015-01%' \
             GROUP BY SUBSTRING(date, 0, 7), vid \
             ORDER BY SUBSTRING(date, 0, 7), vid",
        )
        .unwrap();
        assert_eq!(q.table, "largemeter");
        assert_eq!(q.items.len(), 5);
        assert_eq!(q.items[1].output_name(), "max");
        assert!(q.is_aggregate());
        assert_eq!(q.group_by.len(), 2);
        assert_eq!(q.order_by.len(), 2);
        assert!(matches!(q.where_clause, Some(Expr::Like { .. })));
    }

    #[test]
    fn parses_showgraphhchp() {
        let q = parse(
            "SELECT SUBSTRING(date, 0, 10) as sDate, vid, min(sumHC) as minHC, \
             max(sumHC) as maxHC, min(sumHP) as minHP, max(sumHP) as maxHP \
             FROM largeMeter WHERE state LIKE 'FRA' AND date LIKE '2015-01-%' \
             GROUP BY SUBSTRING(date, 0, 10), vid ORDER BY SUBSTRING(date, 0, 10), vid",
        )
        .unwrap();
        assert_eq!(q.items.len(), 6);
        let cols = q.referenced_columns().unwrap();
        assert!(cols.contains(&"sumhc".to_string()));
        assert!(cols.contains(&"state".to_string()));
    }

    #[test]
    fn parses_operators_and_precedence() {
        let q = parse("SELECT a FROM t WHERE a + 1 * 2 >= 3 AND b = 'x' OR c < 4").unwrap();
        // OR is outermost.
        let Some(Expr::Binary { op: BinOp::Or, left, .. }) = q.where_clause else {
            panic!("expected OR at top");
        };
        let Expr::Binary { op: BinOp::And, left: and_left, .. } = *left else {
            panic!("expected AND under OR");
        };
        // a + (1*2) >= 3
        let Expr::Binary { op: BinOp::Ge, left: add, .. } = *and_left else {
            panic!("expected >=");
        };
        assert!(matches!(*add, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn parses_in_not_like_is_null_limit() {
        let q = parse(
            "SELECT * FROM t WHERE a IN (1, 2.5, 'x') AND b NOT LIKE 'z%' \
             AND c IS NOT NULL AND d IS NULL AND e NOT IN (7) LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.limit, Some(10));
        assert!(q.referenced_columns().is_none());
        let w = q.where_clause.unwrap().to_string();
        assert!(w.contains("NOT LIKE"));
        assert!(w.contains("IS NOT NULL"));
        assert!(w.contains("NOT IN"));
    }

    #[test]
    fn parses_count_star_and_negatives() {
        let q = parse("SELECT count(*), -5 as neg, -x FROM t").unwrap();
        assert!(matches!(q.items[0].expr, Expr::Agg { func: AggFunc::Count, arg: None }));
        assert_eq!(q.items[1].expr, Expr::Literal(Value::Int(-5)));
        assert!(matches!(q.items[2].expr, Expr::Binary { op: BinOp::Sub, .. }));
    }

    #[test]
    fn bare_alias_and_desc() {
        let q = parse("SELECT vid meter FROM t ORDER BY vid DESC, x ASC").unwrap();
        assert_eq!(q.items[0].output_name(), "meter");
        assert!(q.order_by[0].desc);
        assert!(!q.order_by[1].desc);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t LIMIT x").is_err());
        assert!(parse("SELECT a FROM t garbage").is_err());
        assert!(parse("SELECT a FROM t WHERE a LIKE b").is_err());
        assert!(parse("SELECT sum( FROM t").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse("SELECT a FROM t;").is_ok());
    }
}
