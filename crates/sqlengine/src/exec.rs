//! Query execution over row streams.
//!
//! Two entry points:
//!
//! * [`execute`] / [`execute_with_where`] — run a whole query on one row
//!   iterator (the driver-only path, used for correctness references).
//! * [`Aggregator`] — Spark-style two-phase aggregation: workers fold their
//!   partition's rows into a [`PartialAgg`] (map-side combine), the driver
//!   merges partials and finalizes. The compute crate drives this.
//!
//! NULL handling follows SQL three-valued logic, arranged to agree exactly
//! with the raw-field evaluation in `scoop_csv::filter` so pushdown is
//! transparent.

use crate::ast::{BinOp, Expr, Query, SelectItem};
use crate::functions::{eval_scalar, AggState};
use scoop_common::{Result, ScoopError};
use scoop_csv::pushdown::like_match;
use scoop_csv::{Schema, Value};
use std::cmp::Ordering;
use std::collections::HashMap;

/// A materialized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Render as CSV (header + rows) — handy for result comparison and docs.
    pub fn to_csv(&self) -> String {
        let mut w = scoop_csv::CsvWriter::new();
        let refs: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        w.write_strs(&refs);
        for row in &self.rows {
            w.write_row(row);
        }
        String::from_utf8_lossy(&w.into_bytes()).into_owned()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Structural equality with a relative tolerance on floats. Two-phase
    /// aggregation sums floats in partition order, so results from different
    /// partitionings of the same data can differ in the last ulps.
    pub fn approx_eq(&self, other: &ResultSet, rel_tol: f64) -> bool {
        if self.columns != other.columns || self.rows.len() != other.rows.len() {
            return false;
        }
        self.rows.iter().zip(&other.rows).all(|(a, b)| {
            a.len() == b.len()
                && a.iter().zip(b).all(|(x, y)| match (x.as_f64(), y.as_f64()) {
                    (Some(fx), Some(fy)) => {
                        let scale = fx.abs().max(fy.abs()).max(1.0);
                        (fx - fy).abs() <= rel_tol * scale
                    }
                    _ => x == y,
                })
        })
    }
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

/// Evaluate a scalar expression against a row. Aggregate nodes are an error
/// here; aggregated queries substitute them before calling.
pub fn eval(expr: &Expr, row: &[Value], schema: &Schema) -> Result<Value> {
    match expr {
        Expr::Column(name) => {
            let idx = schema.resolve(name)?;
            Ok(row.get(idx).cloned().unwrap_or(Value::Null))
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Star => Err(ScoopError::Sql("'*' outside COUNT(*)".into())),
        Expr::Agg { .. } => Err(ScoopError::Sql(
            "aggregate used outside aggregation context".into(),
        )),
        Expr::Func { name, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval(a, row, schema))
                .collect::<Result<_>>()?;
            eval_scalar(name, &vals)
        }
        Expr::Binary { op, left, right } => match op {
            BinOp::And | BinOp::Or => Ok(tri_to_value(eval_pred(expr, row, schema)?)),
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                Ok(tri_to_value(eval_pred(expr, row, schema)?))
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                let l = eval(left, row, schema)?;
                let r = eval(right, row, schema)?;
                Ok(arith(*op, &l, &r))
            }
        },
        Expr::Not(_) | Expr::Like { .. } | Expr::InList { .. } | Expr::IsNull { .. } => {
            Ok(tri_to_value(eval_pred(expr, row, schema)?))
        }
    }
}

fn tri_to_value(t: Option<bool>) -> Value {
    match t {
        None => Value::Null,
        Some(true) => Value::Int(1),
        Some(false) => Value::Int(0),
    }
}

/// Arithmetic with SQL NULL propagation; non-numeric operands yield NULL
/// (matching Spark's permissive casts on semi-structured data).
fn arith(op: BinOp, l: &Value, r: &Value) -> Value {
    let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
        return Value::Null;
    };
    let both_int = matches!(l, Value::Int(_)) && matches!(r, Value::Int(_));
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Mod if both_int => {
            let (x, y) = (a as i64, b as i64);
            match op {
                BinOp::Add => Value::Int(x.wrapping_add(y)),
                BinOp::Sub => Value::Int(x.wrapping_sub(y)),
                BinOp::Mul => Value::Int(x.wrapping_mul(y)),
                BinOp::Mod => {
                    if y == 0 {
                        Value::Null
                    } else {
                        Value::Int(x % y)
                    }
                }
                _ => unreachable!(),
            }
        }
        BinOp::Add => Value::Float(a + b),
        BinOp::Sub => Value::Float(a - b),
        BinOp::Mul => Value::Float(a * b),
        BinOp::Div => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float(a / b)
            }
        }
        BinOp::Mod => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float(a % b)
            }
        }
        _ => unreachable!("arith called with comparison op"),
    }
}

/// Three-valued predicate evaluation (Kleene logic for AND/OR/NOT).
pub fn eval_pred(expr: &Expr, row: &[Value], schema: &Schema) -> Result<Option<bool>> {
    match expr {
        Expr::Binary { op: BinOp::And, left, right } => {
            let l = eval_pred(left, row, schema)?;
            let r = eval_pred(right, row, schema)?;
            Ok(match (l, r) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            })
        }
        Expr::Binary { op: BinOp::Or, left, right } => {
            let l = eval_pred(left, row, schema)?;
            let r = eval_pred(right, row, schema)?;
            Ok(match (l, r) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            })
        }
        Expr::Not(inner) => Ok(eval_pred(inner, row, schema)?.map(|b| !b)),
        Expr::Binary {
            op: op @ (BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge),
            left,
            right,
        } => {
            let l = eval(left, row, schema)?;
            let r = eval(right, row, schema)?;
            Ok(l.sql_cmp(&r).map(|ord| match op {
                BinOp::Eq => ord == Ordering::Equal,
                BinOp::Ne => ord != Ordering::Equal,
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::Ge => ord != Ordering::Less,
                _ => unreachable!(),
            }))
        }
        Expr::Like { expr, pattern, negated } => {
            let v = eval(expr, row, schema)?;
            Ok(match v {
                Value::Null => None,
                other => {
                    let text = match &other {
                        Value::Str(s) => s.clone(),
                        v => v.to_string().into(),
                    };
                    Some(like_match(pattern, &text) != *negated)
                }
            })
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, row, schema)?;
            if v.is_null() {
                return Ok(None);
            }
            let mut saw_null = false;
            for item in list {
                let candidate = eval(item, row, schema)?;
                if candidate.is_null() {
                    saw_null = true;
                } else if v.sql_eq(&candidate) {
                    return Ok(Some(!negated));
                }
            }
            Ok(if saw_null { None } else { Some(*negated) })
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, row, schema)?;
            Ok(Some(v.is_null() != *negated))
        }
        other => {
            // Fallback: numeric truthiness of the evaluated value.
            let v = eval(other, row, schema)?;
            Ok(match v {
                Value::Null => None,
                v => v.as_f64().map(|f| f != 0.0),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Per-group accumulated state.
#[derive(Debug, Clone)]
pub struct GroupState {
    /// One accumulator per collected aggregate call.
    pub states: Vec<AggState>,
    /// First row of the group — evaluates non-aggregate expressions
    /// (functionally dependent on the key in well-formed queries).
    pub rep_row: Vec<Value>,
}

/// Partial aggregation result (one worker's contribution).
#[derive(Debug, Clone, Default)]
pub struct PartialAgg {
    /// group key → state.
    pub groups: HashMap<Vec<Value>, GroupState>,
    /// Rows folded in (for accounting).
    pub rows_seen: u64,
}

/// Drives grouping + two-phase aggregation for one query.
pub struct Aggregator {
    query: Query,
    schema: Schema,
    /// Deduplicated aggregate calls appearing anywhere in the output/order.
    agg_calls: Vec<Expr>,
}

impl Aggregator {
    /// Prepare for a query (must be an aggregate query).
    pub fn new(query: &Query, schema: &Schema) -> Result<Aggregator> {
        if !query.is_aggregate() {
            return Err(ScoopError::Sql("query does not aggregate".into()));
        }
        if query.items.iter().any(|i| matches!(i.expr, Expr::Star)) {
            return Err(ScoopError::Sql("SELECT * cannot be aggregated".into()));
        }
        let mut agg_calls = Vec::new();
        for item in &query.items {
            collect_agg_calls(&item.expr, &mut agg_calls);
        }
        if let Some(h) = &query.having {
            collect_agg_calls(h, &mut agg_calls);
        }
        for o in &query.order_by {
            collect_agg_calls(&o.expr, &mut agg_calls);
        }
        Ok(Aggregator { query: query.clone(), schema: schema.clone(), agg_calls })
    }

    /// Fresh empty partial.
    pub fn make_partial(&self) -> PartialAgg {
        PartialAgg::default()
    }

    /// Fold one (already WHERE-filtered) row into a partial.
    pub fn update(&self, partial: &mut PartialAgg, row: &[Value]) -> Result<()> {
        partial.rows_seen += 1;
        let key: Vec<Value> = self
            .query
            .group_by
            .iter()
            .map(|g| eval(g, row, &self.schema))
            .collect::<Result<_>>()?;
        let entry = partial.groups.entry(key).or_insert_with(|| GroupState {
            states: self
                .agg_calls
                .iter()
                .map(|c| match c {
                    Expr::Agg { func, .. } => AggState::new(*func),
                    _ => unreachable!("agg_calls holds Agg nodes"),
                })
                .collect(),
            rep_row: row.to_vec(),
        });
        for (call, state) in self.agg_calls.iter().zip(entry.states.iter_mut()) {
            let Expr::Agg { arg, .. } = call else { unreachable!() };
            let v = match arg {
                None => Value::Int(1), // COUNT(*)
                Some(a) => eval(a, row, &self.schema)?,
            };
            state.update(&v);
        }
        Ok(())
    }

    /// Merge another partial into `into` (driver-side reduce).
    pub fn merge(&self, into: &mut PartialAgg, other: PartialAgg) {
        into.rows_seen += other.rows_seen;
        for (key, state) in other.groups {
            match into.groups.entry(key) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(state);
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let dst = o.get_mut();
                    for (a, b) in dst.states.iter_mut().zip(state.states.iter()) {
                        a.merge(b);
                    }
                    // rep_row keeps the first-seen representative.
                }
            }
        }
    }

    /// Finalize: evaluate output expressions per group, sort, limit.
    pub fn finalize(&self, mut partial: PartialAgg) -> Result<ResultSet> {
        let columns: Vec<String> =
            self.query.items.iter().map(SelectItem::output_name).collect();
        // SQL: a global aggregate (no GROUP BY) over zero rows still yields
        // one row — COUNT is 0, the other aggregates NULL.
        if self.query.group_by.is_empty() && partial.groups.is_empty() {
            partial.groups.insert(
                Vec::new(),
                GroupState {
                    states: self
                        .agg_calls
                        .iter()
                        .map(|c| match c {
                            Expr::Agg { func, .. } => AggState::new(*func),
                            _ => unreachable!("agg_calls holds Agg nodes"),
                        })
                        .collect(),
                    rep_row: Vec::new(),
                },
            );
        }
        let mut keyed_rows: Vec<(Vec<Value>, Vec<Value>)> =
            Vec::with_capacity(partial.groups.len());
        for state in partial.groups.into_values() {
            let agg_values: Vec<Value> =
                state.states.iter().map(AggState::finish).collect();
            let out_row: Vec<Value> = self
                .query
                .items
                .iter()
                .map(|item| {
                    eval_with_aggs(
                        &item.expr,
                        &self.agg_calls,
                        &agg_values,
                        &state.rep_row,
                        &self.schema,
                    )
                })
                .collect::<Result<_>>()?;
            // HAVING: post-aggregation filter, evaluated with aggregates
            // substituted (truthy = keep).
            if let Some(h) = &self.query.having {
                let v = eval_with_aggs(h, &self.agg_calls, &agg_values, &state.rep_row, &self.schema)?;
                let keep = matches!(v.as_f64(), Some(f) if f != 0.0);
                if !keep {
                    continue;
                }
            }
            let sort_key: Vec<Value> = self
                .query
                .order_by
                .iter()
                .map(|o| {
                    self.order_value(&o.expr, &out_row, &state.rep_row, &agg_values)
                })
                .collect::<Result<_>>()?;
            keyed_rows.push((sort_key, out_row));
        }
        if self.query.distinct {
            dedup_rows(&mut keyed_rows);
        }
        sort_and_trim(&mut keyed_rows, &self.query);
        Ok(ResultSet { columns, rows: keyed_rows.into_iter().map(|(_, r)| r).collect() })
    }

    /// Resolve an ORDER BY expression for an aggregated query: alias or
    /// identical select expression first, else evaluate on the group's
    /// representative row (with aggregates substituted).
    fn order_value(
        &self,
        expr: &Expr,
        out_row: &[Value],
        rep_row: &[Value],
        agg_values: &[Value],
    ) -> Result<Value> {
        if let Expr::Column(name) = expr {
            if let Some(i) = self
                .query
                .items
                .iter()
                .position(|it| it.alias.as_deref() == Some(name.as_str()))
            {
                return Ok(out_row[i].clone());
            }
        }
        if let Some(i) = self.query.items.iter().position(|it| &it.expr == expr) {
            return Ok(out_row[i].clone());
        }
        eval_with_aggs(expr, &self.agg_calls, agg_values, rep_row, &self.schema)
    }
}

fn collect_agg_calls(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Agg { .. } => {
            if !out.contains(expr) {
                out.push(expr.clone());
            }
        }
        Expr::Binary { left, right, .. } => {
            collect_agg_calls(left, out);
            collect_agg_calls(right, out);
        }
        Expr::Not(e) | Expr::Like { expr: e, .. } | Expr::IsNull { expr: e, .. } => {
            collect_agg_calls(e, out)
        }
        Expr::InList { expr: e, list, .. } => {
            collect_agg_calls(e, out);
            for i in list {
                collect_agg_calls(i, out);
            }
        }
        Expr::Func { args, .. } => {
            for a in args {
                collect_agg_calls(a, out);
            }
        }
        Expr::Column(_) | Expr::Literal(_) | Expr::Star => {}
    }
}

/// Evaluate an expression substituting aggregate calls with finished values.
fn eval_with_aggs(
    expr: &Expr,
    agg_calls: &[Expr],
    agg_values: &[Value],
    rep_row: &[Value],
    schema: &Schema,
) -> Result<Value> {
    if let Some(i) = agg_calls.iter().position(|c| c == expr) {
        return Ok(agg_values[i].clone());
    }
    match expr {
        Expr::Binary { op, left, right } => {
            let substituted = Expr::Binary {
                op: *op,
                left: Box::new(substitute(left, agg_calls, agg_values)),
                right: Box::new(substitute(right, agg_calls, agg_values)),
            };
            eval(&substituted, rep_row, schema)
        }
        Expr::Func { name, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_with_aggs(a, agg_calls, agg_values, rep_row, schema))
                .collect::<Result<_>>()?;
            eval_scalar(name, &vals)
        }
        other => eval(other, rep_row, schema),
    }
}

/// Replace aggregate sub-expressions with literal finished values.
fn substitute(expr: &Expr, agg_calls: &[Expr], agg_values: &[Value]) -> Expr {
    if let Some(i) = agg_calls.iter().position(|c| c == expr) {
        return Expr::Literal(agg_values[i].clone());
    }
    match expr {
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(substitute(left, agg_calls, agg_values)),
            right: Box::new(substitute(right, agg_calls, agg_values)),
        },
        Expr::Func { name, args } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(|a| substitute(a, agg_calls, agg_values)).collect(),
        },
        other => other.clone(),
    }
}

fn sort_and_trim(keyed_rows: &mut Vec<(Vec<Value>, Vec<Value>)>, query: &Query) {
    if !query.order_by.is_empty() {
        let descs: Vec<bool> = query.order_by.iter().map(|o| o.desc).collect();
        keyed_rows.sort_by(|(a, _), (b, _)| {
            for ((x, y), desc) in a.iter().zip(b.iter()).zip(&descs) {
                let ord = x.total_cmp(y);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }
    if let Some(n) = query.limit {
        keyed_rows.truncate(n);
    }
}

// ---------------------------------------------------------------------------
// Whole-query execution
// ---------------------------------------------------------------------------

/// Execute a query applying its own WHERE clause.
pub fn execute(
    query: &Query,
    schema: &Schema,
    rows: impl Iterator<Item = Result<Vec<Value>>>,
) -> Result<ResultSet> {
    execute_with_where(query, schema, query.where_clause.as_ref(), rows)
}

/// Execute with an overridden WHERE (the *residual* predicate in pushdown
/// mode, where the store already applied the pushed conjuncts).
pub fn execute_with_where(
    query: &Query,
    schema: &Schema,
    where_clause: Option<&Expr>,
    rows: impl Iterator<Item = Result<Vec<Value>>>,
) -> Result<ResultSet> {
    if query.is_aggregate() {
        let agg = Aggregator::new(query, schema)?;
        let mut partial = agg.make_partial();
        for row in rows {
            let row = row?;
            if passes(where_clause, &row, schema)? {
                agg.update(&mut partial, &row)?;
            }
        }
        return agg.finalize(partial);
    }
    // Non-aggregate path.
    let has_star = query.items.iter().any(|i| matches!(i.expr, Expr::Star));
    let columns: Vec<String> = if has_star {
        schema.names().iter().map(|s| s.to_string()).collect()
    } else {
        query.items.iter().map(SelectItem::output_name).collect()
    };
    let mut keyed_rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
    for row in rows {
        let row = row?;
        if !passes(where_clause, &row, schema)? {
            continue;
        }
        let out_row: Vec<Value> = if has_star {
            row.clone()
        } else {
            query
                .items
                .iter()
                .map(|i| eval(&i.expr, &row, schema))
                .collect::<Result<_>>()?
        };
        let sort_key: Vec<Value> = query
            .order_by
            .iter()
            .map(|o| order_value_plain(query, &o.expr, &out_row, &row, schema))
            .collect::<Result<_>>()?;
        keyed_rows.push((sort_key, out_row));
    }
    if query.distinct {
        dedup_rows(&mut keyed_rows);
    }
    sort_and_trim(&mut keyed_rows, query);
    Ok(ResultSet { columns, rows: keyed_rows.into_iter().map(|(_, r)| r).collect() })
}

/// SELECT DISTINCT: keep the first occurrence of each output row.
fn dedup_rows(keyed_rows: &mut Vec<(Vec<Value>, Vec<Value>)>) {
    let mut seen: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
    keyed_rows.retain(|(_, row)| seen.insert(row.clone()));
}

fn order_value_plain(
    query: &Query,
    expr: &Expr,
    out_row: &[Value],
    row: &[Value],
    schema: &Schema,
) -> Result<Value> {
    if let Expr::Column(name) = expr {
        if let Some(i) = query
            .items
            .iter()
            .position(|it| it.alias.as_deref() == Some(name.as_str()))
        {
            return Ok(out_row[i].clone());
        }
    }
    eval(expr, row, schema)
}

fn passes(where_clause: Option<&Expr>, row: &[Value], schema: &Schema) -> Result<bool> {
    match where_clause {
        None => Ok(true),
        Some(w) => Ok(eval_pred(w, row, schema)? == Some(true)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use scoop_csv::schema::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("vid", DataType::Str),
            Field::new("date", DataType::Str),
            Field::new("index", DataType::Float),
            Field::new("city", DataType::Str),
            Field::new("state", DataType::Str),
        ])
    }

    fn rows() -> Vec<Vec<Value>> {
        let mk = |vid: &str, date: &str, idx: Option<f64>, city: &str, state: &str| {
            vec![
                Value::Str(vid.into()),
                Value::Str(date.into()),
                idx.map(Value::Float).unwrap_or(Value::Null),
                Value::Str(city.into()),
                Value::Str(state.into()),
            ]
        };
        vec![
            mk("m1", "2015-01-03 10:00:00", Some(10.0), "Rotterdam", "NLD"),
            mk("m1", "2015-01-04 11:00:00", Some(20.0), "Rotterdam", "NLD"),
            mk("m2", "2015-01-03 09:00:00", Some(5.0), "Paris", "FRA"),
            mk("m2", "2015-02-01 09:00:00", Some(7.0), "Paris", "FRA"),
            mk("m3", "2015-01-05 08:00:00", None, "Utrecht", "NLD"),
        ]
    }

    fn run(sql: &str) -> ResultSet {
        let q = parse(sql).unwrap();
        execute(&q, &schema(), rows().into_iter().map(Ok)).unwrap()
    }

    #[test]
    fn simple_projection_and_filter() {
        let rs = run("SELECT vid, index FROM t WHERE city LIKE 'Rotterdam' ORDER BY index DESC");
        assert_eq!(rs.columns, vec!["vid", "index"]);
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][1], Value::Float(20.0));
    }

    #[test]
    fn select_star_and_limit() {
        let rs = run("SELECT * FROM t ORDER BY vid LIMIT 2");
        assert_eq!(rs.columns.len(), 5);
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn group_by_with_aliases_and_order() {
        let rs = run(
            "SELECT vid, sum(index) as total, count(*) as n FROM t \
             WHERE date LIKE '2015-01%' GROUP BY vid ORDER BY vid",
        );
        assert_eq!(rs.columns, vec!["vid", "total", "n"]);
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0], vec![Value::Str("m1".into()), Value::Float(30.0), Value::Int(2)]);
        assert_eq!(rs.rows[1], vec![Value::Str("m2".into()), Value::Float(5.0), Value::Int(1)]);
        // m3's index is NULL → SUM null, COUNT(*) still 1.
        assert_eq!(rs.rows[2][1], Value::Null);
        assert_eq!(rs.rows[2][2], Value::Int(1));
    }

    #[test]
    fn gridpocket_style_substring_group() {
        let rs = run(
            "SELECT SUBSTRING(date, 0, 7) as sDate, sum(index) as max FROM t \
             GROUP BY SUBSTRING(date, 0, 7) ORDER BY SUBSTRING(date, 0, 7)",
        );
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Str("2015-01".into()));
        assert_eq!(rs.rows[0][1], Value::Float(35.0));
        assert_eq!(rs.rows[1][0], Value::Str("2015-02".into()));
    }

    #[test]
    fn first_value_and_min_max() {
        let rs = run(
            "SELECT vid, first_value(city) as city, min(index) as lo, max(index) as hi \
             FROM t GROUP BY vid ORDER BY vid",
        );
        assert_eq!(rs.rows[0][1], Value::Str("Rotterdam".into()));
        assert_eq!(rs.rows[0][2], Value::Float(10.0));
        assert_eq!(rs.rows[0][3], Value::Float(20.0));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let rs = run("SELECT count(*) as n, avg(index) as a FROM t");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(5));
        assert_eq!(rs.rows[0][1], Value::Float(10.5));
    }

    #[test]
    fn arithmetic_in_select_and_where() {
        let rs = run("SELECT vid, index * 2 + 1 FROM t WHERE index / 5 >= 2 ORDER BY vid");
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][1], Value::Float(21.0));
    }

    #[test]
    fn null_semantics_in_where() {
        // index > 0 is NULL for m3 → excluded; NOT (index > 0) also excludes.
        assert_eq!(run("SELECT vid FROM t WHERE index > 0").rows.len(), 4);
        assert_eq!(run("SELECT vid FROM t WHERE NOT index > 0").rows.len(), 0);
        assert_eq!(run("SELECT vid FROM t WHERE index IS NULL").rows.len(), 1);
        // OR with null: null OR true = true.
        assert_eq!(
            run("SELECT vid FROM t WHERE index > 0 OR city LIKE 'Utrecht'").rows.len(),
            5
        );
        // IN with null element: no match → NULL → excluded.
        assert_eq!(
            run("SELECT vid FROM t WHERE index IN (NULL, 999)").rows.len(),
            0
        );
    }

    #[test]
    fn in_list_and_not_like() {
        assert_eq!(
            run("SELECT vid FROM t WHERE state IN ('FRA', 'DEU')").rows.len(),
            2
        );
        assert_eq!(
            run("SELECT vid FROM t WHERE city NOT LIKE 'P%'").rows.len(),
            3
        );
    }

    #[test]
    fn division_by_zero_is_null() {
        assert_eq!(run("SELECT vid FROM t WHERE index / 0 > 0").rows.len(), 0);
        let rs = run("SELECT index / 0 FROM t LIMIT 1");
        assert_eq!(rs.rows[0][0], Value::Null);
    }

    #[test]
    fn two_phase_equals_single_pass() {
        let q = parse(
            "SELECT vid, sum(index) as total, count(*) as n, min(date) as d \
             FROM t WHERE date LIKE '2015%' GROUP BY vid ORDER BY vid",
        )
        .unwrap();
        let schema = schema();
        let single = execute(&q, &schema, rows().into_iter().map(Ok)).unwrap();

        let agg = Aggregator::new(&q, &schema).unwrap();
        // Split rows into 2 partitions, update separately, merge, finalize.
        let all = rows();
        let mut merged = agg.make_partial();
        for part in all.chunks(2) {
            let mut partial = agg.make_partial();
            for row in part {
                // WHERE applied before partial agg, as workers do.
                if passes(q.where_clause.as_ref(), row, &schema).unwrap() {
                    agg.update(&mut partial, row).unwrap();
                }
            }
            agg.merge(&mut merged, partial);
        }
        let two_phase = agg.finalize(merged).unwrap();
        assert_eq!(two_phase, single);
    }

    #[test]
    fn aggregate_in_arithmetic() {
        let rs = run("SELECT vid, sum(index) / count(*) as mean FROM t GROUP BY vid ORDER BY vid");
        assert_eq!(rs.rows[0][1], Value::Float(15.0));
    }

    #[test]
    fn order_by_aggregate_value() {
        let rs = run("SELECT vid, sum(index) as s FROM t GROUP BY vid ORDER BY sum(index) DESC");
        assert_eq!(rs.rows[0][0], Value::Str("m1".into()));
    }

    #[test]
    fn errors_on_bad_queries() {
        let q = parse("SELECT ghost FROM t").unwrap();
        assert!(execute(&q, &schema(), rows().into_iter().map(Ok)).is_err());
        let q = parse("SELECT * , sum(index) FROM t").unwrap();
        assert!(execute(&q, &schema(), rows().into_iter().map(Ok)).is_err());
    }

    #[test]
    fn result_set_to_csv() {
        let rs = run("SELECT vid FROM t WHERE state LIKE 'FRA' ORDER BY date");
        let csv = rs.to_csv();
        assert!(csv.starts_with("vid\n"));
        assert_eq!(csv.matches("m2").count(), 2);
    }
}

#[cfg(test)]
mod distinct_having_tests {
    use super::*;
    use crate::parser::parse;
    use scoop_csv::schema::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("city", DataType::Str),
            Field::new("state", DataType::Str),
            Field::new("index", DataType::Float),
        ])
    }

    fn rows() -> Vec<Vec<Value>> {
        let mk = |city: &str, state: &str, idx: f64| {
            vec![
                Value::Str(city.into()),
                Value::Str(state.into()),
                Value::Float(idx),
            ]
        };
        vec![
            mk("Rotterdam", "NLD", 10.0),
            mk("Rotterdam", "NLD", 20.0),
            mk("Paris", "FRA", 5.0),
            mk("Paris", "FRA", 6.0),
            mk("Nice", "FRA", 1.0),
        ]
    }

    fn run(sql: &str) -> ResultSet {
        let q = parse(sql).unwrap();
        execute(&q, &schema(), rows().into_iter().map(Ok)).unwrap()
    }

    #[test]
    fn select_distinct_dedups() {
        let rs = run("SELECT DISTINCT state FROM t ORDER BY state");
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Str("FRA".into()));
        let rs = run("SELECT DISTINCT city, state FROM t");
        assert_eq!(rs.rows.len(), 3);
        // Without DISTINCT all rows come through.
        assert_eq!(run("SELECT state FROM t").rows.len(), 5);
    }

    #[test]
    fn having_filters_groups() {
        let rs = run(
            "SELECT city, count(*) as n FROM t GROUP BY city \
             HAVING count(*) > 1 ORDER BY city",
        );
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Str("Paris".into()));
        // HAVING may reference aggregates absent from the select list.
        let rs = run(
            "SELECT city FROM t GROUP BY city HAVING sum(index) >= 11 ORDER BY city",
        );
        assert_eq!(rs.rows.len(), 2); // Paris (11), Rotterdam (30)
    }

    #[test]
    fn having_with_group_key_predicate() {
        let rs = run(
            "SELECT state, sum(index) as s FROM t GROUP BY state \
             HAVING state LIKE 'F%' ORDER BY state",
        );
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][1], Value::Float(12.0));
    }

    #[test]
    fn distinct_on_aggregate_output() {
        // Two groups with equal aggregate values collapse under DISTINCT.
        let rs = run(
            "SELECT DISTINCT count(*) as n FROM t GROUP BY city ORDER BY n",
        );
        assert_eq!(rs.rows.len(), 2); // n=1 (Nice), n=2 (Paris, Rotterdam)
    }

    #[test]
    fn having_without_group_by_on_global_aggregate() {
        assert_eq!(
            run("SELECT count(*) as n FROM t HAVING count(*) > 10").rows.len(),
            0
        );
        assert_eq!(
            run("SELECT count(*) as n FROM t HAVING count(*) > 1").rows.len(),
            1
        );
    }
}

#[cfg(test)]
mod empty_aggregate_tests {
    use super::*;
    use crate::parser::parse;
    use scoop_csv::schema::{DataType, Field};

    #[test]
    fn global_aggregate_over_zero_rows_yields_one_row() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let q = parse("SELECT count(*) as n, sum(x) as s, min(x) as lo FROM t").unwrap();
        let rs = execute(&q, &schema, std::iter::empty()).unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(0));
        assert!(rs.rows[0][1].is_null());
        assert!(rs.rows[0][2].is_null());
        // With GROUP BY, zero rows still mean zero groups.
        let q = parse("SELECT x, count(*) FROM t GROUP BY x").unwrap();
        let rs = execute(&q, &schema, std::iter::empty()).unwrap();
        assert!(rs.is_empty());
        // WHERE that excludes everything behaves the same.
        let q = parse("SELECT count(*) as n FROM t WHERE x > 100").unwrap();
        let rs = execute(&q, &schema, vec![Ok(vec![Value::Int(1)])].into_iter()).unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(0));
    }
}
