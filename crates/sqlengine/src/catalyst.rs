//! Catalyst-style pushdown extraction.
//!
//! "Given a SQL query, the optimizer *extracts* the projection and selection
//! filters implied by the query. These extracted filters are then used by
//! Spark SQL with the customized flavors of the data source API." This module
//! is that optimizer: it turns a parsed [`Query`] into
//!
//! * a [`PushdownSpec`] — the projection (columns the query touches) and the
//!   WHERE conjuncts expressible in the Data-Sources filter language, and
//! * the **residual** predicate — conjuncts the store cannot evaluate, which
//!   stay on the compute side (`PrunedFilteredScan` semantics: the source
//!   fully handles the filters it accepts).
//!
//! `NOT` is never pushed: the raw-field filter is two-valued while SQL is
//! three-valued, and they disagree on `NOT <null comparison>` (real Catalyst
//! has the same restriction on nullable columns).

use crate::ast::{BinOp, Expr, Query};
use scoop_common::Result;
use scoop_csv::{Predicate, PushdownSpec, Schema, Value};

/// A query analyzed for pushdown execution.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The original query.
    pub query: Query,
    /// What the object store will execute (projection + pushed selection).
    pub pushdown: PushdownSpec,
    /// Conjuncts the compute side must still apply.
    pub residual_where: Option<Expr>,
    /// The schema of rows the scan produces under `pushdown` (projected).
    pub scan_schema: Schema,
    /// How many WHERE conjuncts were pushed (diagnostics).
    pub pushed_conjuncts: usize,
    /// How many stayed residual (diagnostics).
    pub residual_conjuncts: usize,
}

/// Analyze a query against a table schema.
pub fn plan_query(query: &Query, schema: &Schema, has_header: bool) -> Result<PlannedQuery> {
    // Validate every referenced column.
    if let Some(cols) = query.referenced_columns() {
        for c in &cols {
            schema.resolve(c)?;
        }
    }
    // Projection: the columns the query touches, in schema order for
    // deterministic wire format. SELECT * disables pruning.
    let columns = query.referenced_columns().map(|cols| {
        let mut ordered: Vec<String> = schema
            .fields
            .iter()
            .filter(|f| cols.iter().any(|c| f.name.eq_ignore_ascii_case(c)))
            .map(|f| f.name.clone())
            .collect();
        // A scan must produce at least one column (e.g. SELECT COUNT(*)).
        if ordered.is_empty() {
            if let Some(first) = schema.fields.first() {
                ordered.push(first.name.clone());
            }
        }
        ordered
    });

    // Selection: split the WHERE into conjuncts; push what converts.
    let mut pushed: Vec<Predicate> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    if let Some(w) = &query.where_clause {
        for conjunct in split_conjuncts(w) {
            match to_predicate(&conjunct) {
                Some(p) => pushed.push(p),
                None => residual.push(conjunct),
            }
        }
    }
    let pushed_conjuncts = pushed.len();
    let residual_conjuncts = residual.len();
    let predicate = Predicate::and_all(pushed);
    let residual_where = residual
        .into_iter()
        .reduce(|a, b| Expr::Binary { op: BinOp::And, left: Box::new(a), right: Box::new(b) });

    let scan_schema = match &columns {
        None => schema.clone(),
        Some(cols) => schema.project(cols)?,
    };
    // All columns projected → None (no pruning benefit, keep wire identical).
    let columns = match columns {
        Some(cols) if cols.len() == schema.len() => None,
        other => other,
    };

    Ok(PlannedQuery {
        query: query.clone(),
        pushdown: PushdownSpec { columns, predicate, has_header },
        residual_where,
        scan_schema,
        pushed_conjuncts,
        residual_conjuncts,
    })
}

/// Split an expression into top-level AND conjuncts.
pub fn split_conjuncts(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::Binary { op: BinOp::And, left, right } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// Try to express an expression in the Data-Sources filter language.
fn to_predicate(expr: &Expr) -> Option<Predicate> {
    match expr {
        Expr::Binary { op, left, right } => {
            match op {
                BinOp::And => Some(Predicate::And(
                    Box::new(to_predicate(left)?),
                    Box::new(to_predicate(right)?),
                )),
                BinOp::Or => Some(Predicate::Or(
                    Box::new(to_predicate(left)?),
                    Box::new(to_predicate(right)?),
                )),
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    // column <op> literal, possibly flipped.
                    let (col, lit, op) = match (&**left, &**right) {
                        (Expr::Column(c), Expr::Literal(v)) => (c, v, *op),
                        (Expr::Literal(v), Expr::Column(c)) => (c, v, flip(*op)),
                        _ => return None,
                    };
                    if lit.is_null() {
                        return None; // `col = NULL` is never true; leave residual
                    }
                    Some(match op {
                        BinOp::Eq => Predicate::Eq(col.clone(), lit.clone()),
                        BinOp::Ne => Predicate::Ne(col.clone(), lit.clone()),
                        BinOp::Lt => Predicate::Lt(col.clone(), lit.clone()),
                        BinOp::Le => Predicate::Le(col.clone(), lit.clone()),
                        BinOp::Gt => Predicate::Gt(col.clone(), lit.clone()),
                        BinOp::Ge => Predicate::Ge(col.clone(), lit.clone()),
                        _ => unreachable!(),
                    })
                }
                _ => None,
            }
        }
        Expr::Like { expr, pattern, negated: false } => match &**expr {
            Expr::Column(c) => {
                // Specialize anchored patterns (Spark emits StringStartsWith
                // and friends for these).
                let inner = &pattern[..];
                let has_underscore = inner.contains('_');
                if !has_underscore {
                    let pct = inner.matches('%').count();
                    if pct == 0 {
                        return Some(Predicate::Eq(c.clone(), Value::Str(inner.into())));
                    }
                    if pct == 1 && inner.ends_with('%') {
                        return Some(Predicate::StartsWith(
                            c.clone(),
                            inner[..inner.len() - 1].to_string(),
                        ));
                    }
                    if pct == 1 && inner.starts_with('%') {
                        return Some(Predicate::EndsWith(c.clone(), inner[1..].to_string()));
                    }
                    if pct == 2 && inner.starts_with('%') && inner.ends_with('%') {
                        let mid = &inner[1..inner.len() - 1];
                        if !mid.contains('%') {
                            return Some(Predicate::Contains(c.clone(), mid.to_string()));
                        }
                    }
                }
                Some(Predicate::Like(c.clone(), pattern.clone()))
            }
            _ => None,
        },
        Expr::InList { expr, list, negated: false } => match &**expr {
            Expr::Column(c) => {
                let mut values = Vec::with_capacity(list.len());
                for item in list {
                    match item {
                        Expr::Literal(v) if !v.is_null() => values.push(v.clone()),
                        _ => return None,
                    }
                }
                Some(Predicate::In(c.clone(), values))
            }
            _ => None,
        },
        Expr::IsNull { expr, negated } => match &**expr {
            Expr::Column(c) => Some(if *negated {
                Predicate::IsNotNull(c.clone())
            } else {
                Predicate::IsNull(c.clone())
            }),
            _ => None,
        },
        _ => None,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Validate the plan's internal consistency (used by tests & debug builds):
/// every pushed/residual column must exist in the scan schema.
pub fn check_plan(plan: &PlannedQuery) -> Result<()> {
    if let Some(pred) = &plan.pushdown.predicate {
        for c in pred.columns() {
            plan.scan_schema.resolve(&c)?;
        }
    }
    if let Some(res) = &plan.residual_where {
        let mut cols = Vec::new();
        res.columns(&mut cols);
        for c in cols {
            plan.scan_schema.resolve(&c)?;
        }
    }
    Ok(())
}

impl PlannedQuery {
    /// True when the store does all the filtering (no residual WHERE).
    pub fn fully_pushed(&self) -> bool {
        self.residual_conjuncts == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use scoop_csv::schema::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("vid", DataType::Str),
            Field::new("date", DataType::Str),
            Field::new("index", DataType::Float),
            Field::new("city", DataType::Str),
            Field::new("state", DataType::Str),
            Field::new("lat", DataType::Float),
        ])
    }

    fn plan(sql: &str) -> PlannedQuery {
        let q = parse(sql).unwrap();
        let p = plan_query(&q, &schema(), true).unwrap();
        check_plan(&p).unwrap();
        p
    }

    #[test]
    fn showmapcons_fully_pushes() {
        let p = plan(
            "SELECT vid, sum(index) as max, first_value(lat) as lat FROM t \
             WHERE date LIKE '2015-01%' GROUP BY SUBSTRING(date, 0, 7), vid \
             ORDER BY SUBSTRING(date, 0, 7), vid",
        );
        assert!(p.fully_pushed());
        assert_eq!(p.pushed_conjuncts, 1);
        // Prefix LIKE specializes to StartsWith.
        assert_eq!(
            p.pushdown.predicate,
            Some(Predicate::StartsWith("date".into(), "2015-01".into()))
        );
        // Projection keeps only touched columns, in schema order.
        assert_eq!(
            p.pushdown.columns,
            Some(vec!["vid".into(), "date".into(), "index".into(), "lat".into()])
        );
        assert_eq!(p.scan_schema.len(), 4);
    }

    #[test]
    fn like_specializations() {
        assert_eq!(
            plan("SELECT vid FROM t WHERE city LIKE 'Rotterdam'").pushdown.predicate,
            Some(Predicate::Eq("city".into(), Value::Str("Rotterdam".into())))
        );
        assert_eq!(
            plan("SELECT vid FROM t WHERE state LIKE 'U%'").pushdown.predicate,
            Some(Predicate::StartsWith("state".into(), "U".into()))
        );
        assert_eq!(
            plan("SELECT vid FROM t WHERE city LIKE '%dam'").pushdown.predicate,
            Some(Predicate::EndsWith("city".into(), "dam".into()))
        );
        assert_eq!(
            plan("SELECT vid FROM t WHERE city LIKE '%tt%'").pushdown.predicate,
            Some(Predicate::Contains("city".into(), "tt".into()))
        );
        assert_eq!(
            plan("SELECT vid FROM t WHERE date LIKE '2015-01-__ 10%'").pushdown.predicate,
            Some(Predicate::Like("date".into(), "2015-01-__ 10%".into()))
        );
    }

    #[test]
    fn comparison_flip_and_mixed_residual() {
        let p = plan(
            "SELECT vid FROM t WHERE 100 <= index AND SUBSTRING(date, 0, 4) = '2015'",
        );
        assert_eq!(p.pushed_conjuncts, 1);
        assert_eq!(p.residual_conjuncts, 1);
        assert_eq!(
            p.pushdown.predicate,
            Some(Predicate::Ge("index".into(), Value::Float(100.0))),
        );
        assert!(p.residual_where.is_some());
        assert!(!p.fully_pushed());
    }

    #[test]
    fn or_pushes_only_when_both_sides_do() {
        let p = plan("SELECT vid FROM t WHERE city LIKE 'Paris' OR state IN ('FRA')");
        assert!(p.fully_pushed());
        assert!(matches!(p.pushdown.predicate, Some(Predicate::Or(_, _))));
        let p = plan(
            "SELECT vid FROM t WHERE city LIKE 'Paris' OR SUBSTRING(date,0,4) = '2015'",
        );
        assert_eq!(p.pushed_conjuncts, 0);
        assert_eq!(p.residual_conjuncts, 1);
    }

    #[test]
    fn not_and_negations_stay_residual() {
        for sql in [
            "SELECT vid FROM t WHERE NOT city LIKE 'Paris'",
            "SELECT vid FROM t WHERE city NOT LIKE 'Paris'",
            "SELECT vid FROM t WHERE state NOT IN ('FRA')",
            "SELECT vid FROM t WHERE index + 1 > 2",
            "SELECT vid FROM t WHERE index = NULL",
        ] {
            let p = plan(sql);
            assert_eq!(p.pushed_conjuncts, 0, "{sql}");
            assert_eq!(p.residual_conjuncts, 1, "{sql}");
        }
    }

    #[test]
    fn null_tests_push() {
        let p = plan("SELECT vid FROM t WHERE index IS NULL AND lat IS NOT NULL");
        assert!(p.fully_pushed());
        assert_eq!(p.pushed_conjuncts, 2);
    }

    #[test]
    fn select_star_disables_pruning() {
        let p = plan("SELECT * FROM t WHERE state LIKE 'FRA'");
        assert_eq!(p.pushdown.columns, None);
        assert_eq!(p.scan_schema.len(), 6);
    }

    #[test]
    fn all_columns_referenced_disables_pruning() {
        let p = plan("SELECT vid, date, index, city, state, lat FROM t");
        assert_eq!(p.pushdown.columns, None);
    }

    #[test]
    fn count_star_scans_one_column() {
        let p = plan("SELECT count(*) FROM t");
        assert_eq!(p.pushdown.columns, Some(vec!["vid".into()]));
        assert_eq!(p.scan_schema.len(), 1);
    }

    #[test]
    fn unknown_column_is_an_error() {
        let q = parse("SELECT ghost FROM t").unwrap();
        assert!(plan_query(&q, &schema(), true).is_err());
    }

    #[test]
    fn in_list_pushes_literals_only() {
        let p = plan("SELECT vid FROM t WHERE state IN ('FRA', 'NLD')");
        assert!(p.fully_pushed());
        let p = plan("SELECT vid FROM t WHERE state IN ('FRA', vid)");
        assert_eq!(p.pushed_conjuncts, 0);
    }
}
