//! A Spark-SQL-shaped query engine with Catalyst-style pushdown extraction.
//!
//! Scoop's analytics side needs exactly three things from Spark SQL, all
//! reproduced here:
//!
//! 1. **SQL parsing** of the GridPocket query dialect (Table I): SELECT with
//!    expressions and aliases, WHERE, GROUP BY, ORDER BY, LIMIT, aggregates
//!    (`sum`, `min`, `max`, `count`, `avg`, `first_value`), `SUBSTRING`,
//!    `LIKE`, `IN`, `IS NULL` — [`lexer`], [`parser`], [`ast`].
//! 2. **Catalyst filter extraction**: "given a SQL query, the optimizer
//!    extracts the projection and selection filters implied by the query",
//!    which the Data Sources API hands to the scan — [`catalyst`] produces a
//!    [`scoop_csv::PushdownSpec`] plus the residual (non-pushable) predicate.
//! 3. **Execution** over row streams, including two-phase aggregation
//!    (worker-side partial + driver-side final merge) mirroring Spark's
//!    map-side combine — [`exec`], [`functions`].
//!
//! The transparency invariant — pushdown + residual ≡ full query — is what
//! makes Scoop safe, and is property-tested across the workspace.

pub mod ast;
pub mod catalyst;
pub mod exec;
pub mod functions;
pub mod lexer;
pub mod parser;

pub use ast::{AggFunc, BinOp, Expr, OrderItem, Query, SelectItem};
pub use catalyst::{plan_query, PlannedQuery};
pub use exec::{execute, ResultSet};
pub use parser::parse;
