//! Scalar functions and aggregate accumulators.

use crate::ast::AggFunc;
use scoop_common::{Result, ScoopError};
use scoop_csv::Value;

/// Evaluate a scalar function.
///
/// Supported: `SUBSTRING(str, start, len)` (1-based like Spark SQL; a start of
/// 0 is treated as 1, which Table I's `SUBSTRING(date, 0, 7)` relies on),
/// `UPPER`, `LOWER`, `LENGTH`, `CONCAT`, `ABS`, `ROUND`, `COALESCE`,
/// `YEAR`/`MONTH`/`DAY` (on `YYYY-MM-DD...` strings).
pub fn eval_scalar(name: &str, args: &[Value]) -> Result<Value> {
    match name {
        "substring" | "substr" => {
            if args.len() != 3 {
                return Err(ScoopError::Sql(format!(
                    "{name} expects 3 arguments, got {}",
                    args.len()
                )));
            }
            let (s, start, len) = (&args[0], &args[1], &args[2]);
            if s.is_null() || start.is_null() || len.is_null() {
                return Ok(Value::Null);
            }
            let text = match s {
                Value::Str(t) => t.clone(),
                other => other.to_string().into(),
            };
            let start = start
                .as_f64()
                .ok_or_else(|| ScoopError::Sql("substring start must be numeric".into()))?
                as i64;
            let len = len
                .as_f64()
                .ok_or_else(|| ScoopError::Sql("substring length must be numeric".into()))?
                as i64;
            // Spark: 1-based, start 0 behaves like 1; negative counts from end.
            let chars: Vec<char> = text.chars().collect();
            let n = chars.len() as i64;
            let begin = if start > 0 {
                start - 1
            } else if start == 0 {
                0
            } else {
                (n + start).max(0)
            };
            let begin = begin.clamp(0, n) as usize;
            let take = len.max(0) as usize;
            Ok(Value::Str(chars[begin..].iter().take(take).collect::<String>().into()))
        }
        "upper" => unary_str(name, args, |s| s.to_uppercase()),
        "lower" => unary_str(name, args, |s| s.to_lowercase()),
        "length" => {
            let [v] = args else {
                return Err(ScoopError::Sql("length expects 1 argument".into()));
            };
            Ok(match v {
                Value::Null => Value::Null,
                Value::Str(s) => Value::Int(s.chars().count() as i64),
                other => Value::Int(other.to_string().chars().count() as i64),
            })
        }
        "concat" => {
            let mut out = String::new();
            for a in args {
                if a.is_null() {
                    return Ok(Value::Null);
                }
                out.push_str(&a.to_string());
            }
            Ok(Value::Str(out.into()))
        }
        "abs" => {
            let [v] = args else {
                return Err(ScoopError::Sql("abs expects 1 argument".into()));
            };
            Ok(match v {
                Value::Null => Value::Null,
                Value::Int(i) => Value::Int(i.abs()),
                Value::Float(f) => Value::Float(f.abs()),
                other => {
                    return Err(ScoopError::Sql(format!("abs on non-numeric {other}")))
                }
            })
        }
        "round" => {
            if args.is_empty() || args.len() > 2 {
                return Err(ScoopError::Sql("round expects 1 or 2 arguments".into()));
            }
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            let v = args[0]
                .as_f64()
                .ok_or_else(|| ScoopError::Sql("round on non-numeric".into()))?;
            let digits = match args.get(1) {
                None => 0i32,
                Some(d) => d
                    .as_f64()
                    .ok_or_else(|| ScoopError::Sql("round digits must be numeric".into()))?
                    as i32,
            };
            let factor = 10f64.powi(digits);
            Ok(Value::Float((v * factor).round() / factor))
        }
        "coalesce" => Ok(args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null)),
        "year" => date_part(args, 0, 4),
        "month" => date_part(args, 5, 2),
        "day" => date_part(args, 8, 2),
        other => Err(ScoopError::Sql(format!("unknown function '{other}'"))),
    }
}

fn unary_str(name: &str, args: &[Value], f: impl Fn(&str) -> String) -> Result<Value> {
    let [v] = args else {
        return Err(ScoopError::Sql(format!("{name} expects 1 argument")));
    };
    Ok(match v {
        Value::Null => Value::Null,
        Value::Str(s) => Value::Str(f(s).into()),
        other => Value::Str(f(&other.to_string()).into()),
    })
}

fn date_part(args: &[Value], offset: usize, len: usize) -> Result<Value> {
    let [v] = args else {
        return Err(ScoopError::Sql("date function expects 1 argument".into()));
    };
    match v {
        Value::Null => Ok(Value::Null),
        Value::Str(s) => Ok(s
            .get(offset..offset + len)
            .and_then(|p| p.parse::<i64>().ok())
            .map(Value::Int)
            .unwrap_or(Value::Null)),
        _ => Ok(Value::Null),
    }
}

/// A mergeable aggregate accumulator — supports Spark-style two-phase
/// aggregation (partial on workers, merge + finish on the driver).
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    /// Running sum and whether any non-null value was seen.
    Sum { total: f64, seen: bool },
    /// Row/value count.
    Count(u64),
    /// Running minimum.
    Min(Option<Value>),
    /// Running maximum.
    Max(Option<Value>),
    /// Sum + count for the average.
    Avg { total: f64, count: u64 },
    /// First value in encounter order.
    First(Option<Value>),
}

impl AggState {
    /// Fresh accumulator for a function.
    pub fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Sum => AggState::Sum { total: 0.0, seen: false },
            AggFunc::Count => AggState::Count(0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { total: 0.0, count: 0 },
            AggFunc::First => AggState::First(None),
        }
    }

    /// Fold one input value. For `COUNT(*)` pass `Value::Int(1)`; NULLs are
    /// ignored by all aggregates except `COUNT(*)` (per SQL semantics the
    /// caller passes non-null markers for `*`).
    pub fn update(&mut self, v: &Value) {
        match self {
            AggState::Count(c) => {
                if !v.is_null() {
                    *c += 1;
                }
            }
            AggState::Sum { total, seen } => {
                if let Some(x) = v.as_f64() {
                    *total += x;
                    *seen = true;
                }
            }
            AggState::Min(cur) => {
                if !v.is_null() && cur.as_ref().is_none_or(|c| v.total_cmp(c).is_lt()) {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                if !v.is_null() && cur.as_ref().is_none_or(|c| v.total_cmp(c).is_gt()) {
                    *cur = Some(v.clone());
                }
            }
            AggState::Avg { total, count } => {
                if let Some(x) = v.as_f64() {
                    *total += x;
                    *count += 1;
                }
            }
            AggState::First(cur) => {
                if cur.is_none() && !v.is_null() {
                    *cur = Some(v.clone());
                }
            }
        }
    }

    /// Merge another partial accumulator of the same kind.
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (
                AggState::Sum { total: ta, seen: sa },
                AggState::Sum { total: tb, seen: sb },
            ) => {
                *ta += tb;
                *sa |= sb;
            }
            (AggState::Min(a), AggState::Min(Some(b))) => {
                if a.as_ref().is_none_or(|c| b.total_cmp(c).is_lt()) {
                    *a = Some(b.clone());
                }
            }
            (AggState::Max(a), AggState::Max(Some(b))) => {
                if a.as_ref().is_none_or(|c| b.total_cmp(c).is_gt()) {
                    *a = Some(b.clone());
                }
            }
            (AggState::Min(_), AggState::Min(None))
            | (AggState::Max(_), AggState::Max(None)) => {}
            (
                AggState::Avg { total: ta, count: ca },
                AggState::Avg { total: tb, count: cb },
            ) => {
                *ta += tb;
                *ca += cb;
            }
            (AggState::First(a), AggState::First(b)) => {
                if a.is_none() {
                    *a = b.clone();
                }
            }
            (a, b) => panic!("merging mismatched aggregate states {a:?} / {b:?}"),
        }
    }

    /// Produce the final value.
    pub fn finish(&self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(*c as i64),
            AggState::Sum { total, seen } => {
                if *seen {
                    Value::Float(*total)
                } else {
                    Value::Null
                }
            }
            AggState::Min(v) | AggState::Max(v) | AggState::First(v) => {
                v.clone().unwrap_or(Value::Null)
            }
            AggState::Avg { total, count } => {
                if *count > 0 {
                    Value::Float(*total / *count as f64)
                } else {
                    Value::Null
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &str) -> Value {
        Value::Str(v.into())
    }

    #[test]
    fn substring_is_spark_compatible() {
        // Spark: SUBSTRING('2015-01-03', 0, 7) == SUBSTRING(.., 1, 7) == "2015-01".
        let d = s("2015-01-03 10:20:00");
        assert_eq!(
            eval_scalar("substring", &[d.clone(), Value::Int(0), Value::Int(7)]).unwrap(),
            s("2015-01")
        );
        assert_eq!(
            eval_scalar("substring", &[d.clone(), Value::Int(1), Value::Int(7)]).unwrap(),
            s("2015-01")
        );
        assert_eq!(
            eval_scalar("substring", &[d.clone(), Value::Int(0), Value::Int(10)]).unwrap(),
            s("2015-01-03")
        );
        assert_eq!(
            eval_scalar("substring", &[d.clone(), Value::Int(-5), Value::Int(5)]).unwrap(),
            s("20:00")
        );
        assert_eq!(
            eval_scalar("substring", &[Value::Null, Value::Int(1), Value::Int(2)]).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_scalar("substring", &[d, Value::Int(100), Value::Int(5)]).unwrap(),
            s("")
        );
    }

    #[test]
    fn misc_scalars() {
        assert_eq!(eval_scalar("upper", &[s("abc")]).unwrap(), s("ABC"));
        assert_eq!(eval_scalar("lower", &[s("AbC")]).unwrap(), s("abc"));
        assert_eq!(eval_scalar("length", &[s("héllo")]).unwrap(), Value::Int(5));
        assert_eq!(
            eval_scalar("concat", &[s("a"), Value::Int(1)]).unwrap(),
            s("a1")
        );
        assert_eq!(eval_scalar("abs", &[Value::Int(-4)]).unwrap(), Value::Int(4));
        assert_eq!(
            eval_scalar("round", &[Value::Float(2.567), Value::Int(1)]).unwrap(),
            Value::Float(2.6)
        );
        assert_eq!(
            eval_scalar("coalesce", &[Value::Null, Value::Int(7)]).unwrap(),
            Value::Int(7)
        );
        assert_eq!(eval_scalar("year", &[s("2015-01-03")]).unwrap(), Value::Int(2015));
        assert_eq!(eval_scalar("month", &[s("2015-01-03")]).unwrap(), Value::Int(1));
        assert_eq!(eval_scalar("day", &[s("2015-01-03")]).unwrap(), Value::Int(3));
        assert!(eval_scalar("nope", &[]).is_err());
        assert!(eval_scalar("substring", &[s("x")]).is_err());
    }

    #[test]
    fn agg_update_and_finish() {
        let mut sum = AggState::new(AggFunc::Sum);
        sum.update(&Value::Int(2));
        sum.update(&Value::Null);
        sum.update(&Value::Float(0.5));
        assert_eq!(sum.finish(), Value::Float(2.5));

        let mut count = AggState::new(AggFunc::Count);
        count.update(&Value::Int(1));
        count.update(&Value::Null);
        assert_eq!(count.finish(), Value::Int(1));

        let mut min = AggState::new(AggFunc::Min);
        min.update(&s("b"));
        min.update(&s("a"));
        assert_eq!(min.finish(), s("a"));

        let mut avg = AggState::new(AggFunc::Avg);
        avg.update(&Value::Int(1));
        avg.update(&Value::Int(3));
        assert_eq!(avg.finish(), Value::Float(2.0));

        let mut first = AggState::new(AggFunc::First);
        first.update(&Value::Null);
        first.update(&s("x"));
        first.update(&s("y"));
        assert_eq!(first.finish(), s("x"));

        assert_eq!(AggState::new(AggFunc::Sum).finish(), Value::Null);
        assert_eq!(AggState::new(AggFunc::Avg).finish(), Value::Null);
        assert_eq!(AggState::new(AggFunc::Count).finish(), Value::Int(0));
    }

    #[test]
    fn partial_merge_equals_single_pass() {
        let values: Vec<Value> = (0..100).map(Value::Int).collect();
        for func in [
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
            AggFunc::First,
        ] {
            let mut whole = AggState::new(func);
            for v in &values {
                whole.update(v);
            }
            // Split into 3 partials, merge.
            let mut merged = AggState::new(func);
            for chunk in values.chunks(34) {
                let mut partial = AggState::new(func);
                for v in chunk {
                    partial.update(v);
                }
                merged.merge(&partial);
            }
            assert_eq!(merged.finish(), whole.finish(), "{func:?}");
        }
    }
}
