//! SQL tokenizer.

use scoop_common::{Result, ScoopError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (kept as written; keyword checks are
    /// case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal ('' escapes a quote).
    Str(String),
    /// Punctuation / operator.
    Symbol(Symbol),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semicolon,
}

impl Token {
    /// True when this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::Symbol(Symbol::LParen));
                i += 1;
            }
            ')' => {
                tokens.push(Token::Symbol(Symbol::RParen));
                i += 1;
            }
            ',' => {
                tokens.push(Token::Symbol(Symbol::Comma));
                i += 1;
            }
            '*' => {
                tokens.push(Token::Symbol(Symbol::Star));
                i += 1;
            }
            '+' => {
                tokens.push(Token::Symbol(Symbol::Plus));
                i += 1;
            }
            '-' => {
                tokens.push(Token::Symbol(Symbol::Minus));
                i += 1;
            }
            '/' => {
                tokens.push(Token::Symbol(Symbol::Slash));
                i += 1;
            }
            '%' => {
                tokens.push(Token::Symbol(Symbol::Percent));
                i += 1;
            }
            ';' => {
                tokens.push(Token::Symbol(Symbol::Semicolon));
                i += 1;
            }
            '=' => {
                tokens.push(Token::Symbol(Symbol::Eq));
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Symbol(Symbol::Ne));
                    i += 2;
                } else {
                    return Err(ScoopError::Sql(format!("unexpected '!' at {i}")));
                }
            }
            '<' => match chars.get(i + 1) {
                Some('=') => {
                    tokens.push(Token::Symbol(Symbol::Le));
                    i += 2;
                }
                Some('>') => {
                    tokens.push(Token::Symbol(Symbol::Ne));
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Symbol(Symbol::Lt));
                    i += 1;
                }
            },
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Symbol(Symbol::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(Symbol::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => {
                            return Err(ScoopError::Sql(
                                "unterminated string literal".into(),
                            ))
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || (chars[i] == '.' && !is_float && chars
                            .get(i + 1)
                            .is_some_and(|c| c.is_ascii_digit())))
                {
                    if chars[i] == '.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    tokens.push(Token::Float(text.parse().map_err(|_| {
                        ScoopError::Sql(format!("bad float literal '{text}'"))
                    })?));
                } else {
                    tokens.push(Token::Int(text.parse().map_err(|_| {
                        ScoopError::Sql(format!("bad int literal '{text}'"))
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(ScoopError::Sql(format!(
                    "unexpected character '{other}' at {i}"
                )))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_gridpocket_query() {
        let toks = tokenize(
            "SELECT vid, sum(index) as max FROM largeMeter \
             WHERE date LIKE '2015-01%' GROUP BY vid ORDER BY vid",
        )
        .unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks.iter().any(|t| matches!(t, Token::Str(s) if s == "2015-01%")));
        assert!(toks.iter().any(|t| t.is_kw("group")));
    }

    #[test]
    fn numbers_and_operators() {
        let toks = tokenize("a >= 1.5 AND b <> 2 OR c != 3 < 4 <= 5 > 6").unwrap();
        assert!(toks.contains(&Token::Float(1.5)));
        assert!(toks.contains(&Token::Symbol(Symbol::Ge)));
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t, Token::Symbol(Symbol::Ne)))
                .count(),
            2
        );
        assert!(toks.contains(&Token::Symbol(Symbol::Lt)));
        assert!(toks.contains(&Token::Symbol(Symbol::Le)));
        assert!(toks.contains(&Token::Symbol(Symbol::Gt)));
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("a @ b").is_err());
    }

    #[test]
    fn substring_call_shape() {
        let toks = tokenize("SUBSTRING(date, 0, 7)").unwrap();
        assert_eq!(toks.len(), 8);
        assert!(matches!(&toks[0], Token::Ident(s) if s == "SUBSTRING"));
        assert_eq!(toks[2], Token::Ident("date".into()));
        assert_eq!(toks[3], Token::Symbol(Symbol::Comma));
        assert_eq!(toks[4], Token::Int(0));
    }
}
