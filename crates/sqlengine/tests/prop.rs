//! Property tests for the transparency invariant: executing a query with
//! Catalyst-extracted pushdown (raw-field filtering at the "store" + residual
//! on typed rows) must equal executing the full query on typed rows.

use proptest::prelude::*;
use scoop_csv::filter::filter_buffer;
use scoop_csv::schema::{DataType, Field};
use scoop_csv::{CsvWriter, Schema, Value};
use scoop_sql::catalyst::plan_query;
use scoop_sql::exec::{execute, execute_with_where};
use scoop_sql::parser::parse;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("vid", DataType::Str),
        Field::new("date", DataType::Str),
        Field::new("index", DataType::Float),
        Field::new("city", DataType::Str),
        Field::new("state", DataType::Str),
    ])
}

/// Random typed rows over a constrained domain so predicates hit often.
fn rows_strategy() -> impl Strategy<Value = Vec<Vec<Value>>> {
    let cities = prop_oneof![
        Just("Rotterdam".to_string()),
        Just("Paris".to_string()),
        Just("Utrecht".to_string()),
        Just("Nice".to_string()),
    ];
    let states = prop_oneof![
        Just("NLD".to_string()),
        Just("FRA".to_string()),
        Just("USA".to_string()),
    ];
    let row = (
        0u32..50,
        1u32..13,
        proptest::option::of(-100.0f64..100.0),
        cities,
        states,
    )
        .prop_map(|(vid, month, index, city, state)| {
            vec![
                Value::Str(format!("m{vid}").into()),
                Value::Str(format!("2015-{month:02}-15 10:00:00").into()),
                index.map(|f| Value::Float((f * 10.0).round() / 10.0)).unwrap_or(Value::Null),
                Value::Str(city.into()),
                Value::Str(state.into()),
            ]
        });
    proptest::collection::vec(row, 0..60)
}

/// A pool of WHERE clauses mixing pushable and residual shapes.
fn where_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("date LIKE '2015-01%'".to_string()),
        Just("city LIKE 'Rotterdam'".to_string()),
        Just("index > 0".to_string()),
        Just("index <= 50".to_string()),
        Just("index IS NULL".to_string()),
        Just("index IS NOT NULL".to_string()),
        Just("state IN ('FRA', 'NLD')".to_string()),
        Just("city LIKE 'R%' OR state LIKE 'FRA'".to_string()),
        Just("SUBSTRING(date, 0, 7) = '2015-01'".to_string()),
        Just("index + 1 > 10".to_string()),
        Just("NOT city LIKE 'Paris'".to_string()),
        Just("index <> 0".to_string()),
        Just("date LIKE '2015-0_-15%'".to_string()),
    ]
}

/// (select list, GROUP BY expression or "" for global/non-aggregate).
fn select_strategy() -> impl Strategy<Value = (String, String)> {
    prop_oneof![
        Just(("vid, index, city".to_string(), String::new())),
        Just((
            "vid, sum(index) as total, count(*) as n".to_string(),
            "vid".to_string()
        )),
        Just((
            "SUBSTRING(date, 0, 7) as m, sum(index) as s, first_value(city) as c".to_string(),
            "SUBSTRING(date, 0, 7)".to_string()
        )),
        Just((
            "state, min(index) as lo, max(index) as hi, avg(index) as a".to_string(),
            "state".to_string()
        )),
        Just(("count(*) as n, sum(index) as s".to_string(), String::new())),
    ]
}

fn rows_to_csv(schema: &Schema, rows: &[Vec<Value>]) -> Vec<u8> {
    let mut w = CsvWriter::new();
    w.write_header(schema);
    for r in rows {
        w.write_row(r);
    }
    w.into_bytes().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Vanilla execution == pushdown execution (store-side raw filter +
    /// residual WHERE on the projected rows), for random data and queries.
    #[test]
    fn pushdown_is_transparent(
        rows in rows_strategy(),
        wh in where_strategy(),
        wh2 in where_strategy(),
        (sel, group_expr) in select_strategy(),
    ) {
        let schema = schema();
        let group_clause = if group_expr.is_empty() {
            String::new()
        } else {
            format!(" GROUP BY {group_expr}")
        };
        let sql = format!(
            "SELECT {sel} FROM meters WHERE ({wh}) AND ({wh2}){group_clause}"
        );
        let query = parse(&sql).unwrap();

        // Vanilla: full typed execution.
        let vanilla = execute(&query, &schema, rows.clone().into_iter().map(Ok)).unwrap();

        // Pushdown: raw CSV filtered by the extracted spec, then residual.
        let plan = plan_query(&query, &schema, true).unwrap();
        let csv = rows_to_csv(&schema, &rows);
        let header: Vec<String> = schema.names().iter().map(|s| s.to_string()).collect();
        let (filtered, _) = filter_buffer(&plan.pushdown, &header, &csv, true).unwrap();
        let reader = scoop_csv::CsvReader::new(
            scoop_common::stream::once(filtered.into()),
            plan.scan_schema.clone(),
            false,
        );
        let pushed = execute_with_where(
            &query,
            &plan.scan_schema,
            plan.residual_where.as_ref(),
            reader,
        )
        .unwrap();

        // Compare as multisets of rendered rows (ORDER BY absent → order may
        // differ between the two paths).
        prop_assert_eq!(vanilla.columns.clone(), pushed.columns.clone());
        let render = |rs: &scoop_sql::ResultSet| {
            let mut v: Vec<String> = rs
                .rows
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|v| match v {
                            // Compare numerics by value (Int(2) == Float(2.0)).
                            Value::Int(i) => format!("{:.4}", *i as f64),
                            Value::Float(f) => format!("{f:.4}"),
                            other => other.to_string(),
                        })
                        .collect::<Vec<_>>()
                        .join("|")
                })
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(render(&vanilla), render(&pushed), "sql: {}", sql);
    }
}
