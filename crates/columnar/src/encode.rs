//! Column encodings and low-level serialization primitives.

use bytes::Bytes;
use scoop_common::{Result, ScoopError};
use scoop_csv::Value;

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

/// Append a u32 little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a u64 little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    put_varint(out, data.len() as u64);
    out.extend_from_slice(data);
}

/// Zigzag-encode a signed integer.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Zigzag-decode.
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Sequential reader over an encoded buffer.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wrap a buffer.
    pub fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Remaining byte count.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Read a single byte.
    pub fn bytes_one(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read exactly `n` raw bytes.
    pub fn take_pub(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let s = self
            .data
            .get(self.pos..self.pos + n)
            .ok_or_else(|| ScoopError::Columnar("unexpected end of buffer".into()))?;
        self.pos += n;
        Ok(s)
    }

    /// Read a u32.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a u64.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a varint.
    pub fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or_else(|| ScoopError::Columnar("truncated varint".into()))?;
            self.pos += 1;
            if shift >= 64 {
                return Err(ScoopError::Columnar("varint overflow".into()));
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.varint()? as usize;
        self.take(len)
    }
}

// ---------------------------------------------------------------------------
// Column chunk encodings
// ---------------------------------------------------------------------------

/// Encoding tag stored per chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Length-prefixed UTF-8 strings.
    PlainStr = 0,
    /// Dictionary of unique strings + RLE-run indices.
    DictRle = 1,
    /// Zigzag varint deltas from the previous value.
    DeltaInt = 2,
    /// Raw little-endian f64.
    PlainFloat = 3,
    /// Run-length encoded f64: `(run_len varint, f64)*` — meter readings and
    /// coordinates repeat heavily.
    FloatRle = 4,
}

impl Encoding {
    /// Decode a tag byte.
    pub fn from_tag(tag: u8) -> Result<Encoding> {
        Ok(match tag {
            0 => Encoding::PlainStr,
            1 => Encoding::DictRle,
            2 => Encoding::DeltaInt,
            3 => Encoding::PlainFloat,
            4 => Encoding::FloatRle,
            other => {
                return Err(ScoopError::Columnar(format!("unknown encoding tag {other}")))
            }
        })
    }
}

/// A column chunk's values for one row group. NULLs are carried in a validity
/// bitmap; value arrays hold only the non-null entries in row order.
///
/// Encode layout: `tag u8 | n_rows varint | validity bitmap | payload`.
pub fn encode_column(values: &[Value]) -> Vec<u8> {
    // Classify the column to pick an encoding.
    let mut has_int = false;
    let mut has_float = false;
    let mut has_str = false;
    for v in values {
        match v {
            Value::Null => {}
            Value::Int(_) => has_int = true,
            Value::Float(_) => has_float = true,
            Value::Str(_) => has_str = true,
        }
    }
    let mut out = Vec::new();
    let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    if !has_str && has_int && !has_float {
        out.push(Encoding::DeltaInt as u8);
        write_header(&mut out, values);
        let mut prev = 0i64;
        for v in &non_null {
            let Value::Int(i) = v else { unreachable!() };
            put_varint(&mut out, zigzag(i.wrapping_sub(prev)));
            prev = *i;
        }
        return out;
    }
    if !has_str {
        // Floats (or mixed numeric, or all-null): RLE when repeats pay off.
        let floats: Vec<f64> = non_null
            .iter()
            .map(|v| v.as_f64().expect("numeric"))
            .collect();
        let runs = floats
            .windows(2)
            .filter(|w| w[0].to_bits() != w[1].to_bits())
            .count()
            + usize::from(!floats.is_empty());
        if runs * 9 < floats.len() * 8 {
            out.push(Encoding::FloatRle as u8);
            write_header(&mut out, values);
            let mut i = 0usize;
            while i < floats.len() {
                let mut run = 1usize;
                while i + run < floats.len()
                    && floats[i + run].to_bits() == floats[i].to_bits()
                {
                    run += 1;
                }
                put_varint(&mut out, run as u64);
                out.extend_from_slice(&floats[i].to_le_bytes());
                i += run;
            }
        } else {
            out.push(Encoding::PlainFloat as u8);
            write_header(&mut out, values);
            for f in &floats {
                out.extend_from_slice(&f.to_le_bytes());
            }
        }
        return out;
    }
    // Strings: dictionary if it pays off. A column mixing strings with
    // numerics is stored stringly (rendered) — columnar columns are
    // homogeneous, mirroring Parquet's typed columns.
    let rendered: Vec<String> = non_null.iter().map(|v| v.to_string()).collect();
    let strings: Vec<&str> = rendered.iter().map(String::as_str).collect();
    let mut dict: Vec<&str> = Vec::new();
    let mut index_of = std::collections::HashMap::new();
    for s in &strings {
        index_of.entry(*s).or_insert_with(|| {
            dict.push(s);
            dict.len() - 1
        });
    }
    if dict.len() <= strings.len() / 2 || dict.len() <= 256 {
        out.push(Encoding::DictRle as u8);
        write_header(&mut out, values);
        put_varint(&mut out, dict.len() as u64);
        for s in &dict {
            put_bytes(&mut out, s.as_bytes());
        }
        // RLE over dictionary indices: (index, run_length)*.
        let mut i = 0usize;
        while i < strings.len() {
            let idx = index_of[strings[i]];
            let mut run = 1usize;
            while i + run < strings.len() && index_of[strings[i + run]] == idx {
                run += 1;
            }
            put_varint(&mut out, idx as u64);
            put_varint(&mut out, run as u64);
            i += run;
        }
    } else {
        out.push(Encoding::PlainStr as u8);
        write_header(&mut out, values);
        for s in &strings {
            put_bytes(&mut out, s.as_bytes());
        }
    }
    out
}

/// Row count + validity bitmap.
fn write_header(out: &mut Vec<u8>, values: &[Value]) {
    put_varint(out, values.len() as u64);
    let mut bitmap = vec![0u8; values.len().div_ceil(8)];
    for (i, v) in values.iter().enumerate() {
        if !v.is_null() {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&bitmap);
}

/// Decode a column chunk back into row-ordered values (with NULLs).
pub fn decode_column(data: &[u8]) -> Result<Vec<Value>> {
    let mut c = Cursor::new(data);
    let tag = Encoding::from_tag(
        *data
            .first()
            .ok_or_else(|| ScoopError::Columnar("empty chunk".into()))?,
    )?;
    c.pos = 1;
    let n = c.varint()? as usize;
    let bitmap_len = n.div_ceil(8);
    let bitmap = c.take(bitmap_len)?.to_vec();
    let is_valid = |i: usize| bitmap[i / 8] & (1 << (i % 8)) != 0;
    let n_valid = (0..n).filter(|&i| is_valid(i)).count();

    let mut non_null: Vec<Value> = Vec::with_capacity(n_valid);
    match tag {
        Encoding::DeltaInt => {
            let mut prev = 0i64;
            for _ in 0..n_valid {
                prev = prev.wrapping_add(unzigzag(c.varint()?));
                non_null.push(Value::Int(prev));
            }
        }
        Encoding::PlainFloat => {
            for _ in 0..n_valid {
                let raw: [u8; 8] = c.take(8)?.try_into().expect("8 bytes");
                non_null.push(Value::Float(f64::from_le_bytes(raw)));
            }
        }
        Encoding::FloatRle => {
            while non_null.len() < n_valid {
                let run = c.varint()? as usize;
                let raw: [u8; 8] = c.take(8)?.try_into().expect("8 bytes");
                let v = f64::from_le_bytes(raw);
                if non_null.len() + run > n_valid {
                    return Err(ScoopError::Columnar("float RLE run overflow".into()));
                }
                for _ in 0..run {
                    non_null.push(Value::Float(v));
                }
            }
        }
        Encoding::DictRle => {
            let dict_len = c.varint()? as usize;
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(String::from_utf8_lossy(c.bytes()?).into_owned());
            }
            while non_null.len() < n_valid {
                let idx = c.varint()? as usize;
                let run = c.varint()? as usize;
                let s = dict
                    .get(idx)
                    .ok_or_else(|| ScoopError::Columnar("dict index out of range".into()))?;
                for _ in 0..run {
                    non_null.push(Value::Str(s.clone()));
                }
            }
            if non_null.len() != n_valid {
                return Err(ScoopError::Columnar("RLE run overflow".into()));
            }
        }
        Encoding::PlainStr => {
            for _ in 0..n_valid {
                non_null.push(Value::Str(String::from_utf8_lossy(c.bytes()?).into_owned()));
            }
        }
    }
    // Re-interleave NULLs.
    let mut out = Vec::with_capacity(n);
    let mut it = non_null.into_iter();
    for i in 0..n {
        if is_valid(i) {
            out.push(it.next().expect("validity count matches"));
        } else {
            out.push(Value::Null);
        }
    }
    Ok(out)
}

/// Convenience wrapper returning [`Bytes`].
pub fn encode_column_bytes(values: &[Value]) -> Bytes {
    Bytes::from(encode_column(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: Vec<Value>) {
        let enc = encode_column(&values);
        let dec = decode_column(&enc).unwrap();
        assert_eq!(dec, values);
    }

    #[test]
    fn varint_and_zigzag() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(Cursor::new(&buf).varint().unwrap(), v);
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn int_column_roundtrip_and_compression() {
        let values: Vec<Value> = (0..1000).map(|i| Value::Int(1_000_000 + i)).collect();
        let enc = encode_column(&values);
        // Deltas of 1 → ~1 byte each plus header.
        assert!(enc.len() < 1500, "encoded {} bytes", enc.len());
        roundtrip(values);
    }

    #[test]
    fn string_dictionary_compresses_repeats() {
        let values: Vec<Value> = (0..1000)
            .map(|i| Value::Str(if i % 2 == 0 { "Rotterdam" } else { "Paris" }.into()))
            .collect();
        let enc = encode_column(&values);
        assert_eq!(enc[0], Encoding::DictRle as u8);
        assert!(enc.len() < 4200, "encoded {} bytes", enc.len());
        roundtrip(values);
    }

    #[test]
    fn float_and_null_roundtrip() {
        roundtrip(vec![
            Value::Float(1.5),
            Value::Null,
            Value::Float(-0.25),
            Value::Null,
        ]);
        roundtrip(vec![Value::Null, Value::Null]);
        roundtrip(vec![]);
    }

    #[test]
    fn mixed_numeric_column_uses_float() {
        let values = vec![Value::Int(1), Value::Float(2.5), Value::Null];
        let enc = encode_column(&values);
        assert_eq!(enc[0], Encoding::PlainFloat as u8);
        let dec = decode_column(&enc).unwrap();
        // Ints come back as floats — equal under numeric coercion.
        assert_eq!(dec[0], Value::Int(1));
        assert_eq!(dec[1], Value::Float(2.5));
        assert!(dec[2].is_null());
    }

    #[test]
    fn unique_strings_fall_back_to_plain_when_large() {
        let values: Vec<Value> =
            (0..600).map(|i| Value::Str(format!("unique-{i}"))).collect();
        let enc = encode_column(&values);
        // 600 unique of 600 → dict does not pay (dict > 256 and > half).
        assert_eq!(enc[0], Encoding::PlainStr as u8);
        roundtrip(values);
    }

    #[test]
    fn corrupt_chunks_error() {
        assert!(decode_column(&[]).is_err());
        assert!(decode_column(&[9, 1, 1]).is_err());
        let mut good = encode_column(&[Value::Int(5)]);
        good.truncate(good.len() - 1);
        assert!(decode_column(&good).is_err());
    }
}
