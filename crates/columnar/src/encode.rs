//! Column encodings and low-level serialization primitives.

use bytes::Bytes;
use scoop_common::{Result, ScoopError};
use scoop_csv::Value;

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

/// Append a u32 little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a u64 little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    put_varint(out, data.len() as u64);
    out.extend_from_slice(data);
}

/// Zigzag-encode a signed integer.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Zigzag-decode.
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Sequential reader over an encoded buffer.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wrap a buffer.
    pub fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Remaining byte count.
    pub fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    /// Read a single byte.
    pub fn bytes_one(&mut self) -> Result<u8> {
        self.take(1)?
            .first()
            .copied()
            .ok_or_else(|| ScoopError::Corrupt("unexpected end of buffer".into()))
    }

    /// Read exactly `n` raw bytes.
    pub fn take_pub(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| ScoopError::Corrupt("length overflows buffer offset".into()))?;
        let s = self
            .data
            .get(self.pos..end)
            .ok_or_else(|| ScoopError::Corrupt("unexpected end of buffer".into()))?;
        self.pos = end;
        Ok(s)
    }

    /// Read a u32.
    pub fn u32(&mut self) -> Result<u32> {
        let b: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| ScoopError::Corrupt("short u32".into()))?;
        Ok(u32::from_le_bytes(b))
    }

    /// Read a u64.
    pub fn u64(&mut self) -> Result<u64> {
        let b: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| ScoopError::Corrupt("short u64".into()))?;
        Ok(u64::from_le_bytes(b))
    }

    /// Read a varint.
    pub fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or_else(|| ScoopError::Columnar("truncated varint".into()))?;
            self.pos += 1;
            if shift >= 64 {
                return Err(ScoopError::Columnar("varint overflow".into()));
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.varint()? as usize;
        self.take(len)
    }
}

// ---------------------------------------------------------------------------
// Column chunk encodings
// ---------------------------------------------------------------------------

/// Encoding tag stored per chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Length-prefixed UTF-8 strings.
    PlainStr = 0,
    /// Dictionary of unique strings + RLE-run indices.
    DictRle = 1,
    /// Zigzag varint deltas from the previous value.
    DeltaInt = 2,
    /// Raw little-endian f64.
    PlainFloat = 3,
    /// Run-length encoded f64: `(run_len varint, f64)*` — meter readings and
    /// coordinates repeat heavily.
    FloatRle = 4,
}

impl Encoding {
    /// Decode a tag byte.
    pub fn from_tag(tag: u8) -> Result<Encoding> {
        Ok(match tag {
            0 => Encoding::PlainStr,
            1 => Encoding::DictRle,
            2 => Encoding::DeltaInt,
            3 => Encoding::PlainFloat,
            4 => Encoding::FloatRle,
            other => {
                return Err(ScoopError::Columnar(format!("unknown encoding tag {other}")))
            }
        })
    }
}

/// A column chunk's values for one row group. NULLs are carried in a validity
/// bitmap; value arrays hold only the non-null entries in row order.
///
/// Encode layout: `tag u8 | n_rows varint | validity bitmap | payload`.
pub fn encode_column(values: &[Value]) -> Vec<u8> {
    // Classify the column to pick an encoding.
    let mut has_int = false;
    let mut has_float = false;
    let mut has_str = false;
    for v in values {
        match v {
            Value::Null => {}
            Value::Int(_) => has_int = true,
            Value::Float(_) => has_float = true,
            Value::Str(_) => has_str = true,
        }
    }
    let mut out = Vec::new();
    let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    if !has_str && has_int && !has_float {
        out.push(Encoding::DeltaInt as u8);
        write_header(&mut out, values);
        let mut prev = 0i64;
        for v in &non_null {
            // Classification guarantees Int here; any other shape routed to
            // the float or string encodings above.
            let Value::Int(i) = v else { continue };
            put_varint(&mut out, zigzag(i.wrapping_sub(prev)));
            prev = *i;
        }
        return out;
    }
    if !has_str {
        // Floats (or mixed numeric, or all-null): RLE when repeats pay off.
        let floats: Vec<f64> = non_null.iter().filter_map(|v| v.as_f64()).collect();
        let runs = floats
            .windows(2)
            .filter(|w| w.first().map(|f| f.to_bits()) != w.last().map(|f| f.to_bits()))
            .count()
            .saturating_add(usize::from(!floats.is_empty()));
        if runs.saturating_mul(9) < floats.len().saturating_mul(8) {
            out.push(Encoding::FloatRle as u8);
            write_header(&mut out, values);
            let mut i = 0usize;
            while let Some(&first) = floats.get(i) {
                let run = floats
                    .iter()
                    .skip(i)
                    .take_while(|f| f.to_bits() == first.to_bits())
                    .count();
                put_varint(&mut out, run as u64);
                out.extend_from_slice(&first.to_le_bytes());
                // `run >= 1`: the element at `i` always matches itself.
                i = i.saturating_add(run.max(1));
            }
        } else {
            out.push(Encoding::PlainFloat as u8);
            write_header(&mut out, values);
            for f in &floats {
                out.extend_from_slice(&f.to_le_bytes());
            }
        }
        return out;
    }
    // Strings: dictionary if it pays off. A column mixing strings with
    // numerics is stored stringly (rendered) — columnar columns are
    // homogeneous, mirroring Parquet's typed columns.
    let rendered: Vec<String> = non_null.iter().map(|v| v.to_string()).collect();
    let strings: Vec<&str> = rendered.iter().map(String::as_str).collect();
    let mut dict: Vec<&str> = Vec::new();
    let mut index_of = std::collections::HashMap::new();
    for s in &strings {
        index_of.entry(*s).or_insert_with(|| {
            dict.push(s);
            dict.len().saturating_sub(1)
        });
    }
    if dict.len() <= strings.len() / 2 || dict.len() <= 256 {
        out.push(Encoding::DictRle as u8);
        write_header(&mut out, values);
        put_varint(&mut out, dict.len() as u64);
        for s in &dict {
            put_bytes(&mut out, s.as_bytes());
        }
        // RLE over dictionary indices: (index, run_length)*. Every string
        // was inserted into `index_of` above, so the lookup always hits.
        let codes: Vec<usize> = strings
            .iter()
            .map(|s| index_of.get(s).copied().unwrap_or_default())
            .collect();
        let mut i = 0usize;
        while let Some(&idx) = codes.get(i) {
            let run = codes.iter().skip(i).take_while(|&&c| c == idx).count();
            put_varint(&mut out, idx as u64);
            put_varint(&mut out, run as u64);
            // `run >= 1`: the element at `i` always matches itself.
            i = i.saturating_add(run.max(1));
        }
    } else {
        out.push(Encoding::PlainStr as u8);
        write_header(&mut out, values);
        for s in &strings {
            put_bytes(&mut out, s.as_bytes());
        }
    }
    out
}

/// Row count + validity bitmap.
fn write_header(out: &mut Vec<u8>, values: &[Value]) {
    put_varint(out, values.len() as u64);
    let mut bitmap = vec![0u8; values.len().div_ceil(8)];
    for (i, v) in values.iter().enumerate() {
        if !v.is_null() {
            if let Some(slot) = bitmap.get_mut(i / 8) {
                *slot |= 1 << (i % 8);
            }
        }
    }
    out.extend_from_slice(&bitmap);
}

/// Typed payload of a batch-decoded column chunk. Arrays are *dense* — they
/// hold only the non-null entries, in row order; NULL positions live in the
/// validity bitmap of the owning [`DecodedColumn`].
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Decoded [`Encoding::DeltaInt`].
    Int(Vec<i64>),
    /// Decoded [`Encoding::PlainFloat`] or [`Encoding::FloatRle`].
    Float(Vec<f64>),
    /// Decoded [`Encoding::PlainStr`].
    Str(Vec<String>),
    /// Decoded [`Encoding::DictRle`]: the unique values plus one dictionary
    /// code per dense entry. Kept unmaterialized so equality predicates can
    /// compare codes instead of strings.
    Dict {
        /// Unique values in first-appearance order.
        dict: Vec<String>,
        /// One dictionary index per dense entry.
        codes: Vec<u32>,
    },
}

/// A column chunk decoded as a batch: typed arrays plus a validity bitmap,
/// instead of one boxed [`Value`] per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedColumn {
    n_rows: usize,
    validity: Vec<u8>,
    data: ColumnData,
}

impl DecodedColumn {
    /// Logical row count, including NULLs.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True when the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Whether row `row` is non-null.
    pub fn is_valid(&self, row: usize) -> bool {
        self.validity
            .get(row / 8)
            .is_some_and(|b| b & (1 << (row % 8)) != 0)
    }

    /// The typed dense payload.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Materialize the dense (non-null) entry at position `k`.
    pub fn dense_value(&self, k: usize) -> Value {
        match &self.data {
            ColumnData::Int(v) => v.get(k).map_or(Value::Null, |&i| Value::Int(i)),
            ColumnData::Float(v) => v.get(k).map_or(Value::Null, |&f| Value::Float(f)),
            ColumnData::Str(v) => v.get(k).map_or(Value::Null, |s| Value::Str(s.as_str().into())),
            ColumnData::Dict { dict, codes } => codes
                .get(k)
                .and_then(|&c| dict.get(c as usize))
                .map_or(Value::Null, |s| Value::Str(s.as_str().into())),
        }
    }

    /// Dictionary code of `needle` when dict-encoded: `Some(Some(code))` when
    /// present, `Some(None)` when the dictionary proves no row can match, and
    /// `None` when the chunk is not dictionary-encoded.
    pub fn dict_code(&self, needle: &str) -> Option<Option<u32>> {
        match &self.data {
            ColumnData::Dict { dict, .. } => {
                Some(dict.iter().position(|s| s == needle).map(|i| i as u32))
            }
            _ => None,
        }
    }

    /// The dense dictionary codes when dict-encoded.
    pub fn codes(&self) -> Option<&[u32]> {
        match &self.data {
            ColumnData::Dict { codes, .. } => Some(codes),
            _ => None,
        }
    }

    /// Re-interleave NULLs and materialize every cell — the row-at-a-time
    /// compatibility shape.
    pub fn to_values(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.n_rows);
        let mut k = 0usize;
        for row in 0..self.n_rows {
            if self.is_valid(row) {
                out.push(self.dense_value(k));
                k += 1;
            } else {
                out.push(Value::Null);
            }
        }
        out
    }
}

/// Read 8 bytes as a little-endian f64.
fn take_f64(c: &mut Cursor<'_>) -> Result<f64> {
    let b: [u8; 8] = c
        .take(8)?
        .try_into()
        .map_err(|_| ScoopError::Corrupt("short f64".into()))?;
    Ok(f64::from_le_bytes(b))
}

/// Decode a column chunk into typed arrays: one pass per value or run, no
/// per-cell [`Value`] boxing, RLE runs expanded with `resize` rather than a
/// per-row push.
pub fn decode_column_batch(data: &[u8]) -> Result<DecodedColumn> {
    let mut c = Cursor::new(data);
    if data.is_empty() {
        return Err(ScoopError::Columnar("empty chunk".into()));
    }
    let tag = Encoding::from_tag(c.bytes_one()?)?;
    let n = c.varint()? as usize;
    let bitmap_len = n.div_ceil(8);
    let validity = c.take(bitmap_len)?.to_vec();
    let is_valid =
        |i: usize| validity.get(i / 8).is_some_and(|b| b & (1 << (i % 8)) != 0);
    let n_valid = (0..n).filter(|&i| is_valid(i)).count();

    let data = match tag {
        Encoding::DeltaInt => {
            let mut vals = Vec::with_capacity(n_valid);
            let mut prev = 0i64;
            for _ in 0..n_valid {
                prev = prev.wrapping_add(unzigzag(c.varint()?));
                vals.push(prev);
            }
            ColumnData::Int(vals)
        }
        Encoding::PlainFloat => {
            let mut vals = Vec::with_capacity(n_valid);
            for _ in 0..n_valid {
                vals.push(take_f64(&mut c)?);
            }
            ColumnData::Float(vals)
        }
        Encoding::FloatRle => {
            let mut vals = Vec::with_capacity(n_valid);
            while vals.len() < n_valid {
                let run = c.varint()? as usize;
                let v = take_f64(&mut c)?;
                let new_len = vals.len().saturating_add(run);
                if run == 0 || new_len > n_valid {
                    return Err(ScoopError::Corrupt("float RLE run overflow".into()));
                }
                vals.resize(new_len, v);
            }
            ColumnData::Float(vals)
        }
        Encoding::DictRle => {
            let dict_len = c.varint()? as usize;
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(String::from_utf8_lossy(c.bytes()?).into_owned());
            }
            let mut codes: Vec<u32> = Vec::with_capacity(n_valid);
            while codes.len() < n_valid {
                let idx = c.varint()? as usize;
                let run = c.varint()? as usize;
                if idx >= dict.len() {
                    return Err(ScoopError::Corrupt("dict index out of range".into()));
                }
                let new_len = codes.len().saturating_add(run);
                if run == 0 || new_len > n_valid {
                    return Err(ScoopError::Corrupt("RLE run overflow".into()));
                }
                codes.resize(new_len, idx as u32);
            }
            ColumnData::Dict { dict, codes }
        }
        Encoding::PlainStr => {
            let mut vals = Vec::with_capacity(n_valid);
            for _ in 0..n_valid {
                vals.push(String::from_utf8_lossy(c.bytes()?).into_owned());
            }
            ColumnData::Str(vals)
        }
    };
    Ok(DecodedColumn { n_rows: n, validity, data })
}

/// Decode a column chunk back into row-ordered values (with NULLs).
pub fn decode_column(data: &[u8]) -> Result<Vec<Value>> {
    Ok(decode_column_batch(data)?.to_values())
}

/// Convenience wrapper returning [`Bytes`].
pub fn encode_column_bytes(values: &[Value]) -> Bytes {
    Bytes::from(encode_column(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: Vec<Value>) {
        let enc = encode_column(&values);
        let dec = decode_column(&enc).unwrap();
        assert_eq!(dec, values);
    }

    #[test]
    fn varint_and_zigzag() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(Cursor::new(&buf).varint().unwrap(), v);
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn int_column_roundtrip_and_compression() {
        let values: Vec<Value> = (0..1000).map(|i| Value::Int(1_000_000 + i)).collect();
        let enc = encode_column(&values);
        // Deltas of 1 → ~1 byte each plus header.
        assert!(enc.len() < 1500, "encoded {} bytes", enc.len());
        roundtrip(values);
    }

    #[test]
    fn string_dictionary_compresses_repeats() {
        let values: Vec<Value> = (0..1000)
            .map(|i| Value::Str(if i % 2 == 0 { "Rotterdam" } else { "Paris" }.into()))
            .collect();
        let enc = encode_column(&values);
        assert_eq!(enc[0], Encoding::DictRle as u8);
        assert!(enc.len() < 4200, "encoded {} bytes", enc.len());
        roundtrip(values);
    }

    #[test]
    fn float_and_null_roundtrip() {
        roundtrip(vec![
            Value::Float(1.5),
            Value::Null,
            Value::Float(-0.25),
            Value::Null,
        ]);
        roundtrip(vec![Value::Null, Value::Null]);
        roundtrip(vec![]);
    }

    #[test]
    fn mixed_numeric_column_uses_float() {
        let values = vec![Value::Int(1), Value::Float(2.5), Value::Null];
        let enc = encode_column(&values);
        assert_eq!(enc[0], Encoding::PlainFloat as u8);
        let dec = decode_column(&enc).unwrap();
        // Ints come back as floats — equal under numeric coercion.
        assert_eq!(dec[0], Value::Int(1));
        assert_eq!(dec[1], Value::Float(2.5));
        assert!(dec[2].is_null());
    }

    #[test]
    fn unique_strings_fall_back_to_plain_when_large() {
        let values: Vec<Value> =
            (0..600).map(|i| Value::Str(format!("unique-{i}").into())).collect();
        let enc = encode_column(&values);
        // 600 unique of 600 → dict does not pay (dict > 256 and > half).
        assert_eq!(enc[0], Encoding::PlainStr as u8);
        roundtrip(values);
    }

    #[test]
    fn dict_batch_exposes_codes() {
        let values: Vec<Value> = ["a", "b", "a", "a", "c"]
            .iter()
            .map(|s| Value::Str(s.to_string().into()))
            .collect();
        let enc = encode_column(&values);
        assert_eq!(enc[0], Encoding::DictRle as u8);
        let col = decode_column_batch(&enc).unwrap();
        assert_eq!(col.len(), 5);
        assert_eq!(col.dict_code("b"), Some(Some(1)));
        assert_eq!(col.dict_code("ghost"), Some(None));
        assert_eq!(col.codes(), Some(&[0u32, 1, 0, 0, 2][..]));
        assert_eq!(col.to_values(), values);
    }

    #[test]
    fn batch_decode_matches_row_decode_with_nulls() {
        let cases: Vec<Vec<Value>> = vec![
            vec![Value::Int(7), Value::Null, Value::Int(9)],
            vec![Value::Float(1.0), Value::Float(1.0), Value::Null, Value::Float(2.5)],
            (0..40)
                .map(|i| {
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Str(format!("s{}", i % 3).into())
                    }
                })
                .collect(),
        ];
        for values in cases {
            let enc = encode_column(&values);
            let batch = decode_column_batch(&enc).unwrap();
            assert_eq!(batch.to_values(), decode_column(&enc).unwrap());
            assert_eq!(batch.to_values(), values);
        }
    }

    #[test]
    fn corrupt_chunks_error() {
        assert!(decode_column(&[]).is_err());
        assert!(decode_column(&[9, 1, 1]).is_err());
        let mut good = encode_column(&[Value::Int(5)]);
        good.truncate(good.len() - 1);
        assert!(decode_column(&good).is_err());
    }
}
