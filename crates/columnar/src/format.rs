//! On-disk layout: row groups + footer.
//!
//! ```text
//! [rg0 col0 chunk][rg0 col1 chunk]...[rg1 col0 chunk]...[footer][len u32]["SCOL"]
//! ```
//!
//! Like Parquet, all metadata (schema, chunk offsets/lengths, per-chunk
//! min/max statistics, row counts) lives in a footer at the end of the
//! object, so a reader fetches the tail first and then only the chunks it
//! needs — which is what makes column pruning cheap over ranged GETs.

use crate::encode::{put_bytes, put_u32, put_u64, put_varint, Cursor};
use scoop_common::{Result, ScoopError};
use scoop_csv::schema::{DataType, Field, Schema};
use scoop_csv::Value;

/// Trailing magic.
pub const MAGIC: &[u8; 4] = b"SCOL";
/// Format version.
pub const VERSION: u8 = 1;

/// Location + stats of one column chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkMeta {
    /// Absolute byte offset of the encoded chunk.
    pub offset: u64,
    /// Encoded length in bytes.
    pub length: u64,
    /// Minimum non-null value (Null when the chunk is all-null/empty).
    pub min: Value,
    /// Maximum non-null value.
    pub max: Value,
}

/// Metadata of one row group.
#[derive(Debug, Clone, PartialEq)]
pub struct RowGroupMeta {
    /// Rows in this group.
    pub rows: u64,
    /// One chunk per schema column, in schema order.
    pub chunks: Vec<ChunkMeta>,
}

/// The parsed footer.
#[derive(Debug, Clone, PartialEq)]
pub struct Footer {
    /// Logical schema.
    pub schema: Schema,
    /// Row groups in file order.
    pub row_groups: Vec<RowGroupMeta>,
}

impl Footer {
    /// Total row count.
    pub fn num_rows(&self) -> u64 {
        self.row_groups.iter().map(|g| g.rows).sum()
    }
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            put_varint(out, crate::encode::zigzag(*i));
        }
        Value::Float(f) => {
            out.push(2);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            put_bytes(out, s.as_bytes());
        }
    }
}

fn get_value(c: &mut Cursor<'_>) -> Result<Value> {
    let tag = c.bytes_one()?;
    Ok(match tag {
        0 => Value::Null,
        1 => Value::Int(crate::encode::unzigzag(c.varint()?)),
        2 => {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(c.take_pub(8)?);
            Value::Float(f64::from_le_bytes(raw))
        }
        3 => Value::Str(scoop_csv::SmallStr::from_utf8_lossy(c.bytes()?)),
        other => return Err(ScoopError::Columnar(format!("bad value tag {other}"))),
    })
}

impl Footer {
    /// Serialize the footer (without length/magic trailer).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(VERSION);
        put_varint(&mut out, self.schema.len() as u64);
        for f in &self.schema.fields {
            put_bytes(&mut out, f.name.as_bytes());
            out.push(match f.dtype {
                DataType::Int => 0,
                DataType::Float => 1,
                DataType::Str => 2,
            });
        }
        put_varint(&mut out, self.row_groups.len() as u64);
        for g in &self.row_groups {
            put_varint(&mut out, g.rows);
            for c in &g.chunks {
                put_u64(&mut out, c.offset);
                put_u64(&mut out, c.length);
                put_value(&mut out, &c.min);
                put_value(&mut out, &c.max);
            }
        }
        out
    }

    /// Parse a footer buffer.
    pub fn decode(data: &[u8]) -> Result<Footer> {
        let mut c = Cursor::new(data);
        let version = c.bytes_one()?;
        if version != VERSION {
            return Err(ScoopError::Columnar(format!(
                "unsupported columnar version {version}"
            )));
        }
        let n_cols = c.varint()? as usize;
        let mut fields = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let name = String::from_utf8_lossy(c.bytes()?).into_owned();
            let dtype = match c.bytes_one()? {
                0 => DataType::Int,
                1 => DataType::Float,
                2 => DataType::Str,
                other => {
                    return Err(ScoopError::Columnar(format!("bad dtype tag {other}")))
                }
            };
            fields.push(Field::new(name, dtype));
        }
        let n_groups = c.varint()? as usize;
        let mut row_groups = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let rows = c.varint()?;
            let mut chunks = Vec::with_capacity(n_cols);
            for _ in 0..n_cols {
                let offset = c.u64()?;
                let length = c.u64()?;
                let min = get_value(&mut c)?;
                let max = get_value(&mut c)?;
                chunks.push(ChunkMeta { offset, length, min, max });
            }
            row_groups.push(RowGroupMeta { rows, chunks });
        }
        Ok(Footer { schema: Schema::new(fields), row_groups })
    }

    /// Append the footer + trailer (length + magic) to a file buffer.
    pub fn write_trailer(&self, out: &mut Vec<u8>) {
        let footer = self.encode();
        let len = footer.len() as u32;
        out.extend_from_slice(&footer);
        put_u32(out, len);
        out.extend_from_slice(MAGIC);
    }
}

/// Compute min/max stats over a column slice.
pub fn column_stats(values: &[Value]) -> (Value, Value) {
    let mut min: Option<&Value> = None;
    let mut max: Option<&Value> = None;
    for v in values {
        if v.is_null() {
            continue;
        }
        if min.is_none_or(|m| v.total_cmp(m).is_lt()) {
            min = Some(v);
        }
        if max.is_none_or(|m| v.total_cmp(m).is_gt()) {
            max = Some(v);
        }
    }
    (
        min.cloned().unwrap_or(Value::Null),
        max.cloned().unwrap_or(Value::Null),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn footer() -> Footer {
        Footer {
            schema: Schema::new(vec![
                Field::new("vid", DataType::Str),
                Field::new("index", DataType::Float),
            ]),
            row_groups: vec![RowGroupMeta {
                rows: 100,
                chunks: vec![
                    ChunkMeta {
                        offset: 0,
                        length: 512,
                        min: Value::Str("m1".into()),
                        max: Value::Str("m99".into()),
                    },
                    ChunkMeta {
                        offset: 512,
                        length: 800,
                        min: Value::Float(0.5),
                        max: Value::Float(99.0),
                    },
                ],
            }],
        }
    }

    #[test]
    fn footer_roundtrip() {
        let f = footer();
        let enc = f.encode();
        assert_eq!(Footer::decode(&enc).unwrap(), f);
        assert_eq!(f.num_rows(), 100);
    }

    #[test]
    fn trailer_layout() {
        let f = footer();
        let mut buf = vec![0u8; 10]; // pretend chunk data
        f.write_trailer(&mut buf);
        assert_eq!(&buf[buf.len() - 4..], MAGIC);
        let len = u32::from_le_bytes(buf[buf.len() - 8..buf.len() - 4].try_into().unwrap());
        let footer_bytes = &buf[buf.len() - 8 - len as usize..buf.len() - 8];
        assert_eq!(Footer::decode(footer_bytes).unwrap(), f);
    }

    #[test]
    fn stats_ignore_nulls() {
        let (min, max) = column_stats(&[
            Value::Null,
            Value::Int(5),
            Value::Int(-3),
            Value::Null,
        ]);
        assert_eq!(min, Value::Int(-3));
        assert_eq!(max, Value::Int(5));
        let (min, max) = column_stats(&[Value::Null]);
        assert!(min.is_null() && max.is_null());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Footer::decode(&[]).is_err());
        assert!(Footer::decode(&[99]).is_err());
    }
}
