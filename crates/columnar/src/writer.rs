//! Columnar writer: typed rows → encoded object bytes.

use crate::encode::encode_column;
use crate::format::{column_stats, ChunkMeta, Footer, RowGroupMeta};
use bytes::Bytes;
use scoop_csv::{Schema, Value};

/// Default rows per row group (Parquet defaults to ~1M; smaller groups keep
/// laptop-scale experiments granular).
pub const DEFAULT_ROW_GROUP_ROWS: usize = 10_000;

/// Buffered columnar writer.
pub struct ColumnarWriter {
    schema: Schema,
    row_group_rows: usize,
    /// Column-major buffer of the current row group.
    pending: Vec<Vec<Value>>,
    /// Encoded file body so far.
    body: Vec<u8>,
    groups: Vec<RowGroupMeta>,
}

impl ColumnarWriter {
    /// Create a writer with the default row-group size.
    pub fn new(schema: Schema) -> Self {
        Self::with_row_group_rows(schema, DEFAULT_ROW_GROUP_ROWS)
    }

    /// Create a writer with an explicit row-group size.
    pub fn with_row_group_rows(schema: Schema, row_group_rows: usize) -> Self {
        assert!(row_group_rows > 0, "row group size must be positive");
        let cols = schema.len();
        ColumnarWriter {
            schema,
            row_group_rows,
            pending: vec![Vec::new(); cols],
            body: Vec::new(),
            groups: Vec::new(),
        }
    }

    /// Append one typed row (padded/truncated to the schema width).
    pub fn write_row(&mut self, row: &[Value]) {
        for (i, col) in self.pending.iter_mut().enumerate() {
            col.push(row.get(i).cloned().unwrap_or(Value::Null));
        }
        if self.pending[0].len() >= self.row_group_rows {
            self.flush_group();
        }
    }

    fn flush_group(&mut self) {
        let rows = self.pending.first().map(Vec::len).unwrap_or(0);
        if rows == 0 {
            return;
        }
        let mut chunks = Vec::with_capacity(self.pending.len());
        for col in &mut self.pending {
            let (min, max) = column_stats(col);
            let encoded = encode_column(col);
            chunks.push(ChunkMeta {
                offset: self.body.len() as u64,
                length: encoded.len() as u64,
                min,
                max,
            });
            self.body.extend_from_slice(&encoded);
            col.clear();
        }
        self.groups.push(RowGroupMeta { rows: rows as u64, chunks });
    }

    /// Finish: flush the tail group, append footer + trailer, return bytes.
    pub fn finish(mut self) -> Bytes {
        self.flush_group();
        let footer = Footer { schema: self.schema, row_groups: self.groups };
        footer.write_trailer(&mut self.body);
        Bytes::from(self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::ColumnarReader;
    use scoop_csv::schema::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("vid", DataType::Str),
            Field::new("index", DataType::Float),
            Field::new("n", DataType::Int),
        ])
    }

    #[test]
    fn write_read_roundtrip_across_row_groups() {
        let mut w = ColumnarWriter::with_row_group_rows(schema(), 7);
        let rows: Vec<Vec<Value>> = (0..25)
            .map(|i| {
                vec![
                    Value::Str(format!("m{}", i % 3).into()),
                    if i % 5 == 0 { Value::Null } else { Value::Float(i as f64 / 2.0) },
                    Value::Int(i),
                ]
            })
            .collect();
        for r in &rows {
            w.write_row(r);
        }
        let data = w.finish();
        let reader = ColumnarReader::open_bytes(data).unwrap();
        assert_eq!(reader.num_rows(), 25);
        assert_eq!(reader.footer().row_groups.len(), 4);
        let back = reader.read_rows(None).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn empty_file_roundtrip() {
        let w = ColumnarWriter::new(schema());
        let data = w.finish();
        let reader = ColumnarReader::open_bytes(data).unwrap();
        assert_eq!(reader.num_rows(), 0);
        assert!(reader.read_rows(None).unwrap().is_empty());
    }

    #[test]
    fn columnar_beats_csv_on_size() {
        // Repetitive data (like meter readings) compresses well.
        let mut w = ColumnarWriter::new(schema());
        let mut csv_len = 0usize;
        for i in 0..5000 {
            let row = vec![
                Value::Str(format!("meter-{}", i % 10).into()),
                Value::Float(100.0),
                Value::Int(i),
            ];
            csv_len += format!("meter-{},100.0,{}\n", i % 10, i).len();
            w.write_row(&row);
        }
        let data = w.finish();
        assert!(
            data.len() < csv_len / 2,
            "columnar {} vs csv {csv_len}",
            data.len()
        );
    }
}
