//! Columnar reader with column pruning and row-group skipping.
//!
//! The reader fetches through a range callback so the same code path serves
//! local buffers and ranged object-store GETs. It counts the bytes it
//! actually fetched — the quantity the Fig. 8 Scoop-vs-Parquet comparison
//! turns on (compressed, column-pruned transfer vs storlet-filtered CSV).

use crate::encode::decode_column;
use crate::format::{Footer, MAGIC};
use bytes::Bytes;
use scoop_common::{Result, ScoopError};
use scoop_csv::{Predicate, Schema, Value};
use std::cell::Cell;

/// Fetch `[start, end)` of the underlying object.
pub type FetchFn<'a> = Box<dyn Fn(u64, u64) -> Result<Bytes> + 'a>;

/// A columnar file reader.
pub struct ColumnarReader<'a> {
    fetch: FetchFn<'a>,
    footer: Footer,
    bytes_fetched: Cell<u64>,
}

impl<'a> ColumnarReader<'a> {
    /// Open via a range-fetch callback over an object of `total_len` bytes.
    pub fn open(total_len: u64, fetch: FetchFn<'a>) -> Result<ColumnarReader<'a>> {
        if total_len < 8 {
            return Err(ScoopError::Columnar("object too small".into()));
        }
        let tail = fetch(total_len - 8, total_len)?;
        let mut fetched = tail.len() as u64;
        if &tail[4..8] != MAGIC {
            return Err(ScoopError::Columnar("missing SCOL magic".into()));
        }
        let footer_len = u32::from_le_bytes(tail[0..4].try_into().expect("4 bytes")) as u64;
        if footer_len + 8 > total_len {
            return Err(ScoopError::Columnar("footer length exceeds object".into()));
        }
        let footer_bytes = fetch(total_len - 8 - footer_len, total_len - 8)?;
        fetched += footer_bytes.len() as u64;
        let footer = Footer::decode(&footer_bytes)?;
        Ok(ColumnarReader { fetch, footer, bytes_fetched: Cell::new(fetched) })
    }

    /// Open over an in-memory buffer.
    pub fn open_bytes(data: Bytes) -> Result<ColumnarReader<'static>> {
        let len = data.len() as u64;
        ColumnarReader::open(
            len,
            Box::new(move |s, e| {
                let s = (s.min(len)) as usize;
                let e = (e.min(len)) as usize;
                Ok(data.slice(s..e.max(s)))
            }),
        )
    }

    /// Parsed footer.
    pub fn footer(&self) -> &Footer {
        &self.footer
    }

    /// Logical schema.
    pub fn schema(&self) -> &Schema {
        &self.footer.schema
    }

    /// Total rows in the object.
    pub fn num_rows(&self) -> u64 {
        self.footer.num_rows()
    }

    /// Bytes fetched so far (footer + chunks).
    pub fn bytes_fetched(&self) -> u64 {
        self.bytes_fetched.get()
    }

    fn fetch_range(&self, start: u64, end: u64) -> Result<Bytes> {
        let data = (self.fetch)(start, end)?;
        self.bytes_fetched.set(self.bytes_fetched.get() + data.len() as u64);
        Ok(data)
    }

    /// Read full rows, pruning to `columns` when given (output column order
    /// follows the request). Returns rows in file order.
    pub fn read_rows(&self, columns: Option<&[String]>) -> Result<Vec<Vec<Value>>> {
        self.read_rows_filtered(columns, None)
    }

    /// Like [`ColumnarReader::read_rows`], additionally skipping row groups
    /// whose min/max statistics prove the predicate can never hold (the
    /// Parquet-style stats-pruning extension; selection *within* surviving
    /// groups still happens compute-side, as in the paper's comparison).
    pub fn read_rows_filtered(
        &self,
        columns: Option<&[String]>,
        predicate: Option<&Predicate>,
    ) -> Result<Vec<Vec<Value>>> {
        let schema = &self.footer.schema;
        let col_indices: Vec<usize> = match columns {
            None => (0..schema.len()).collect(),
            Some(cols) => cols
                .iter()
                .map(|c| schema.resolve(c))
                .collect::<Result<_>>()?,
        };
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for group in &self.footer.row_groups {
            if let Some(pred) = predicate {
                if group_provably_empty(schema, group, pred) {
                    continue;
                }
            }
            let mut cols: Vec<Vec<Value>> = Vec::with_capacity(col_indices.len());
            for &ci in &col_indices {
                let chunk = &group.chunks[ci];
                let data = self.fetch_range(chunk.offset, chunk.offset + chunk.length)?;
                cols.push(decode_column(&data)?);
            }
            let n = group.rows as usize;
            for r in 0..n {
                rows.push(
                    cols.iter()
                        .map(|c| c.get(r).cloned().unwrap_or(Value::Null))
                        .collect(),
                );
            }
        }
        Ok(rows)
    }
}

/// True when the row group's stats prove no row can satisfy the predicate.
/// Conservative: unknown shapes return false (cannot skip).
fn group_provably_empty(
    schema: &Schema,
    group: &crate::format::RowGroupMeta,
    pred: &Predicate,
) -> bool {
    use std::cmp::Ordering;
    let stats = |col: &str| -> Option<(&Value, &Value)> {
        let i = schema.index_of(col)?;
        let c = &group.chunks[i];
        if c.min.is_null() || c.max.is_null() {
            return None;
        }
        Some((&c.min, &c.max))
    };
    match pred {
        Predicate::Eq(c, v) => match stats(c) {
            Some((min, max)) => {
                v.sql_cmp(min) == Some(Ordering::Less) || v.sql_cmp(max) == Some(Ordering::Greater)
            }
            None => false,
        },
        Predicate::Lt(c, v) => {
            matches!(stats(c), Some((min, _)) if min.sql_cmp(v) != Some(Ordering::Less))
        }
        Predicate::Le(c, v) => {
            matches!(stats(c), Some((min, _)) if min.sql_cmp(v) == Some(Ordering::Greater))
        }
        Predicate::Gt(c, v) => {
            matches!(stats(c), Some((_, max)) if max.sql_cmp(v) != Some(Ordering::Greater))
        }
        Predicate::Ge(c, v) => {
            matches!(stats(c), Some((_, max)) if max.sql_cmp(v) == Some(Ordering::Less))
        }
        Predicate::StartsWith(c, prefix) => match stats(c) {
            // All values < prefix or all values >= prefix-successor.
            Some((min, max)) => {
                let (Value::Str(lo), Value::Str(hi)) = (min, max) else {
                    return false;
                };
                hi.as_str() < prefix.as_str()
                    || !lo.starts_with(prefix.as_str()) && lo.as_str() > prefix.as_str()
            }
            None => false,
        },
        Predicate::And(a, b) => {
            group_provably_empty(schema, group, a) || group_provably_empty(schema, group, b)
        }
        Predicate::Or(a, b) => {
            group_provably_empty(schema, group, a) && group_provably_empty(schema, group, b)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::ColumnarWriter;
    use scoop_csv::schema::{DataType, Field};

    fn sample() -> Bytes {
        let schema = Schema::new(vec![
            Field::new("vid", DataType::Str),
            Field::new("date", DataType::Str),
            Field::new("index", DataType::Float),
        ]);
        let mut w = ColumnarWriter::with_row_group_rows(schema, 10);
        for i in 0..30 {
            w.write_row(&[
                Value::Str(format!("m{}", i % 4)),
                Value::Str(format!("2015-{:02}-01", i / 10 + 1)),
                Value::Float(i as f64),
            ]);
        }
        w.finish()
    }

    #[test]
    fn column_pruning_fetches_fewer_bytes() {
        let data = sample();
        let full = ColumnarReader::open_bytes(data.clone()).unwrap();
        let all = full.read_rows(None).unwrap();
        assert_eq!(all.len(), 30);
        let full_bytes = full.bytes_fetched();

        let pruned = ColumnarReader::open_bytes(data).unwrap();
        let only_vid = pruned.read_rows(Some(&["vid".to_string()])).unwrap();
        assert_eq!(only_vid.len(), 30);
        assert_eq!(only_vid[0].len(), 1);
        assert!(
            pruned.bytes_fetched() < full_bytes,
            "pruned {} vs full {full_bytes}",
            pruned.bytes_fetched()
        );
    }

    #[test]
    fn pruned_read_matches_full_read() {
        let data = sample();
        let r = ColumnarReader::open_bytes(data).unwrap();
        let full = r.read_rows(None).unwrap();
        let pruned = r
            .read_rows(Some(&["index".to_string(), "vid".to_string()]))
            .unwrap();
        for (f, p) in full.iter().zip(&pruned) {
            assert_eq!(p[0], f[2]);
            assert_eq!(p[1], f[0]);
        }
    }

    #[test]
    fn stats_skip_row_groups() {
        let data = sample();
        let r = ColumnarReader::open_bytes(data).unwrap();
        // date '2015-03-01' only in the last group of 10.
        let pred = Predicate::Eq("date".into(), Value::Str("2015-03-01".into()));
        let rows = r
            .read_rows_filtered(Some(&["date".to_string()]), Some(&pred))
            .unwrap();
        // Skipping is group-granular: the matching group has 10 rows.
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r[0] == Value::Str("2015-03-01".into())));

        // Numeric range that excludes everything.
        let pred = Predicate::Gt("index".into(), Value::Float(1e9));
        let rows = r.read_rows_filtered(None, Some(&pred)).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn prefix_skip() {
        let data = sample();
        let r = ColumnarReader::open_bytes(data).unwrap();
        let pred = Predicate::StartsWith("date".into(), "2019".into());
        assert!(r.read_rows_filtered(None, Some(&pred)).unwrap().is_empty());
        let pred = Predicate::StartsWith("date".into(), "2015-01".into());
        assert_eq!(r.read_rows_filtered(None, Some(&pred)).unwrap().len(), 10);
    }

    #[test]
    fn open_rejects_non_columnar() {
        assert!(ColumnarReader::open_bytes(Bytes::from_static(b"short")).is_err());
        assert!(
            ColumnarReader::open_bytes(Bytes::from(vec![0u8; 64])).is_err()
        );
    }

    #[test]
    fn unknown_column_errors() {
        let r = ColumnarReader::open_bytes(sample()).unwrap();
        assert!(r.read_rows(Some(&["ghost".to_string()])).is_err());
    }
}
