//! Columnar reader with column pruning and row-group skipping.
//!
//! The reader fetches through a range callback so the same code path serves
//! local buffers and ranged object-store GETs. It counts the bytes it
//! actually fetched — the quantity the Fig. 8 Scoop-vs-Parquet comparison
//! turns on (compressed, column-pruned transfer vs storlet-filtered CSV).

use crate::encode::{decode_column_batch, DecodedColumn};
use crate::format::{Footer, MAGIC};
use bytes::Bytes;
use scoop_common::{Result, ScoopError};
use scoop_csv::{Predicate, Schema, Value};
use std::cell::Cell;
use std::collections::HashMap;

/// Fetch `[start, end)` of the underlying object.
pub type FetchFn<'a> = Box<dyn Fn(u64, u64) -> Result<Bytes> + 'a>;

/// A columnar file reader.
pub struct ColumnarReader<'a> {
    fetch: FetchFn<'a>,
    footer: Footer,
    bytes_fetched: Cell<u64>,
}

impl<'a> ColumnarReader<'a> {
    /// Open via a range-fetch callback over an object of `total_len` bytes.
    pub fn open(total_len: u64, fetch: FetchFn<'a>) -> Result<ColumnarReader<'a>> {
        if total_len < 8 {
            return Err(ScoopError::Columnar("object too small".into()));
        }
        let tail = fetch(total_len - 8, total_len)?;
        let mut fetched = tail.len() as u64;
        if &tail[4..8] != MAGIC {
            return Err(ScoopError::Columnar("missing SCOL magic".into()));
        }
        let footer_len =
            u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]) as u64;
        if footer_len + 8 > total_len {
            return Err(ScoopError::Columnar("footer length exceeds object".into()));
        }
        let footer_bytes = fetch(total_len - 8 - footer_len, total_len - 8)?;
        fetched += footer_bytes.len() as u64;
        let footer = Footer::decode(&footer_bytes)?;
        Ok(ColumnarReader { fetch, footer, bytes_fetched: Cell::new(fetched) })
    }

    /// Open over an in-memory buffer.
    pub fn open_bytes(data: Bytes) -> Result<ColumnarReader<'static>> {
        let len = data.len() as u64;
        ColumnarReader::open(
            len,
            Box::new(move |s, e| {
                let s = (s.min(len)) as usize;
                let e = (e.min(len)) as usize;
                Ok(data.slice(s..e.max(s)))
            }),
        )
    }

    /// Parsed footer.
    pub fn footer(&self) -> &Footer {
        &self.footer
    }

    /// Logical schema.
    pub fn schema(&self) -> &Schema {
        &self.footer.schema
    }

    /// Total rows in the object.
    pub fn num_rows(&self) -> u64 {
        self.footer.num_rows()
    }

    /// Bytes fetched so far (footer + chunks).
    pub fn bytes_fetched(&self) -> u64 {
        self.bytes_fetched.get()
    }

    fn fetch_range(&self, start: u64, end: u64) -> Result<Bytes> {
        let data = (self.fetch)(start, end)?;
        self.bytes_fetched.set(self.bytes_fetched.get() + data.len() as u64);
        Ok(data)
    }

    /// Read full rows, pruning to `columns` when given (output column order
    /// follows the request). Returns rows in file order.
    pub fn read_rows(&self, columns: Option<&[String]>) -> Result<Vec<Vec<Value>>> {
        self.read_rows_filtered(columns, None)
    }

    /// Like [`ColumnarReader::read_rows`], additionally skipping row groups
    /// whose min/max statistics prove the predicate can never hold (the
    /// Parquet-style stats-pruning extension; selection *within* surviving
    /// groups still happens compute-side, as in the paper's comparison).
    pub fn read_rows_filtered(
        &self,
        columns: Option<&[String]>,
        predicate: Option<&Predicate>,
    ) -> Result<Vec<Vec<Value>>> {
        let schema = &self.footer.schema;
        let col_indices: Vec<usize> = match columns {
            None => (0..schema.len()).collect(),
            Some(cols) => cols
                .iter()
                .map(|c| schema.resolve(c))
                .collect::<Result<_>>()?,
        };
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for group in &self.footer.row_groups {
            if let Some(pred) = predicate {
                if group_provably_empty(schema, group, pred) {
                    continue;
                }
            }
            let cols = self.decode_group_columns(group, &col_indices)?;
            let n = group.rows as usize;
            // Per-column dense cursors: each cell materializes exactly once.
            let mut dense = vec![0usize; cols.len()];
            for r in 0..n {
                let mut row = Vec::with_capacity(cols.len());
                for (k, col) in cols.iter().enumerate() {
                    if col.is_valid(r) {
                        row.push(col.dense_value(dense[k]));
                        dense[k] += 1;
                    } else {
                        row.push(Value::Null);
                    }
                }
                rows.push(row);
            }
        }
        Ok(rows)
    }

    /// Like [`ColumnarReader::read_rows_filtered`], but additionally applies
    /// the predicate *row-wise inside* surviving groups, evaluated on the
    /// batch-decoded columns before any row is materialized. Equality against
    /// a string literal on a dictionary-encoded chunk compares dictionary
    /// codes — one integer compare per row, no string materialization — and a
    /// literal absent from the dictionary drops the whole group outright.
    pub fn read_rows_selected(
        &self,
        columns: Option<&[String]>,
        predicate: Option<&Predicate>,
    ) -> Result<Vec<Vec<Value>>> {
        let schema = &self.footer.schema;
        let col_indices: Vec<usize> = match columns {
            None => (0..schema.len()).collect(),
            Some(cols) => cols
                .iter()
                .map(|c| schema.resolve(c))
                .collect::<Result<_>>()?,
        };
        // Predicate columns may not be projected; decode the union.
        let mut needed = col_indices.clone();
        if let Some(pred) = predicate {
            for c in pred.columns() {
                needed.push(schema.resolve(&c)?);
            }
        }
        needed.sort_unstable();
        needed.dedup();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for group in &self.footer.row_groups {
            if let Some(pred) = predicate {
                if group_provably_empty(schema, group, pred) {
                    continue;
                }
            }
            let decoded = self.decode_group_columns(group, &needed)?;
            let by_index: HashMap<usize, &DecodedColumn> =
                needed.iter().copied().zip(decoded.iter()).collect();
            let n = group.rows as usize;
            let select = match predicate {
                None => vec![true; n],
                Some(pred) => selection(schema, &by_index, n, pred)?,
            };
            if !select.iter().any(|&b| b) {
                continue;
            }
            let proj: Vec<&DecodedColumn> = col_indices
                .iter()
                .map(|ci| {
                    by_index.get(ci).copied().ok_or_else(|| {
                        ScoopError::Columnar("projected chunk not decoded".into())
                    })
                })
                .collect::<Result<_>>()?;
            let mut dense = vec![0usize; proj.len()];
            for r in 0..n {
                if select.get(r).copied().unwrap_or(false) {
                    rows.push(
                        proj.iter()
                            .zip(&dense)
                            .map(|(col, &k)| {
                                if col.is_valid(r) {
                                    col.dense_value(k)
                                } else {
                                    Value::Null
                                }
                            })
                            .collect(),
                    );
                }
                for (k, col) in proj.iter().enumerate() {
                    if col.is_valid(r) {
                        dense[k] += 1;
                    }
                }
            }
        }
        Ok(rows)
    }

    /// Fetch and batch-decode the chunks of `indices` for one row group.
    fn decode_group_columns(
        &self,
        group: &crate::format::RowGroupMeta,
        indices: &[usize],
    ) -> Result<Vec<DecodedColumn>> {
        let mut cols = Vec::with_capacity(indices.len());
        for &ci in indices {
            let chunk = group.chunks.get(ci).ok_or_else(|| {
                ScoopError::Columnar("column index out of range".into())
            })?;
            let data = self.fetch_range(chunk.offset, chunk.offset + chunk.length)?;
            cols.push(decode_column_batch(&data)?);
        }
        Ok(cols)
    }
}

/// Row-selection bitmap for `pred` over one group's decoded columns. NULL
/// cells never satisfy a comparison (SQL three-valued logic collapsed to
/// false), matching the CSV-side filter semantics.
fn selection(
    schema: &Schema,
    cols: &HashMap<usize, &DecodedColumn>,
    n: usize,
    pred: &Predicate,
) -> Result<Vec<bool>> {
    use std::cmp::Ordering;
    let col = |name: &str| -> Result<&DecodedColumn> {
        let i = schema.resolve(name)?;
        cols.get(&i).copied().ok_or_else(|| {
            ScoopError::Columnar(format!("predicate column '{name}' not decoded"))
        })
    };
    Ok(match pred {
        Predicate::And(a, b) => {
            let (a, b) = (selection(schema, cols, n, a)?, selection(schema, cols, n, b)?);
            a.iter().zip(&b).map(|(&x, &y)| x && y).collect()
        }
        Predicate::Or(a, b) => {
            let (a, b) = (selection(schema, cols, n, a)?, selection(schema, cols, n, b)?);
            a.iter().zip(&b).map(|(&x, &y)| x || y).collect()
        }
        Predicate::Not(p) => selection(schema, cols, n, p)?
            .iter()
            .map(|&x| !x)
            .collect(),
        Predicate::IsNull(c) => {
            let col = col(c)?;
            (0..n).map(|r| !col.is_valid(r)).collect()
        }
        Predicate::IsNotNull(c) => {
            let col = col(c)?;
            (0..n).map(|r| col.is_valid(r)).collect()
        }
        Predicate::Eq(c, v) => {
            let column = col(c)?;
            // The dictionary fast path: resolve a string literal to a code
            // once, then compare codes — one integer compare per row. A
            // literal absent from the dictionary drops every row.
            if let Value::Str(s) = v {
                match column.dict_code(s) {
                    Some(Some(code)) => {
                        let codes = column.codes().unwrap_or(&[]);
                        return Ok(dense_map(column, n, |k| codes.get(k) == Some(&code)));
                    }
                    Some(None) => return Ok(vec![false; n]),
                    None => {}
                }
            }
            leaf(column, n, |x| x.sql_cmp(v) == Some(Ordering::Equal))
        }
        Predicate::Ne(c, v) => leaf(col(c)?, n, |x| {
            matches!(x.sql_cmp(v), Some(o) if o != Ordering::Equal)
        }),
        Predicate::Lt(c, v) => leaf(col(c)?, n, |x| x.sql_cmp(v) == Some(Ordering::Less)),
        Predicate::Le(c, v) => leaf(col(c)?, n, |x| {
            matches!(x.sql_cmp(v), Some(Ordering::Less | Ordering::Equal))
        }),
        Predicate::Gt(c, v) => {
            leaf(col(c)?, n, |x| x.sql_cmp(v) == Some(Ordering::Greater))
        }
        Predicate::Ge(c, v) => leaf(col(c)?, n, |x| {
            matches!(x.sql_cmp(v), Some(Ordering::Greater | Ordering::Equal))
        }),
        Predicate::Like(c, pat) => {
            leaf(col(c)?, n, |x| scoop_csv::pushdown::like_match(pat, &text_of(x)))
        }
        Predicate::StartsWith(c, p) => leaf(col(c)?, n, |x| text_of(x).starts_with(p.as_str())),
        Predicate::EndsWith(c, p) => leaf(col(c)?, n, |x| text_of(x).ends_with(p.as_str())),
        Predicate::Contains(c, p) => leaf(col(c)?, n, |x| text_of(x).contains(p.as_str())),
        Predicate::In(c, vals) => leaf(col(c)?, n, |x| {
            vals.iter().any(|v| x.sql_cmp(v) == Some(Ordering::Equal))
        }),
    })
}

/// Per-row evaluation over the dense entries; NULL rows are false.
fn dense_map(
    col: &DecodedColumn,
    n: usize,
    mut test: impl FnMut(usize) -> bool,
) -> Vec<bool> {
    let mut out = Vec::with_capacity(n);
    let mut k = 0usize;
    for r in 0..n {
        if col.is_valid(r) {
            out.push(test(k));
            k += 1;
        } else {
            out.push(false);
        }
    }
    out
}

/// Generic leaf: materialize each non-null cell and apply `test`.
fn leaf(col: &DecodedColumn, n: usize, mut test: impl FnMut(&Value) -> bool) -> Vec<bool> {
    dense_map(col, n, |k| test(&col.dense_value(k)))
}

/// The string a predicate's text operators see for a cell.
fn text_of(v: &Value) -> String {
    match v {
        Value::Str(s) => s.as_str().to_owned(),
        other => other.to_string(),
    }
}

/// True when the row group's stats prove no row can satisfy the predicate.
/// Conservative: unknown shapes return false (cannot skip).
fn group_provably_empty(
    schema: &Schema,
    group: &crate::format::RowGroupMeta,
    pred: &Predicate,
) -> bool {
    use std::cmp::Ordering;
    let stats = |col: &str| -> Option<(&Value, &Value)> {
        let i = schema.index_of(col)?;
        let c = &group.chunks[i];
        if c.min.is_null() || c.max.is_null() {
            return None;
        }
        Some((&c.min, &c.max))
    };
    match pred {
        Predicate::Eq(c, v) => match stats(c) {
            Some((min, max)) => {
                v.sql_cmp(min) == Some(Ordering::Less) || v.sql_cmp(max) == Some(Ordering::Greater)
            }
            None => false,
        },
        Predicate::Lt(c, v) => {
            matches!(stats(c), Some((min, _)) if min.sql_cmp(v) != Some(Ordering::Less))
        }
        Predicate::Le(c, v) => {
            matches!(stats(c), Some((min, _)) if min.sql_cmp(v) == Some(Ordering::Greater))
        }
        Predicate::Gt(c, v) => {
            matches!(stats(c), Some((_, max)) if max.sql_cmp(v) != Some(Ordering::Greater))
        }
        Predicate::Ge(c, v) => {
            matches!(stats(c), Some((_, max)) if max.sql_cmp(v) == Some(Ordering::Less))
        }
        Predicate::StartsWith(c, prefix) => match stats(c) {
            // All values < prefix or all values >= prefix-successor.
            Some((min, max)) => {
                let (Value::Str(lo), Value::Str(hi)) = (min, max) else {
                    return false;
                };
                hi.as_str() < prefix.as_str()
                    || !lo.starts_with(prefix.as_str()) && lo.as_str() > prefix.as_str()
            }
            None => false,
        },
        Predicate::And(a, b) => {
            group_provably_empty(schema, group, a) || group_provably_empty(schema, group, b)
        }
        Predicate::Or(a, b) => {
            group_provably_empty(schema, group, a) && group_provably_empty(schema, group, b)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::ColumnarWriter;
    use scoop_csv::schema::{DataType, Field};

    fn sample() -> Bytes {
        let schema = Schema::new(vec![
            Field::new("vid", DataType::Str),
            Field::new("date", DataType::Str),
            Field::new("index", DataType::Float),
        ]);
        let mut w = ColumnarWriter::with_row_group_rows(schema, 10);
        for i in 0..30 {
            w.write_row(&[
                Value::Str(format!("m{}", i % 4).into()),
                Value::Str(format!("2015-{:02}-01", i / 10 + 1).into()),
                Value::Float(i as f64),
            ]);
        }
        w.finish()
    }

    #[test]
    fn column_pruning_fetches_fewer_bytes() {
        let data = sample();
        let full = ColumnarReader::open_bytes(data.clone()).unwrap();
        let all = full.read_rows(None).unwrap();
        assert_eq!(all.len(), 30);
        let full_bytes = full.bytes_fetched();

        let pruned = ColumnarReader::open_bytes(data).unwrap();
        let only_vid = pruned.read_rows(Some(&["vid".to_string()])).unwrap();
        assert_eq!(only_vid.len(), 30);
        assert_eq!(only_vid[0].len(), 1);
        assert!(
            pruned.bytes_fetched() < full_bytes,
            "pruned {} vs full {full_bytes}",
            pruned.bytes_fetched()
        );
    }

    #[test]
    fn pruned_read_matches_full_read() {
        let data = sample();
        let r = ColumnarReader::open_bytes(data).unwrap();
        let full = r.read_rows(None).unwrap();
        let pruned = r
            .read_rows(Some(&["index".to_string(), "vid".to_string()]))
            .unwrap();
        for (f, p) in full.iter().zip(&pruned) {
            assert_eq!(p[0], f[2]);
            assert_eq!(p[1], f[0]);
        }
    }

    #[test]
    fn stats_skip_row_groups() {
        let data = sample();
        let r = ColumnarReader::open_bytes(data).unwrap();
        // date '2015-03-01' only in the last group of 10.
        let pred = Predicate::Eq("date".into(), Value::Str("2015-03-01".into()));
        let rows = r
            .read_rows_filtered(Some(&["date".to_string()]), Some(&pred))
            .unwrap();
        // Skipping is group-granular: the matching group has 10 rows.
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r[0] == Value::Str("2015-03-01".into())));

        // Numeric range that excludes everything.
        let pred = Predicate::Gt("index".into(), Value::Float(1e9));
        let rows = r.read_rows_filtered(None, Some(&pred)).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn prefix_skip() {
        let data = sample();
        let r = ColumnarReader::open_bytes(data).unwrap();
        let pred = Predicate::StartsWith("date".into(), "2019".into());
        assert!(r.read_rows_filtered(None, Some(&pred)).unwrap().is_empty());
        let pred = Predicate::StartsWith("date".into(), "2015-01".into());
        assert_eq!(r.read_rows_filtered(None, Some(&pred)).unwrap().len(), 10);
    }

    #[test]
    fn selected_read_filters_rows_within_groups() {
        let r = ColumnarReader::open_bytes(sample()).unwrap();
        // vid cycles m0..m3: "m2" is dictionary-encoded in every group.
        let pred = Predicate::Eq("vid".into(), Value::Str("m2".into()));
        let rows = r
            .read_rows_selected(
                Some(&["vid".to_string(), "index".to_string()]),
                Some(&pred),
            )
            .unwrap();
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().all(|row| row[0] == Value::Str("m2".into())));
        // A literal absent from every dictionary yields nothing.
        let pred = Predicate::Eq("vid".into(), Value::Str("ghost".into()));
        assert!(r.read_rows_selected(None, Some(&pred)).unwrap().is_empty());
        // Numeric comparison selects row-wise, not group-wise.
        let pred = Predicate::Gt("index".into(), Value::Float(24.5));
        let rows = r
            .read_rows_selected(Some(&["index".to_string()]), Some(&pred))
            .unwrap();
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn selected_matches_post_filtered_rows() {
        let r = ColumnarReader::open_bytes(sample()).unwrap();
        let pred = Predicate::Eq("date".into(), Value::Str("2015-02-01".into()));
        let coarse = r.read_rows_filtered(None, Some(&pred)).unwrap();
        let manual: Vec<Vec<Value>> = coarse
            .into_iter()
            .filter(|row| row[1] == Value::Str("2015-02-01".into()))
            .collect();
        let selected = r.read_rows_selected(None, Some(&pred)).unwrap();
        assert_eq!(selected, manual);
        assert_eq!(selected.len(), 10);
    }

    #[test]
    fn open_rejects_non_columnar() {
        assert!(ColumnarReader::open_bytes(Bytes::from_static(b"short")).is_err());
        assert!(
            ColumnarReader::open_bytes(Bytes::from(vec![0u8; 64])).is_err()
        );
    }

    #[test]
    fn unknown_column_errors() {
        let r = ColumnarReader::open_bytes(sample()).unwrap();
        assert!(r.read_rows(Some(&["ghost".to_string()])).is_err());
    }
}
