//! A Parquet-like columnar storage format, built from scratch.
//!
//! The paper's Section VI-C compares Scoop against Apache Parquet, whose two
//! relevant properties are: "Being columnar, it is possible to efficiently
//! perform column projection" and "Parquet stores highly optimized compressed
//! data, which reduces the volume of network transfers" — while selection
//! filtering still happens at the compute side ("Spark is in charge of
//! carrying out the tasks of (de)compressing data and discarding columns").
//! This crate reproduces exactly those properties:
//!
//! * [`mod@format`] — the on-disk layout: row groups of per-column chunks with a
//!   footer (schema, offsets, per-chunk min/max stats), Parquet-style.
//! * [`encode`] — column encodings: dictionary+RLE for strings, zigzag-varint
//!   delta for integers, raw little-endian for floats, validity bitmaps for
//!   NULLs.
//! * [`writer`] / [`reader`] — write typed rows, read back with **column
//!   pruning** (only selected chunks are fetched — the reader works over a
//!   range-fetch callback so it composes with ranged object-store GETs) and
//!   optional row-group skipping on min/max stats.

pub mod encode;
pub mod format;
pub mod reader;
pub mod writer;

pub use reader::ColumnarReader;
pub use writer::ColumnarWriter;
