//! Property tests: columnar encode∘decode = id; pruned reads match full reads.

use proptest::prelude::*;
use scoop_columnar::encode::{decode_column, encode_column};
use scoop_columnar::{ColumnarReader, ColumnarWriter};
use scoop_csv::schema::{DataType, Field, Schema};
use scoop_csv::Value;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1e6f64..1e6).prop_map(Value::Float),
        "[a-zA-Z0-9 ,%]{0,16}".prop_map(|s| Value::Str(s.into())),
    ]
}

/// Columns of a homogeneous kind (what the writer actually produces).
fn column_strategy() -> impl Strategy<Value = Vec<Value>> {
    prop_oneof![
        proptest::collection::vec(
            prop_oneof![Just(Value::Null), any::<i64>().prop_map(Value::Int)],
            0..200
        ),
        proptest::collection::vec(
            prop_oneof![
                Just(Value::Null),
                (-1e9f64..1e9).prop_map(Value::Float),
                Just(Value::Float(42.0)), // force repeats for RLE
            ],
            0..200
        ),
        proptest::collection::vec(
            prop_oneof![
                Just(Value::Null),
                Just(Value::Str("Rotterdam".into())),
                "[a-z]{0,10}".prop_map(|s| Value::Str(s.into())),
            ],
            0..200
        ),
        proptest::collection::vec(value_strategy(), 0..100),
    ]
}

proptest! {
    #[test]
    fn column_roundtrip(values in column_strategy()) {
        // Mixed numeric columns decode Int as Float; compare with coercion.
        let decoded = decode_column(&encode_column(&values)).unwrap();
        prop_assert_eq!(decoded.len(), values.len());
        for (d, v) in decoded.iter().zip(&values) {
            match (d, v) {
                (a, b) if a == b => {}
                (Value::Float(f), Value::Int(i)) => prop_assert_eq!(*f, *i as f64),
                // Mixed string columns store non-strings rendered.
                (Value::Str(s), b) => prop_assert_eq!(s.as_str(), b.to_string()),
                (a, b) => prop_assert!(false, "mismatch {:?} vs {:?}", a, b),
            }
        }
    }

    #[test]
    fn file_roundtrip_with_pruning(
        n_rows in 0usize..120,
        group_rows in 1usize..40,
        seed in any::<u64>(),
    ) {
        let schema = Schema::new(vec![
            Field::new("vid", DataType::Str),
            Field::new("index", DataType::Float),
            Field::new("n", DataType::Int),
        ]);
        let mut w = ColumnarWriter::with_row_group_rows(schema, group_rows);
        let mut rows = Vec::new();
        let mut rng = seed;
        for i in 0..n_rows {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let row = vec![
                Value::Str(format!("m{}", rng % 7).into()),
                if rng.is_multiple_of(5) { Value::Null } else { Value::Float((rng % 1000) as f64) },
                Value::Int(i as i64),
            ];
            w.write_row(&row);
            rows.push(row);
        }
        let data = w.finish();
        let r = ColumnarReader::open_bytes(data).unwrap();
        prop_assert_eq!(r.num_rows() as usize, n_rows);
        let full = r.read_rows(None).unwrap();
        prop_assert_eq!(&full, &rows);
        let pruned = r.read_rows(Some(&["n".to_string(), "vid".to_string()])).unwrap();
        for (p, orig) in pruned.iter().zip(&rows) {
            prop_assert_eq!(&p[0], &orig[2]);
            prop_assert_eq!(&p[1], &orig[0]);
        }
    }
}
