//! The columnar relation — the Parquet arm of the Fig. 8 comparison.
//!
//! Column pruning happens at read time (only projected chunks are fetched);
//! selection filtering stays compute-side exactly as the paper describes for
//! Parquet ("Spark is in charge of carrying out the tasks of (de)compressing
//! data and discarding columns"). Row-group stats skipping is available as an
//! opt-in extension and is never reported as fully-handled filtering.

use crate::connector::StorageConnector;
use crate::datasource::{PrunedFilteredScan, PrunedScan, RowStream, ScanOutput, ScanStats, TableScan};
use crate::partition::{discover_whole_objects, InputPartition};
use scoop_columnar::ColumnarReader;
use scoop_common::{Result, ScoopError};
use scoop_csv::{Predicate, Schema};
use std::sync::Arc;

/// A columnar table: one encoded object per partition.
pub struct ColumnarRelation {
    connector: Arc<dyn StorageConnector>,
    location: String,
    prefix: Option<String>,
    schema: Schema,
    /// Opt-in row-group skipping on chunk min/max stats.
    stats_pruning: bool,
}

impl ColumnarRelation {
    /// Open a relation; the schema comes from the first object's footer.
    pub fn open(
        connector: Arc<dyn StorageConnector>,
        location: &str,
        prefix: Option<&str>,
        stats_pruning: bool,
    ) -> Result<ColumnarRelation> {
        let mut objects = connector.list(location, prefix)?;
        objects.sort_by(|a, b| a.name.cmp(&b.name));
        let first = objects
            .first()
            .ok_or_else(|| ScoopError::NotFound(format!("no objects under {location}")))?;
        let schema = {
            let conn = connector.clone();
            let loc = location.to_string();
            let name = first.name.clone();
            let reader = ColumnarReader::open(
                first.size,
                Box::new(move |s, e| conn.fetch_range(&loc, &name, s, e)),
            )?;
            reader.schema().clone()
        };
        Ok(ColumnarRelation {
            connector,
            location: location.to_string(),
            prefix: prefix.map(str::to_string),
            schema,
            stats_pruning,
        })
    }

    fn read(
        &self,
        partition: &InputPartition,
        columns: Option<&[String]>,
        predicate: Option<&Predicate>,
    ) -> Result<ScanOutput> {
        let scan_schema = match columns {
            None => self.schema.clone(),
            Some(cols) => self.schema.project(cols)?,
        };
        let conn = self.connector.clone();
        let loc = self.location.clone();
        let name = partition.object.clone();
        let reader = ColumnarReader::open(
            partition.object_size,
            Box::new(move |s, e| conn.fetch_range(&loc, &name, s, e)),
        )?;
        let pred = if self.stats_pruning { predicate } else { None };
        let rows = reader.read_rows_filtered(columns, pred)?;
        let stream: RowStream = Box::new(rows.into_iter().map(Ok));
        Ok(ScanOutput {
            schema: scan_schema,
            rows: stream,
            // Stats skipping is row-group-granular; the executor must still
            // apply the full predicate.
            stats: ScanStats { filters_handled: false },
        })
    }
}

impl TableScan for ColumnarRelation {
    fn schema(&self) -> Result<Schema> {
        Ok(self.schema.clone())
    }

    fn partitions(&self, _chunk_size: u64) -> Result<Vec<InputPartition>> {
        discover_whole_objects(
            self.connector.as_ref(),
            &self.location,
            self.prefix.as_deref(),
        )
    }

    fn scan(&self, partition: &InputPartition) -> Result<ScanOutput> {
        self.read(partition, None, None)
    }
}

impl PrunedScan for ColumnarRelation {
    fn scan_pruned(&self, partition: &InputPartition, columns: &[String]) -> Result<ScanOutput> {
        self.read(partition, Some(columns), None)
    }
}

impl PrunedFilteredScan for ColumnarRelation {
    fn scan_pruned_filtered(
        &self,
        partition: &InputPartition,
        columns: Option<&[String]>,
        predicate: Option<&Predicate>,
    ) -> Result<ScanOutput> {
        self.read(partition, columns, predicate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::MemoryConnector;
    use scoop_columnar::ColumnarWriter;
    use scoop_csv::schema::{DataType, Field};
    use scoop_csv::Value;

    fn setup() -> (Arc<MemoryConnector>, ColumnarRelation) {
        let schema = Schema::new(vec![
            Field::new("vid", DataType::Str),
            Field::new("index", DataType::Float),
        ]);
        let conn = MemoryConnector::new();
        for obj in 0..2 {
            let mut w = ColumnarWriter::with_row_group_rows(schema.clone(), 5);
            for i in 0..12 {
                w.write_row(&[
                    Value::Str(format!("m{obj}-{i}").into()),
                    Value::Float((obj * 100 + i) as f64),
                ]);
            }
            conn.put("cols", &format!("part-{obj}.scol"), w.finish());
        }
        let rel = ColumnarRelation::open(conn.clone(), "cols", None, true).unwrap();
        (conn, rel)
    }

    #[test]
    fn schema_from_footer_and_partitions() {
        let (_, rel) = setup();
        assert_eq!(rel.schema().unwrap().names(), vec!["vid", "index"]);
        let parts = rel.partitions(123).unwrap();
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn full_and_pruned_reads() {
        let (_, rel) = setup();
        let parts = rel.partitions(0).unwrap();
        let all: Vec<Vec<Value>> = rel.scan(&parts[0]).unwrap().rows.collect::<Result<_>>().unwrap();
        assert_eq!(all.len(), 12);
        let pruned = rel
            .scan_pruned(&parts[1], &["index".to_string()])
            .unwrap();
        assert_eq!(pruned.schema.names(), vec!["index"]);
        let rows: Vec<Vec<Value>> = pruned.rows.collect::<Result<_>>().unwrap();
        assert_eq!(rows[0], vec![Value::Float(100.0)]);
    }

    #[test]
    fn pruning_reduces_transfer() {
        let (conn, rel) = setup();
        let parts = rel.partitions(0).unwrap();
        conn.reset_transfer_counter();
        let _: Vec<_> = rel.scan(&parts[0]).unwrap().rows.collect();
        let full = conn.bytes_transferred();
        conn.reset_transfer_counter();
        let _: Vec<_> = rel
            .scan_pruned(&parts[0], &["index".to_string()])
            .unwrap()
            .rows
            .collect();
        assert!(conn.bytes_transferred() < full);
    }

    #[test]
    fn stats_pruning_filters_are_not_reported_handled() {
        let (_, rel) = setup();
        let parts = rel.partitions(0).unwrap();
        let pred = Predicate::Gt("index".into(), Value::Float(1e9));
        let out = rel
            .scan_pruned_filtered(&parts[0], None, Some(&pred))
            .unwrap();
        assert!(!out.stats.filters_handled);
        let rows: Vec<Vec<Value>> = out.rows.collect::<Result<_>>().unwrap();
        assert!(rows.is_empty());
    }
}
