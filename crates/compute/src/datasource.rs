//! The Data Sources API.
//!
//! "The Data Sources API has several flavors. The simplest flavor is called
//! Scan ... A more complex flavor is the PrunedScan API which takes a
//! selection filter as a parameter ... Further, the PrunedFilteredScan API
//! flavor takes both a projection and selection filters" — Section V. The
//! trait hierarchy below mirrors those flavors; `Session` always drives the
//! richest one a relation implements.

use crate::partition::InputPartition;
use scoop_common::Result;
use scoop_csv::{Predicate, Schema, Value};

/// A stream of typed rows produced by one partition scan.
pub type RowStream = Box<dyn Iterator<Item = Result<Vec<Value>>> + Send>;

/// Per-scan accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Whether the pushed filters were fully applied by the source (when
    /// true, the executor must not re-apply them).
    pub filters_handled: bool,
}

/// The output of scanning one partition.
pub struct ScanOutput {
    /// Schema of the produced rows.
    pub schema: Schema,
    /// The rows.
    pub rows: RowStream,
    /// Accounting.
    pub stats: ScanStats,
}

/// Simplest flavor: full scan of a partition, all columns, all rows.
pub trait TableScan: Send + Sync {
    /// The relation's full schema.
    fn schema(&self) -> Result<Schema>;

    /// Discover the relation's partitions.
    fn partitions(&self, chunk_size: u64) -> Result<Vec<InputPartition>>;

    /// Scan everything in one partition.
    fn scan(&self, partition: &InputPartition) -> Result<ScanOutput>;
}

/// Adds column pruning.
pub trait PrunedScan: TableScan {
    /// Scan only the named columns (output order follows the request).
    fn scan_pruned(&self, partition: &InputPartition, columns: &[String]) -> Result<ScanOutput>;
}

/// Adds selection pushdown — the flavor the paper's extended Spark-CSV
/// implements ("we augmented the Spark CSV library with the
/// PrunedFilteredScan Data Source API").
pub trait PrunedFilteredScan: PrunedScan {
    /// Scan with projection and selection. `columns == None` keeps all
    /// columns. The implementation reports via [`ScanStats::filters_handled`]
    /// whether the predicate was fully applied.
    fn scan_pruned_filtered(
        &self,
        partition: &InputPartition,
        columns: Option<&[String]>,
        predicate: Option<&Predicate>,
    ) -> Result<ScanOutput>;
}
