//! A Spark-like compute framework for Scoop's analytics side.
//!
//! Reproduces the pieces of the Spark stack the paper's flow (Fig. 4) walks
//! through:
//!
//! * [`connector`] — the Hadoop-FS-shaped storage abstraction the framework
//!   reads through, with an in-memory implementation for tests (the real
//!   Stocator-like connector over the object store lives in
//!   `scoop-connector`).
//! * [`partition`] — partition discovery: objects divided by the configured
//!   chunk size, each split becoming one task.
//! * [`datasource`] — the Data Sources API flavors: `TableScan`,
//!   `PrunedScan`, `PrunedFilteredScan`; plus the CSV relation
//!   ([`csv_relation`]) that, like the paper's extended Spark-CSV, "pushes
//!   down both SQL projection and selection" through the connector, and the
//!   columnar relation ([`columnar_relation`]) used by the Parquet
//!   comparison.
//! * [`scheduler`] — the driver + worker pool executing one task per
//!   partition in parallel.
//! * [`session`] — the user-facing session: register a table, run SQL, get a
//!   result plus job metrics (bytes ingested, task times), with pushdown
//!   toggleable per session exactly like the with/without-Scoop experiment
//!   arms.

pub mod columnar_relation;
pub mod connector;
pub mod csv_relation;
pub mod datasource;
pub mod partition;
pub mod scheduler;
pub mod session;
pub mod storlet_rdd;

pub use connector::{MemoryConnector, ObjectInfo, StorageConnector};
pub use datasource::{ScanOutput, ScanStats};
pub use partition::InputPartition;
pub use session::{ExecutionMode, JobMetrics, QueryOutcome, Session, TableFormat};
pub use storlet_rdd::{StorletDataset, StorletPartitioning};
