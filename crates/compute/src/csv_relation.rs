//! The CSV relation — the paper's extended Spark-CSV.
//!
//! Implements all three Data Sources flavors. With pushdown enabled and a
//! capable connector, `scan_pruned_filtered` delegates projection+selection
//! to the store (the Scoop path); otherwise the partition's raw byte range is
//! ingested, record-aligned client-side, parsed, and pruned in the compute
//! tier (the vanilla ingest-then-compute path). Both paths produce rows under
//! the same projected schema so the executor upstream is oblivious.

use crate::connector::StorageConnector;
use crate::datasource::{PrunedFilteredScan, PrunedScan, RowStream, ScanOutput, ScanStats, TableScan};
use crate::partition::{discover, InputPartition};
use scoop_common::{Result, ScoopError};
use scoop_csv::split::RangedRecordStream;
use scoop_csv::{CsvReader, Predicate, PushdownSpec, Schema};
use std::sync::Arc;

/// A CSV table stored as one or more objects under a location.
pub struct CsvRelation {
    connector: Arc<dyn StorageConnector>,
    location: String,
    prefix: Option<String>,
    has_header: bool,
    schema: Schema,
    /// Column names in file order (the storlet's `schema` parameter).
    file_columns: Vec<String>,
    /// Session-level toggle: true = Scoop pushdown, false = vanilla.
    pushdown_enabled: bool,
}

impl CsvRelation {
    /// Open a relation, inferring the schema from the first object when not
    /// provided.
    pub fn open(
        connector: Arc<dyn StorageConnector>,
        location: &str,
        prefix: Option<&str>,
        has_header: bool,
        schema: Option<Schema>,
        pushdown_enabled: bool,
    ) -> Result<CsvRelation> {
        let schema = match schema {
            Some(s) => s,
            None => {
                let mut objects = connector.list(location, prefix)?;
                objects.sort_by(|a, b| a.name.cmp(&b.name));
                let first = objects.first().ok_or_else(|| {
                    ScoopError::NotFound(format!("no objects under {location}"))
                })?;
                let head_len = first.size.min(256 * 1024);
                let head = connector.fetch_range(location, &first.name, 0, head_len)?;
                scoop_csv::reader::infer_schema(&head, 100)?
            }
        };
        let file_columns: Vec<String> =
            schema.names().iter().map(|s| s.to_string()).collect();
        Ok(CsvRelation {
            connector,
            location: location.to_string(),
            prefix: prefix.map(str::to_string),
            has_header,
            schema,
            file_columns,
            pushdown_enabled,
        })
    }

    /// The relation's location (diagnostics).
    pub fn location(&self) -> &str {
        &self.location
    }

    fn projected_schema(&self, columns: Option<&[String]>) -> Result<Schema> {
        match columns {
            None => Ok(self.schema.clone()),
            Some(cols) => self.schema.project(cols),
        }
    }

    /// The vanilla path: full-range ingest, client-side alignment + pruning.
    fn scan_vanilla(
        &self,
        partition: &InputPartition,
        columns: Option<&[String]>,
    ) -> Result<ScanOutput> {
        let scan_schema = self.projected_schema(columns)?;
        let stream =
            self.connector
                .read_from(&self.location, &partition.object, partition.start)?;
        let records = RangedRecordStream::new(stream, partition.start, Some(partition.end));
        let full_schema = self.schema.clone();
        let indices: Option<Vec<usize>> = match columns {
            None => None,
            Some(cols) => Some(
                cols.iter()
                    .map(|c| full_schema.resolve(c))
                    .collect::<Result<_>>()?,
            ),
        };
        let mut skip_header = self.has_header && partition.start == 0;
        // Parse no further than the last field anything references: the full
        // schema width without projection, the highest projected index with.
        let parse_bound = match &indices {
            None => full_schema.len(),
            Some(idx) => idx.iter().max().map_or(0, |&i| i + 1),
        };
        let mut fields = scoop_csv::view::FieldBuf::default();
        let rows: RowStream = Box::new(records.filter_map(move |record| {
            let record = match record {
                Ok(r) => r,
                Err(e) => return Some(Err(e)),
            };
            if skip_header {
                skip_header = false;
                return None;
            }
            let view = fields.parse_bounded(&record, parse_bound);
            Some(Ok(match &indices {
                None => full_schema.parse_view(&view),
                Some(idx) => idx
                    .iter()
                    .map(|&i| match view.text(i) {
                        Some(raw) => {
                            scoop_csv::Value::parse_typed(&raw, full_schema.fields[i].dtype)
                        }
                        None => scoop_csv::Value::Null,
                    })
                    .collect(),
            }))
        }));
        Ok(ScanOutput {
            schema: scan_schema,
            rows,
            stats: ScanStats { filters_handled: false },
        })
    }

    /// The Scoop path: the store filters; we parse the projected records.
    fn scan_pushdown(
        &self,
        partition: &InputPartition,
        columns: Option<&[String]>,
        predicate: Option<&Predicate>,
    ) -> Result<ScanOutput> {
        let scan_schema = self.projected_schema(columns)?;
        let spec = PushdownSpec {
            columns: columns.map(|c| c.to_vec()),
            predicate: predicate.cloned(),
            has_header: self.has_header,
        };
        let stream = self.connector.read_pushdown(
            &self.location,
            &partition.object,
            partition.start,
            Some(partition.end),
            &spec,
            &self.file_columns,
        )?;
        // Pushdown responses carry pure data records (header consumed at the
        // store).
        let rows: RowStream = Box::new(CsvReader::new(stream, scan_schema.clone(), false));
        Ok(ScanOutput {
            schema: scan_schema,
            rows,
            stats: ScanStats { filters_handled: true },
        })
    }
}

impl TableScan for CsvRelation {
    fn schema(&self) -> Result<Schema> {
        Ok(self.schema.clone())
    }

    fn partitions(&self, chunk_size: u64) -> Result<Vec<InputPartition>> {
        discover(
            self.connector.as_ref(),
            &self.location,
            self.prefix.as_deref(),
            chunk_size,
        )
    }

    fn scan(&self, partition: &InputPartition) -> Result<ScanOutput> {
        self.scan_vanilla(partition, None)
    }
}

impl PrunedScan for CsvRelation {
    fn scan_pruned(&self, partition: &InputPartition, columns: &[String]) -> Result<ScanOutput> {
        self.scan_vanilla(partition, Some(columns))
    }
}

impl PrunedFilteredScan for CsvRelation {
    fn scan_pruned_filtered(
        &self,
        partition: &InputPartition,
        columns: Option<&[String]>,
        predicate: Option<&Predicate>,
    ) -> Result<ScanOutput> {
        if self.pushdown_enabled && self.connector.supports_pushdown() {
            self.scan_pushdown(partition, columns, predicate)
        } else {
            self.scan_vanilla(partition, columns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::MemoryConnector;
    use bytes::Bytes;
    use scoop_csv::Value;

    const DATA: &[u8] = b"vid,index,city\n\
        m1,10.5,Rotterdam\n\
        m2,20.0,Paris\n\
        m3,7.5,Rotterdam\n";

    fn relation(pushdown: bool) -> (Arc<MemoryConnector>, CsvRelation) {
        let c = MemoryConnector::with_pushdown();
        c.put("meters", "jan.csv", Bytes::from_static(DATA));
        let rel =
            CsvRelation::open(c.clone(), "meters", None, true, None, pushdown).unwrap();
        (c, rel)
    }

    fn collect(out: ScanOutput) -> Vec<Vec<Value>> {
        out.rows.collect::<Result<_>>().unwrap()
    }

    #[test]
    fn schema_inference() {
        let (_, rel) = relation(false);
        let s = rel.schema().unwrap();
        assert_eq!(s.names(), vec!["vid", "index", "city"]);
        assert_eq!(s.fields[1].dtype, scoop_csv::DataType::Float);
    }

    #[test]
    fn vanilla_scan_reads_everything() {
        let (_, rel) = relation(false);
        let parts = rel.partitions(1 << 20).unwrap();
        assert_eq!(parts.len(), 1);
        let out = rel.scan(&parts[0]).unwrap();
        assert!(!out.stats.filters_handled);
        let rows = collect(out);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], Value::Str("m1".into()));
    }

    #[test]
    fn pruned_scan_projects() {
        let (_, rel) = relation(false);
        let parts = rel.partitions(1 << 20).unwrap();
        let out = rel
            .scan_pruned(&parts[0], &["city".to_string(), "vid".to_string()])
            .unwrap();
        assert_eq!(out.schema.names(), vec!["city", "vid"]);
        let rows = collect(out);
        assert_eq!(rows[1], vec![Value::Str("Paris".into()), Value::Str("m2".into())]);
    }

    #[test]
    fn pushdown_and_vanilla_agree() {
        let pred = Predicate::Eq("city".into(), Value::Str("Rotterdam".into()));
        let cols = vec!["vid".to_string(), "index".to_string()];
        let (_, vanilla_rel) = relation(false);
        let (_, pushdown_rel) = relation(true);
        for chunk in [8u64, 16, 30, 1000] {
            let vp = vanilla_rel.partitions(chunk).unwrap();
            let pp = pushdown_rel.partitions(chunk).unwrap();
            assert_eq!(vp.len(), pp.len());
            let mut vanilla_rows = Vec::new();
            let mut pushdown_rows = Vec::new();
            for (v, p) in vp.iter().zip(&pp) {
                let out = vanilla_rel
                    .scan_pruned_filtered(v, Some(&cols), Some(&pred))
                    .unwrap();
                assert!(!out.stats.filters_handled);
                // Vanilla did not filter: emulate the executor's re-filter.
                for row in collect(out) {
                    if row[0] != Value::Str("m2".into()) {
                        vanilla_rows.push(row);
                    }
                }
                let out = pushdown_rel
                    .scan_pruned_filtered(p, Some(&cols), Some(&pred))
                    .unwrap();
                assert!(out.stats.filters_handled);
                pushdown_rows.extend(collect(out));
            }
            assert_eq!(vanilla_rows, pushdown_rows, "chunk={chunk}");
            assert_eq!(pushdown_rows.len(), 2);
        }
    }

    #[test]
    fn pushdown_transfers_fewer_bytes() {
        let pred = Predicate::Eq("city".into(), Value::Str("Rotterdam".into()));
        let cols = vec!["vid".to_string()];
        let (conn, rel) = relation(true);
        let parts = rel.partitions(1 << 20).unwrap();
        conn.reset_transfer_counter();
        let out = rel
            .scan_pruned_filtered(&parts[0], Some(&cols), Some(&pred))
            .unwrap();
        let rows = collect(out);
        assert_eq!(rows.len(), 2);
        assert!(conn.bytes_transferred() < DATA.len() as u64 / 3);
    }

    #[test]
    fn missing_location_errors() {
        let c = MemoryConnector::new();
        assert!(CsvRelation::open(c, "ghost", None, true, None, false).is_err());
    }
}
