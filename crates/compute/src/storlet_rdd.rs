//! The Storlet-aware dataset — the paper's *Spark-Storlets* RDD (Section
//! VII, "Beyond Spark-SQL pushdown").
//!
//! "We already extended the Spark RDD to allow the developer to write Spark
//! jobs that explicitly invoke computations at the object store via simple
//! primitives. Thus, our new RDD: i) provides programmatic means to
//! explicitly execute Storlets in OpenStack Swift from the code of a Spark
//! task; ii) holds the Storlet invocations output as its distributed
//! dataset; and iii) embeds the knowledge of partitioning the input dataset
//! to parallel tasks. ... With \[13\], the whole Hadoop layer can be
//! bypassed."
//!
//! [`StorletDataset`] is exactly that: it pairs a storlet pipeline with a
//! container, partitions the objects itself (per object, or per record-
//! aligned byte range — "in object stores it seems more adequate to
//! partition according to ... the compute parallelism available"), runs one
//! storlet invocation per partition on the worker pool, and holds the
//! outputs as its distributed dataset.

use crate::connector::StorageConnector;
use crate::partition::{discover, discover_whole_objects, InputPartition};
use crate::scheduler::{collect_ok, run_tasks};
use bytes::Bytes;
use scoop_common::{stream, Result};
use scoop_csv::{CsvReader, Schema, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// How the input dataset maps to parallel storlet invocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorletPartitioning {
    /// One invocation per object (natural for whole-object computations
    /// like aggregation or metadata extraction).
    PerObject,
    /// One invocation per record-aligned byte range of the given size
    /// (natural for streaming filters over large objects).
    PerRange {
        /// Logical split size in bytes.
        chunk_size: u64,
    },
}

/// A distributed dataset whose elements are storlet invocation outputs.
pub struct StorletDataset {
    connector: Arc<dyn StorageConnector>,
    location: String,
    prefix: Option<String>,
    storlets: String,
    params: HashMap<String, String>,
    partitioning: StorletPartitioning,
    workers: usize,
}

impl StorletDataset {
    /// Pair a storlet pipeline with the objects under a location.
    pub fn new(
        connector: Arc<dyn StorageConnector>,
        location: &str,
        storlets: &str,
        params: HashMap<String, String>,
    ) -> StorletDataset {
        StorletDataset {
            connector,
            location: location.to_string(),
            prefix: None,
            storlets: storlets.to_string(),
            params,
            partitioning: StorletPartitioning::PerObject,
            workers: 4,
        }
    }

    /// Restrict to objects with a name prefix.
    pub fn with_prefix(mut self, prefix: &str) -> Self {
        self.prefix = Some(prefix.to_string());
        self
    }

    /// Choose the partitioning strategy.
    pub fn with_partitioning(mut self, partitioning: StorletPartitioning) -> Self {
        self.partitioning = partitioning;
        self
    }

    /// Worker-pool size for the invocation stage.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The partitions this dataset will invoke over.
    pub fn partitions(&self) -> Result<Vec<InputPartition>> {
        match self.partitioning {
            StorletPartitioning::PerObject => discover_whole_objects(
                self.connector.as_ref(),
                &self.location,
                self.prefix.as_deref(),
            ),
            StorletPartitioning::PerRange { chunk_size } => discover(
                self.connector.as_ref(),
                &self.location,
                self.prefix.as_deref(),
                chunk_size,
            ),
        }
    }

    /// Run every invocation and collect each partition's raw output bytes,
    /// in partition order.
    pub fn collect_bytes(&self) -> Result<Vec<Bytes>> {
        let partitions = self.partitions()?;
        let results = run_tasks(self.workers, partitions.len(), |i| {
            let part = &partitions[i];
            let range = match self.partitioning {
                StorletPartitioning::PerObject => None,
                StorletPartitioning::PerRange { .. } => Some((part.start, part.end)),
            };
            let out = self.connector.invoke_storlet(
                &self.location,
                &part.object,
                &self.storlets,
                &self.params,
                range,
            )?;
            stream::collect(out)
        });
        let (outputs, _) = collect_ok(results)?;
        Ok(outputs)
    }

    /// Collect and parse the outputs as (headerless) CSV rows under `schema`
    /// — the "Storlet-aware RDD" pairing of a filter with its output shape.
    pub fn collect_rows(&self, schema: &Schema) -> Result<Vec<Vec<Value>>> {
        let mut rows = Vec::new();
        for out in self.collect_bytes()? {
            let reader = CsvReader::new(stream::once(out), schema.clone(), false);
            for row in reader {
                rows.push(row?);
            }
        }
        Ok(rows)
    }

    /// Map each partition's output through `f` on the worker pool (the
    /// general "write Spark jobs that explicitly invoke computations at the
    /// object store" primitive).
    pub fn map_partitions<T, F>(&self, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize, Bytes) -> Result<T> + Sync,
    {
        let partitions = self.partitions()?;
        let results = run_tasks(self.workers, partitions.len(), |i| {
            let part = &partitions[i];
            let range = match self.partitioning {
                StorletPartitioning::PerObject => None,
                StorletPartitioning::PerRange { .. } => Some((part.start, part.end)),
            };
            let out = self.connector.invoke_storlet(
                &self.location,
                &part.object,
                &self.storlets,
                &self.params,
                range,
            )?;
            f(i, stream::collect(out)?)
        });
        let (outputs, _) = collect_ok(results)?;
        Ok(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::MemoryConnector;

    #[test]
    fn memory_connector_reports_unsupported() {
        let conn = MemoryConnector::new();
        conn.put("loc", "a", Bytes::from_static(b"x\n"));
        let ds = StorletDataset::new(conn, "loc", "linegrep", HashMap::new());
        assert_eq!(ds.partitions().unwrap().len(), 1);
        let err = ds.collect_bytes().unwrap_err();
        assert_eq!(err.kind(), "unsupported");
    }

    #[test]
    fn builders_compose() {
        let conn = MemoryConnector::new();
        conn.put("loc", "2015/a", Bytes::from(vec![b'x'; 100]));
        conn.put("loc", "2016/b", Bytes::from(vec![b'y'; 100]));
        let ds = StorletDataset::new(conn, "loc", "aggregate", HashMap::new())
            .with_prefix("2015/")
            .with_partitioning(StorletPartitioning::PerRange { chunk_size: 40 })
            .with_workers(2);
        let parts = ds.partitions().unwrap();
        assert_eq!(parts.len(), 3); // 100 bytes / 40 → 3 ranges, one object
        assert!(parts.iter().all(|p| p.object == "2015/a"));
    }
}
