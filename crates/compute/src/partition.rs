//! Partition discovery.
//!
//! "Following the Hadoop RDD creation, a process called partition discovery
//! takes place ... the underlying storage driver checks the total size of the
//! data specified by the user and divides the total size by the HDFS chunk
//! size" — and the paper notes this constant "is not adapted to object
//! stores" (Section VII), which the ablation bench explores by sweeping it.

use crate::connector::StorageConnector;
use scoop_common::Result;
use scoop_csv::split::plan_splits;

/// Default chunk size: 128 MB, the classic HDFS block size.
pub const DEFAULT_CHUNK_SIZE: u64 = 128 * 1024 * 1024;

/// One task's input: a logical byte range of one object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputPartition {
    /// Task index within the job.
    pub index: usize,
    /// Object name within the table location.
    pub object: String,
    /// Object size in bytes.
    pub object_size: u64,
    /// Logical split start (inclusive).
    pub start: u64,
    /// Logical split end (exclusive).
    pub end: u64,
}

impl InputPartition {
    /// A partition covering a whole object.
    pub fn whole(index: usize, object: String, size: u64) -> Self {
        InputPartition { index, object, object_size: size, start: 0, end: size }
    }

    /// Split length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the split is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Discover partitions for all objects under a location: each object is
/// divided into `chunk_size` splits.
pub fn discover(
    connector: &dyn StorageConnector,
    location: &str,
    prefix: Option<&str>,
    chunk_size: u64,
) -> Result<Vec<InputPartition>> {
    let mut parts = Vec::new();
    let mut objects = connector.list(location, prefix)?;
    objects.sort_by(|a, b| a.name.cmp(&b.name));
    for obj in objects {
        for (s, e) in plan_splits(obj.size, chunk_size) {
            parts.push(InputPartition {
                index: parts.len(),
                object: obj.name.clone(),
                object_size: obj.size,
                start: s,
                end: e,
            });
        }
    }
    Ok(parts)
}

/// Discover one partition per object (columnar tables parallelize by object).
pub fn discover_whole_objects(
    connector: &dyn StorageConnector,
    location: &str,
    prefix: Option<&str>,
) -> Result<Vec<InputPartition>> {
    let mut objects = connector.list(location, prefix)?;
    objects.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(objects
        .into_iter()
        .enumerate()
        .map(|(i, o)| InputPartition::whole(i, o.name, o.size))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::MemoryConnector;
    use bytes::Bytes;

    #[test]
    fn discovery_splits_every_object() {
        let c = MemoryConnector::new();
        c.put("loc", "a", Bytes::from(vec![0u8; 250]));
        c.put("loc", "b", Bytes::from(vec![0u8; 100]));
        c.put("loc", "empty", Bytes::new());
        let parts = discover(c.as_ref(), "loc", None, 100).unwrap();
        // a → 3 splits, b → 1, empty → 0.
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].object, "a");
        assert_eq!((parts[2].start, parts[2].end), (200, 250));
        assert_eq!(parts[3].object, "b");
        // Indexes are dense and ordered.
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(p.index, i);
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn whole_object_discovery() {
        let c = MemoryConnector::new();
        c.put("loc", "x", Bytes::from(vec![0u8; 10]));
        c.put("loc", "y", Bytes::from(vec![0u8; 20]));
        let parts = discover_whole_objects(c.as_ref(), "loc", None).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), 10);
        assert_eq!(parts[1].len(), 20);
    }

    #[test]
    fn prefix_filters() {
        let c = MemoryConnector::new();
        c.put("loc", "2015/01.csv", Bytes::from(vec![0u8; 10]));
        c.put("loc", "2016/01.csv", Bytes::from(vec![0u8; 10]));
        let parts = discover(c.as_ref(), "loc", Some("2015/"), 100).unwrap();
        assert_eq!(parts.len(), 1);
    }
}
