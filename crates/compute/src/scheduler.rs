//! The driver's task scheduler: a fixed worker pool executing one task per
//! partition, with per-task timing — the in-process equivalent of Spark's
//! stage execution over its standalone cluster.

use scoop_common::{Deadline, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Outcome of one task.
pub struct TaskResult<T> {
    /// Partition / task index.
    pub index: usize,
    /// The task's produced value or error.
    pub result: Result<T>,
    /// Wall time the task took (summed across attempts).
    pub duration: Duration,
    /// Executions of the task, including the successful (or final) one.
    pub attempts: u32,
}

/// Run `n_tasks` tasks over `workers` threads. `task_fn` is invoked with the
/// task index; tasks are claimed dynamically (work stealing by counter), like
/// Spark assigning tasks to free executor slots. Results arrive indexed.
/// Each task runs at most once; see [`run_tasks_with_retry`] for the
/// fault-tolerant variant.
pub fn run_tasks<T, F>(workers: usize, n_tasks: usize, task_fn: F) -> Vec<TaskResult<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    run_tasks_with_retry(workers, n_tasks, 1, task_fn)
}

/// Like [`run_tasks`], but a task whose failure is retryable
/// ([`scoop_common::ScoopError::is_retryable`]) is re-executed on the same
/// worker up to `max_failures` total attempts — Spark's
/// `spark.task.maxFailures` model, where a lost stream or a flaky storage
/// node costs one task re-run, not the whole job. Panics count as retryable
/// compute failures. Non-retryable errors fail the task immediately.
pub fn run_tasks_with_retry<T, F>(
    workers: usize,
    n_tasks: usize,
    max_failures: u32,
    task_fn: F,
) -> Vec<TaskResult<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    run_tasks_with_deadline(workers, n_tasks, max_failures, Deadline::none(), task_fn)
}

/// Like [`run_tasks_with_retry`], but bounded by a query [`Deadline`]:
/// a task is not *started* (or re-attempted) once the deadline has passed —
/// it fails with the deadline error (first attempt) or its own last error
/// (exhausted retries), so a query stops burning workers the moment its
/// budget is gone.
pub fn run_tasks_with_deadline<T, F>(
    workers: usize,
    n_tasks: usize,
    max_failures: u32,
    deadline: Deadline,
    task_fn: F,
) -> Vec<TaskResult<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let workers = workers.max(1);
    let max_failures = max_failures.max(1);
    let next = AtomicUsize::new(0);
    let results: parking_lot::Mutex<Vec<TaskResult<T>>> =
        parking_lot::Mutex::new(Vec::with_capacity(n_tasks));
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n_tasks.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                let started = Instant::now();
                let mut attempts = 0u32;
                let result = loop {
                    if attempts == 0 {
                        // Budget already gone before the first attempt:
                        // fail fast without invoking the task at all.
                        if let Err(e) = deadline.check(&format!("task {i}")) {
                            break Err(e);
                        }
                    }
                    attempts += 1;
                    // A panicking task must fail its own task, not the job:
                    // the executor survives, like a Spark task failure.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        task_fn(i)
                    }))
                    .unwrap_or_else(|payload| {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "task panicked".to_string());
                        Err(scoop_common::ScoopError::Compute(format!(
                            "task {i} panicked: {msg}"
                        )))
                    });
                    match result {
                        // An expired deadline stops re-attempts; the task's
                        // own (real) error surfaces, not a synthetic one.
                        Err(e)
                            if e.is_retryable()
                                && attempts < max_failures
                                && !deadline.expired() =>
                        {
                            continue
                        }
                        other => break other,
                    }
                };
                results.lock().push(TaskResult {
                    index: i,
                    result,
                    duration: started.elapsed(),
                    attempts,
                });
            });
        }
    });
    let mut out = results.into_inner();
    out.sort_by_key(|r| r.index);
    out
}

/// Total task re-executions across a stage (0 when every task succeeded
/// first try).
pub fn total_retries<T>(results: &[TaskResult<T>]) -> u64 {
    results
        .iter()
        .map(|r| u64::from(r.attempts.saturating_sub(1)))
        .sum()
}

/// Collapse task results, propagating the first error.
pub fn collect_ok<T>(results: Vec<TaskResult<T>>) -> Result<(Vec<T>, Vec<Duration>)> {
    let mut values = Vec::with_capacity(results.len());
    let mut durations = Vec::with_capacity(results.len());
    for r in results {
        durations.push(r.duration);
        values.push(r.result?);
    }
    Ok((values, durations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_common::ScoopError;

    #[test]
    fn runs_all_tasks_in_index_order() {
        let results = run_tasks(4, 100, |i| Ok(i * 2));
        assert_eq!(results.len(), 100);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(*r.result.as_ref().unwrap(), i * 2);
        }
    }

    #[test]
    fn parallelism_actually_engages() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let threads: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        run_tasks(4, 64, |_| {
            threads.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(Duration::from_micros(200));
            Ok(())
        });
        assert!(threads.lock().unwrap().len() > 1);
    }

    #[test]
    fn zero_tasks_and_zero_workers() {
        let results = run_tasks::<(), _>(0, 0, |_| Ok(()));
        assert!(results.is_empty());
        let results = run_tasks(0, 3, Ok);
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn retry_reruns_retryable_failures_up_to_max() {
        use std::sync::atomic::AtomicU32;
        // Task 2 fails transiently twice, then succeeds; task 4 always fails.
        let flaky = AtomicU32::new(0);
        let results = run_tasks_with_retry(2, 6, 4, |i| match i {
            2 => {
                if flaky.fetch_add(1, Ordering::Relaxed) < 2 {
                    Err(ScoopError::Io(std::io::Error::other("transient")))
                } else {
                    Ok(i)
                }
            }
            4 => Err(ScoopError::Io(std::io::Error::other("hard down"))),
            _ => Ok(i),
        });
        assert_eq!(*results[2].result.as_ref().unwrap(), 2);
        assert_eq!(results[2].attempts, 3);
        assert!(results[4].result.is_err());
        assert_eq!(results[4].attempts, 4);
        assert_eq!(results[0].attempts, 1);
        assert_eq!(total_retries(&results), 2 + 3);
    }

    #[test]
    fn retry_does_not_rerun_non_retryable_failures() {
        let results = run_tasks_with_retry(1, 1, 5, |_| {
            Err::<(), _>(ScoopError::NotFound("gone".into()))
        });
        assert_eq!(results[0].attempts, 1);
        assert!(results[0].result.is_err());
    }

    #[test]
    fn expired_deadline_fails_tasks_without_running_them() {
        use std::sync::atomic::AtomicU32;
        let calls = AtomicU32::new(0);
        let expired = Deadline::at(Instant::now() - Duration::from_millis(1));
        let results = run_tasks_with_deadline(2, 4, 5, expired, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(i)
        });
        assert_eq!(calls.load(Ordering::Relaxed), 0, "tasks must not start");
        for r in &results {
            assert_eq!(r.result.as_ref().unwrap_err().kind(), "deadline");
            assert_eq!(r.attempts, 0);
        }
    }

    #[test]
    fn deadline_expiry_mid_run_stops_retries_with_the_real_error() {
        // Generous-enough budget to start, but each attempt exhausts it:
        // the retry loop must stop early and surface the task's own error.
        let deadline = Deadline::within(Duration::from_millis(5));
        let results = run_tasks_with_deadline(1, 1, 100, deadline, |_| {
            std::thread::sleep(Duration::from_millis(10));
            Err::<(), _>(ScoopError::Io(std::io::Error::other("flaky node")))
        });
        let r = &results[0];
        assert_eq!(r.result.as_ref().unwrap_err().kind(), "io");
        assert!(r.attempts < 100, "retries must stop once the budget is gone");
    }

    #[test]
    fn collect_ok_propagates_errors() {
        let results = run_tasks(2, 5, |i| {
            if i == 3 {
                Err(ScoopError::Compute("task 3 exploded".into()))
            } else {
                Ok(i)
            }
        });
        assert!(collect_ok(results).is_err());
        let results = run_tasks(2, 5, Ok);
        let (vals, durs) = collect_ok(results).unwrap();
        assert_eq!(vals, vec![0, 1, 2, 3, 4]);
        assert_eq!(durs.len(), 5);
    }
}

#[cfg(test)]
mod panic_tests {
    use super::*;

    #[test]
    fn panicking_task_becomes_an_error_not_a_crash() {
        let results = run_tasks(3, 8, |i| {
            if i == 5 {
                panic!("boom in task {i}");
            }
            Ok(i)
        });
        assert_eq!(results.len(), 8);
        let err = results[5].result.as_ref().unwrap_err();
        assert_eq!(err.kind(), "compute");
        assert!(err.to_string().contains("boom in task 5"));
        // Other tasks completed normally.
        assert_eq!(*results[0].result.as_ref().unwrap(), 0);
        assert_eq!(*results[7].result.as_ref().unwrap(), 7);
    }
}
