//! The storage abstraction the compute framework reads through.
//!
//! In the paper this seam is Hadoop's filesystem API with the Stocator driver
//! underneath; here it is a small trait with the exact operations the data
//! sources need: listing, (ranged) reads, pushdown reads, and point range
//! fetches for the columnar footer/chunks. `scoop-connector` implements it
//! over the Swift-like object store; [`MemoryConnector`] backs unit tests.

use bytes::Bytes;
use parking_lot::RwLock;
use scoop_common::{stream, ByteStream, Result, ScoopError};
use scoop_csv::PushdownSpec;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One object in a listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectInfo {
    /// Object name within the location.
    pub name: String,
    /// Payload size in bytes.
    pub size: u64,
}

/// Storage operations required by the data sources.
///
/// A *location* is a container-like namespace string; objects live under it.
pub trait StorageConnector: Send + Sync {
    /// List objects under a location (optionally by prefix).
    fn list(&self, location: &str, prefix: Option<&str>) -> Result<Vec<ObjectInfo>>;

    /// Open a plain read of `[start, EOF)` of an object. The stream is lazy:
    /// consumers that stop early must not pay for the tail.
    fn read_from(&self, location: &str, object: &str, start: u64) -> Result<ByteStream>;

    /// Open a pushdown read: the store applies `spec` to the (record-aligned)
    /// logical range `[start, end_exclusive)` and streams filtered records.
    /// `file_schema` is the object's column list in file order.
    fn read_pushdown(
        &self,
        location: &str,
        object: &str,
        start: u64,
        end_exclusive: Option<u64>,
        spec: &PushdownSpec,
        file_schema: &[String],
    ) -> Result<ByteStream>;

    /// Fetch an exact byte range `[start, end)` (columnar footer/chunks).
    fn fetch_range(&self, location: &str, object: &str, start: u64, end: u64) -> Result<Bytes>;

    /// Invoke an arbitrary storlet pipeline on an object request and stream
    /// its output — the general task-offloading primitive of the paper's
    /// Section VII ("any computation which can be carried out in parallel
    /// and independently over disjoint parts of the input dataset could be
    /// pushed down by Scoop in form of a filter"). Stores without an active
    /// layer return [`ScoopError::Unsupported`].
    fn invoke_storlet(
        &self,
        _location: &str,
        _object: &str,
        _storlets: &str,
        _params: &std::collections::HashMap<String, String>,
        _range: Option<(u64, u64)>,
    ) -> Result<ByteStream> {
        Err(ScoopError::Unsupported(
            "this connector has no active-storage layer".into(),
        ))
    }

    /// Propagate a query time budget to the storage layer: requests the
    /// connector issues afterwards carry this deadline end-to-end (client
    /// dispatch, proxy routing, object servers). [`scoop_common::Deadline::none`]
    /// clears it. Connectors without deadline support may ignore it.
    fn set_deadline(&self, _deadline: scoop_common::Deadline) {}

    /// Propagate a query trace ID to the storage layer: requests the
    /// connector issues afterwards carry it as the `x-scoop-trace` header so
    /// every hop records a span against the same trace (see
    /// [`scoop_common::telemetry`]). `None` clears it. Connectors without
    /// tracing support may ignore it.
    fn set_trace(&self, _trace: Option<String>) {}

    /// Whether [`StorageConnector::read_pushdown`] executes at the store
    /// (true for Scoop) or must be emulated compute-side (false).
    fn supports_pushdown(&self) -> bool;

    /// Bytes transferred to the compute side so far (wire accounting).
    fn bytes_transferred(&self) -> u64;

    /// Reset the transfer counter (between experiment runs).
    fn reset_transfer_counter(&self);
}

/// Wrap a stream so consumed bytes are added to a shared counter — only
/// consumed chunks cross the "wire".
pub fn count_consumed(inner: ByteStream, counter: Arc<AtomicU64>) -> ByteStream {
    Box::new(inner.inspect(move |item| {
        if let Ok(c) = item {
            counter.fetch_add(c.len() as u64, Ordering::Relaxed);
        }
    }))
}

/// In-memory connector for tests and local experiments. Pushdown reads are
/// applied locally before the transfer counter, emulating a store-side
/// filter when constructed [`MemoryConnector::with_pushdown`].
#[derive(Default)]
pub struct MemoryConnector {
    objects: RwLock<BTreeMap<(String, String), Bytes>>,
    transferred: Arc<AtomicU64>,
    pushdown: bool,
}

impl MemoryConnector {
    /// Empty store without pushdown support.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Empty store that emulates store-side pushdown.
    pub fn with_pushdown() -> Arc<Self> {
        Arc::new(MemoryConnector { pushdown: true, ..Default::default() })
    }

    /// Insert an object.
    pub fn put(&self, location: &str, object: &str, data: Bytes) {
        self.objects
            .write()
            .insert((location.to_string(), object.to_string()), data);
    }

    fn get(&self, location: &str, object: &str) -> Result<Bytes> {
        self.objects
            .read()
            .get(&(location.to_string(), object.to_string()))
            .cloned()
            .ok_or_else(|| ScoopError::NotFound(format!("object {location}/{object}")))
    }
}

impl StorageConnector for MemoryConnector {
    fn list(&self, location: &str, prefix: Option<&str>) -> Result<Vec<ObjectInfo>> {
        Ok(self
            .objects
            .read()
            .iter()
            .filter(|((loc, name), _)| {
                loc == location && prefix.is_none_or(|p| name.starts_with(p))
            })
            .map(|((_, name), data)| ObjectInfo { name: name.clone(), size: data.len() as u64 })
            .collect())
    }

    fn read_from(&self, location: &str, object: &str, start: u64) -> Result<ByteStream> {
        let data = self.get(location, object)?;
        let start = (start.min(data.len() as u64)) as usize;
        let body = data.slice(start..);
        Ok(count_consumed(
            stream::chunked(body, stream::DEFAULT_CHUNK),
            self.transferred.clone(),
        ))
    }

    fn read_pushdown(
        &self,
        location: &str,
        object: &str,
        start: u64,
        end_exclusive: Option<u64>,
        spec: &PushdownSpec,
        file_schema: &[String],
    ) -> Result<ByteStream> {
        // Emulate the store-side filter: run the compiled spec over the
        // record-aligned range; only filtered bytes cross the wire.
        let data = self.get(location, object)?;
        let end = end_exclusive.unwrap_or(data.len() as u64);
        let slice = scoop_csv::split::aligned_slice(&data, start, end);
        let spec_for_range =
            PushdownSpec { has_header: spec.has_header && start == 0, ..spec.clone() };
        let (filtered, _) = scoop_csv::filter::filter_buffer(
            &spec_for_range,
            file_schema,
            slice,
            true,
        )?;
        Ok(count_consumed(
            stream::chunked(Bytes::from(filtered), stream::DEFAULT_CHUNK),
            self.transferred.clone(),
        ))
    }

    fn fetch_range(&self, location: &str, object: &str, start: u64, end: u64) -> Result<Bytes> {
        let data = self.get(location, object)?;
        let s = (start.min(data.len() as u64)) as usize;
        let e = (end.min(data.len() as u64)) as usize;
        let out = data.slice(s..e.max(s));
        self.transferred.fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    fn supports_pushdown(&self) -> bool {
        self.pushdown
    }

    fn bytes_transferred(&self) -> u64 {
        self.transferred.load(Ordering::Relaxed)
    }

    fn reset_transfer_counter(&self) {
        self.transferred.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_csv::{Predicate, Value};

    const DATA: &[u8] = b"vid,city\nm1,Rotterdam\nm2,Paris\nm3,Rotterdam\n";

    fn conn() -> Arc<MemoryConnector> {
        let c = MemoryConnector::with_pushdown();
        c.put("meters", "a.csv", Bytes::from_static(DATA));
        c.put("meters", "b.csv", Bytes::from_static(b"x\n"));
        c.put("other", "c.csv", Bytes::from_static(b"y\n"));
        c
    }

    #[test]
    fn list_scopes_by_location_and_prefix() {
        let c = conn();
        assert_eq!(c.list("meters", None).unwrap().len(), 2);
        assert_eq!(c.list("meters", Some("a")).unwrap().len(), 1);
        assert_eq!(c.list("nope", None).unwrap().len(), 0);
    }

    #[test]
    fn read_counts_only_consumed_bytes() {
        let c = conn();
        let mut s = c.read_from("meters", "a.csv", 0).unwrap();
        let _ = s.next();
        drop(s);
        assert_eq!(c.bytes_transferred(), DATA.len() as u64);
        c.reset_transfer_counter();
        assert_eq!(c.bytes_transferred(), 0);
        assert!(c.read_from("meters", "ghost.csv", 0).is_err());
    }

    #[test]
    fn pushdown_counts_filtered_bytes() {
        let c = conn();
        let spec = PushdownSpec {
            columns: Some(vec!["vid".into()]),
            predicate: Some(Predicate::Eq(
                "city".into(),
                Value::Str("Rotterdam".into()),
            )),
            has_header: true,
        };
        let schema = vec!["vid".to_string(), "city".to_string()];
        let s = c
            .read_pushdown("meters", "a.csv", 0, None, &spec, &schema)
            .unwrap();
        let out = scoop_common::stream::collect(s).unwrap();
        assert_eq!(out, "m1\nm3\n");
        assert_eq!(c.bytes_transferred(), 6);
    }

    #[test]
    fn fetch_range_clamps() {
        let c = conn();
        assert_eq!(c.fetch_range("meters", "a.csv", 0, 3).unwrap(), "vid");
        assert_eq!(
            c.fetch_range("meters", "a.csv", 1000, 2000).unwrap().len(),
            0
        );
    }
}
