//! The user-facing session: register tables, run SQL, get results + metrics.
//!
//! This is the "Spark client" of Fig. 4: it parses the query, lets Catalyst
//! extract the pushdown, discovers partitions, fans tasks out to the worker
//! pool (each task scanning one partition through the Data Sources API and
//! folding rows into a partial aggregate), then merges and finalizes on the
//! driver. The `pushdown` toggle is the with/without-Scoop experiment switch.

use crate::columnar_relation::ColumnarRelation;
use crate::csv_relation::CsvRelation;
use crate::datasource::PrunedFilteredScan;
use crate::partition::DEFAULT_CHUNK_SIZE;
use crate::scheduler::{collect_ok, run_tasks_with_deadline, total_retries};
use parking_lot::RwLock;
use scoop_common::{Deadline, Result, ScoopError};
use scoop_csv::{Schema, Value};
use scoop_sql::catalyst::plan_query;
use scoop_sql::exec::{execute_with_where, Aggregator, PartialAgg};
use scoop_sql::{parse, ResultSet};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use crate::connector::StorageConnector;

/// Default total attempts per task (Spark ships `spark.task.maxFailures = 4`).
pub const DEFAULT_MAX_TASK_FAILURES: u32 = 4;

/// How a registered table is stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableFormat {
    /// CSV objects (optionally with a header row).
    Csv {
        /// Whether objects start with a header record.
        has_header: bool,
    },
    /// Columnar objects (the Parquet-like format).
    Columnar,
}

/// Which execution arm a query ran under (reported in metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Ingest-then-compute: full objects transferred, filtered at compute.
    Vanilla,
    /// Scoop: projections/selections executed at the object store.
    Pushdown,
    /// Columnar with column pruning, compute-side selection.
    Columnar,
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionMode::Vanilla => write!(f, "vanilla"),
            ExecutionMode::Pushdown => write!(f, "pushdown"),
            ExecutionMode::Columnar => write!(f, "columnar"),
        }
    }
}

#[derive(Debug, Clone)]
struct TableDef {
    location: String,
    prefix: Option<String>,
    format: TableFormat,
    schema: Option<Schema>,
}

/// Per-query accounting.
#[derive(Debug, Clone)]
pub struct JobMetrics {
    /// Execution arm.
    pub mode: ExecutionMode,
    /// Tasks executed (== partitions).
    pub tasks: usize,
    /// Bytes that crossed the storage→compute boundary.
    pub bytes_transferred: u64,
    /// Rows materialized at the compute side (post-store-filtering).
    pub rows_to_compute: u64,
    /// Rows surviving compute-side filtering (input to agg/projection).
    pub rows_after_filter: u64,
    /// WHERE conjuncts pushed to the store.
    pub pushed_conjuncts: usize,
    /// WHERE conjuncts evaluated at the compute side.
    pub residual_conjuncts: usize,
    /// End-to-end wall time of the query.
    pub wall: Duration,
    /// Per-task wall times.
    pub task_durations: Vec<Duration>,
    /// Task re-executions after retryable failures (0 on a healthy run).
    pub task_retries: u64,
    /// Trace ID minted for this query; every storage hop records its span
    /// under it (query with [`scoop_common::telemetry::trace_spans`]).
    pub trace: String,
}

/// A finished query: result + metrics.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Rows and columns.
    pub result: ResultSet,
    /// Accounting.
    pub metrics: JobMetrics,
}

/// The Spark-like session.
pub struct Session {
    connector: Arc<dyn StorageConnector>,
    workers: usize,
    chunk_size: u64,
    pushdown: bool,
    stats_pruning: bool,
    max_task_failures: u32,
    time_budget: Option<Duration>,
    tables: RwLock<HashMap<String, TableDef>>,
}

impl Session {
    /// Create a session over a connector with the given worker-pool size.
    pub fn new(connector: Arc<dyn StorageConnector>, workers: usize) -> Session {
        Session {
            connector,
            workers: workers.max(1),
            chunk_size: DEFAULT_CHUNK_SIZE,
            pushdown: true,
            stats_pruning: false,
            max_task_failures: DEFAULT_MAX_TASK_FAILURES,
            time_budget: None,
            tables: RwLock::new(HashMap::new()),
        }
    }

    /// Give every query a wall-clock budget: a [`Deadline`] is created at
    /// submission, propagated through the connector to every storage hop,
    /// and enforced by the scheduler — tasks stop being (re)started once the
    /// budget is gone and the query fails fast instead of hanging.
    pub fn with_time_budget(mut self, budget: Duration) -> Session {
        self.time_budget = Some(budget);
        self
    }

    /// Set the partition-discovery chunk size (builder style).
    pub fn with_chunk_size(mut self, chunk_size: u64) -> Session {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Enable/disable pushdown (the with/without-Scoop switch).
    pub fn with_pushdown(mut self, enabled: bool) -> Session {
        self.pushdown = enabled;
        self
    }

    /// Enable columnar row-group stats skipping (extension).
    pub fn with_stats_pruning(mut self, enabled: bool) -> Session {
        self.stats_pruning = enabled;
        self
    }

    /// Spark's `spark.task.maxFailures`: total attempts a task gets before
    /// its retryable failure fails the job. `1` disables task retry.
    pub fn with_max_task_failures(mut self, max_failures: u32) -> Session {
        self.max_task_failures = max_failures.max(1);
        self
    }

    /// Whether pushdown is enabled.
    pub fn pushdown_enabled(&self) -> bool {
        self.pushdown
    }

    /// The session's connector.
    pub fn connector(&self) -> &Arc<dyn StorageConnector> {
        &self.connector
    }

    /// Register a table at a location. `schema == None` infers on first use.
    pub fn register_table(
        &self,
        name: &str,
        location: &str,
        prefix: Option<&str>,
        format: TableFormat,
        schema: Option<Schema>,
    ) {
        self.tables.write().insert(
            name.to_ascii_lowercase(),
            TableDef {
                location: location.to_string(),
                prefix: prefix.map(str::to_string),
                format,
                schema,
            },
        );
    }

    fn table(&self, name: &str) -> Result<TableDef> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| ScoopError::Sql(format!("unknown table '{name}'")))
    }

    /// Explain how a query would execute, without running it: the extracted
    /// pushdown, the residual predicate, the scan schema and the partition
    /// plan — the reproduction's equivalent of `EXPLAIN` over a Spark plan.
    pub fn explain(&self, text: &str) -> Result<String> {
        let query = parse(text)?;
        let def = self.table(&query.table)?;
        let (schema, partitions, format_name) = match &def.format {
            TableFormat::Csv { has_header } => {
                let rel = CsvRelation::open(
                    self.connector.clone(),
                    &def.location,
                    def.prefix.as_deref(),
                    *has_header,
                    def.schema.clone(),
                    self.pushdown,
                )?;
                {
                    use crate::datasource::TableScan;
                    (rel.schema()?, rel.partitions(self.chunk_size)?, "csv")
                }
            }
            TableFormat::Columnar => {
                let rel = ColumnarRelation::open(
                    self.connector.clone(),
                    &def.location,
                    def.prefix.as_deref(),
                    self.stats_pruning,
                )?;
                {
                    use crate::datasource::TableScan;
                    (rel.schema()?, rel.partitions(self.chunk_size)?, "columnar")
                }
            }
        };
        let has_header = matches!(def.format, TableFormat::Csv { has_header: true });
        let plan = plan_query(&query, &schema, has_header)?;
        let pushdown_active = self.pushdown
            && self.connector.supports_pushdown()
            && format_name == "csv";
        let mut out = String::new();
        out.push_str(&format!(
            "== plan for table '{}' ({format_name}, {} partitions) ==\n",
            query.table,
            partitions.len()
        ));
        out.push_str(&format!(
            "scan     : columns {}\n",
            match &plan.pushdown.columns {
                None => "* (no pruning)".to_string(),
                Some(c) => c.join(", "),
            }
        ));
        out.push_str(&format!(
            "pushdown : {} ({} conjunct(s) pushed{})\n",
            if pushdown_active { "at object store" } else { "disabled — compute-side" },
            plan.pushed_conjuncts,
            match &plan.pushdown.predicate {
                Some(p) => format!(": {p}"),
                None => String::new(),
            }
        ));
        out.push_str(&format!(
            "residual : {}\n",
            match &plan.residual_where {
                Some(e) => e.to_string(),
                None => "none".to_string(),
            }
        ));
        out.push_str(&format!(
            "execute  : {}{}{}{}\n",
            if query.is_aggregate() {
                "partial aggregation on workers → merge on driver"
            } else {
                "collect on workers → project/sort on driver"
            },
            if query.distinct { " → DISTINCT" } else { "" },
            if query.having.is_some() { " → HAVING" } else { "" },
            match query.limit {
                Some(n) => format!(" → LIMIT {n}"),
                None => String::new(),
            }
        ));
        Ok(out)
    }

    /// Parse and execute a SQL query.
    pub fn sql(&self, text: &str) -> Result<QueryOutcome> {
        let started = std::time::Instant::now();
        // The query's time budget starts at submission and travels two ways:
        // down the storage path via the connector (stamped on every request)
        // and into the scheduler (gating task starts and retries).
        let deadline = match self.time_budget {
            Some(budget) => Deadline::within(budget),
            None => Deadline::none(),
        };
        self.connector.set_deadline(deadline);
        // Mint the query's trace ID. It travels the same road as the
        // deadline — stamped on every storage request as `x-scoop-trace` —
        // so one pushdown query yields one trace whose spans cover session,
        // scheduler, connector, client, proxy, object server and storlet.
        let trace = scoop_common::telemetry::new_trace_id();
        self.connector.set_trace(Some(trace.clone()));
        // Baselines for the query's wide event: global counters are sampled
        // before and after the run so the event carries *this* query's
        // hedges/retries/degradations (single-process delta attribution).
        use scoop_common::telemetry::{counter, names};
        let hedges_before = counter(names::PROXY_HEDGED_GETS).get();
        let retries_before = counter(names::CLIENT_RETRIES).get();
        let fallbacks_before = counter(names::CONNECTOR_PUSHDOWN_FALLBACKS).get();
        let query = parse(text)?;
        let def = self.table(&query.table)?;
        let _query_span = scoop_common::telemetry::span(
            Some(&trace),
            scoop_common::telemetry::layers::SESSION,
            format!("sql {}", query.table),
        );

        // Build the relation (and cache the inferred schema).
        let (relation, mode): (Arc<dyn PrunedFilteredScan>, ExecutionMode) = match &def.format {
            TableFormat::Csv { has_header } => {
                let rel = CsvRelation::open(
                    self.connector.clone(),
                    &def.location,
                    def.prefix.as_deref(),
                    *has_header,
                    def.schema.clone(),
                    self.pushdown,
                )?;
                let mode = if self.pushdown && self.connector.supports_pushdown() {
                    ExecutionMode::Pushdown
                } else {
                    ExecutionMode::Vanilla
                };
                (Arc::new(rel), mode)
            }
            TableFormat::Columnar => {
                let rel = ColumnarRelation::open(
                    self.connector.clone(),
                    &def.location,
                    def.prefix.as_deref(),
                    self.stats_pruning,
                )?;
                (Arc::new(rel), ExecutionMode::Columnar)
            }
        };
        let schema = relation.schema()?;
        if def.schema.is_none() {
            // The table was present when `def` was resolved; if it was
            // dropped concurrently, skipping the schema cache write is
            // harmless — the query proceeds on the resolved definition.
            if let Some(t) = self.tables.write().get_mut(&query.table) {
                t.schema = Some(schema.clone());
            }
        }

        // Catalyst: extract pushdown + residual.
        let has_header = matches!(def.format, TableFormat::Csv { has_header: true });
        let plan = plan_query(&query, &schema, has_header)?;
        let partitions = relation.partitions(self.chunk_size)?;

        let transferred_before = self.connector.bytes_transferred();

        // Per-task work.
        enum TaskOut {
            Partial(Box<PartialAgg>, u64, u64),
            Rows(Vec<Vec<Value>>, u64),
        }
        let aggregator = if query.is_aggregate() {
            Some(Aggregator::new(&query, &plan.scan_schema)?)
        } else {
            None
        };
        let columns = plan.pushdown.columns.clone();
        let predicate = plan.pushdown.predicate.clone();
        // CollectLimit: an unsorted, non-distinct LIMIT needs only the first
        // `n` passing rows; tasks stop scanning (and hence stop pulling
        // bytes off the lazy streams) once the job-wide quota is met.
        let early_limit = if !query.is_aggregate()
            && query.order_by.is_empty()
            && !query.distinct
        {
            query.limit
        } else {
            None
        };
        let collected = std::sync::atomic::AtomicUsize::new(0);
        let _sched_span = scoop_common::telemetry::span(
            Some(&trace),
            scoop_common::telemetry::layers::SCHEDULER,
            format!("{} tasks over {} workers", partitions.len(), self.workers),
        );
        let results = run_tasks_with_deadline(self.workers, partitions.len(), self.max_task_failures, deadline, |i| {
            let part = &partitions[i];
            let out = relation.scan_pruned_filtered(
                part,
                columns.as_deref(),
                predicate.as_ref(),
            )?;
            // Effective compute-side predicate: residual when the source
            // handled the pushed filters, the full WHERE otherwise.
            let effective = if out.stats.filters_handled {
                plan.residual_where.clone()
            } else {
                query.where_clause.clone()
            };
            let mut rows_in = 0u64;
            let mut rows_kept = 0u64;
            match &aggregator {
                Some(agg) => {
                    let mut partial = agg.make_partial();
                    for row in out.rows {
                        let row = row?;
                        rows_in += 1;
                        if passes(&effective, &row, &plan.scan_schema)? {
                            rows_kept += 1;
                            agg.update(&mut partial, &row)?;
                        }
                    }
                    Ok(TaskOut::Partial(Box::new(partial), rows_in, rows_kept))
                }
                None => {
                    let mut kept = Vec::new();
                    let mut claimed = 0usize;
                    let scan = (|| -> Result<()> {
                        for row in out.rows {
                            if let Some(lim) = early_limit {
                                if collected.load(std::sync::atomic::Ordering::Relaxed) >= lim {
                                    break;
                                }
                            }
                            let row = row?;
                            rows_in += 1;
                            if passes(&effective, &row, &plan.scan_schema)? {
                                if early_limit.is_some() {
                                    collected
                                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    claimed += 1;
                                }
                                kept.push(row);
                            }
                        }
                        Ok(())
                    })();
                    if let Err(e) = scan {
                        // A failed attempt's rows are discarded, so release
                        // its claim on the LIMIT quota — otherwise a task
                        // retry would under-collect.
                        if claimed > 0 {
                            collected.fetch_sub(claimed, std::sync::atomic::Ordering::Relaxed);
                        }
                        return Err(e);
                    }
                    Ok(TaskOut::Rows(kept, rows_in))
                }
            }
        });
        drop(_sched_span);
        let task_retries = total_retries(&results);
        let (outputs, task_durations) = collect_ok(results)?;

        // Driver-side merge/finalize.
        let mut rows_to_compute = 0u64;
        let mut rows_after_filter = 0u64;
        let result = match aggregator {
            Some(agg) => {
                let mut merged = agg.make_partial();
                for out in outputs {
                    let TaskOut::Partial(partial, rows_in, kept) = out else {
                        return Err(ScoopError::Internal("mixed task outputs".into()));
                    };
                    rows_to_compute += rows_in;
                    rows_after_filter += kept;
                    agg.merge(&mut merged, *partial);
                }
                agg.finalize(merged)?
            }
            None => {
                let mut all_rows = Vec::new();
                for out in outputs {
                    let TaskOut::Rows(rows, rows_in) = out else {
                        return Err(ScoopError::Internal("mixed task outputs".into()));
                    };
                    rows_to_compute += rows_in;
                    rows_after_filter += rows.len() as u64;
                    all_rows.extend(rows);
                }
                // WHERE already applied per-task; run projection/sort/limit.
                execute_with_where(
                    &query,
                    &plan.scan_schema,
                    None,
                    all_rows.into_iter().map(Ok),
                )?
            }
        };

        let bytes_transferred = self
            .connector
            .bytes_transferred()
            .saturating_sub(transferred_before);
        let wall = started.elapsed();

        // Close the session span *now* so the wide event's per-layer
        // durations include it (spans record on drop).
        drop(_query_span);
        let degradations =
            counter(names::CONNECTOR_PUSHDOWN_FALLBACKS).get().saturating_sub(fallbacks_before);
        let spans = scoop_common::telemetry::trace_spans(&trace);
        let mut layer_us: Vec<(&'static str, u64)> = Vec::new();
        for layer in scoop_common::telemetry::layers::ALL {
            let sum: u64 = spans
                .iter()
                .filter(|s| s.layer == *layer)
                .map(|s| s.duration_us)
                .sum();
            if sum > 0 {
                layer_us.push((layer, sum));
            }
        }
        scoop_common::telemetry::record_query_event(scoop_common::telemetry::QueryEvent {
            trace: trace.clone(),
            path: if degradations > 0 && mode == ExecutionMode::Pushdown {
                "pushdown-fallback".to_string()
            } else {
                mode.to_string()
            },
            total_us: wall.as_micros() as u64,
            bytes: bytes_transferred,
            rows: rows_to_compute,
            retries: task_retries.saturating_add(
                counter(names::CLIENT_RETRIES).get().saturating_sub(retries_before),
            ),
            hedges: counter(names::PROXY_HEDGED_GETS).get().saturating_sub(hedges_before),
            degradations,
            layer_us,
            slow: false, // settled by record_query_event from the threshold
        });

        Ok(QueryOutcome {
            result,
            metrics: JobMetrics {
                mode,
                tasks: partitions.len(),
                bytes_transferred,
                rows_to_compute,
                rows_after_filter,
                pushed_conjuncts: plan.pushed_conjuncts,
                residual_conjuncts: plan.residual_conjuncts,
                wall,
                task_durations,
                task_retries,
                trace,
            },
        })
    }
}

fn passes(
    where_clause: &Option<scoop_sql::Expr>,
    row: &[Value],
    schema: &Schema,
) -> Result<bool> {
    match where_clause {
        None => Ok(true),
        Some(w) => Ok(scoop_sql::exec::eval_pred(w, row, schema)? == Some(true)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::MemoryConnector;
    use bytes::Bytes;
    use scoop_columnar::ColumnarWriter;
    use scoop_csv::schema::{DataType, Field};

    fn csv_data() -> Bytes {
        let mut out = String::from("vid,date,index,city\n");
        for i in 0..200 {
            out.push_str(&format!(
                "m{},2015-{:02}-10 00:00:00,{}.5,{}\n",
                i % 10,
                i % 12 + 1,
                i,
                if i % 4 == 0 { "Rotterdam" } else { "Paris" },
            ));
        }
        Bytes::from(out)
    }

    fn session(pushdown: bool) -> Session {
        let conn = MemoryConnector::with_pushdown();
        conn.put("meters", "part-0.csv", csv_data());
        let s = Session::new(conn, 4)
            .with_chunk_size(512)
            .with_pushdown(pushdown);
        s.register_table(
            "largemeter",
            "meters",
            None,
            TableFormat::Csv { has_header: true },
            None,
        );
        s
    }

    const QUERY: &str = "SELECT vid, sum(index) as total, count(*) as n \
        FROM largeMeter WHERE date LIKE '2015-01%' AND city LIKE 'Rotterdam' \
        GROUP BY vid ORDER BY vid";

    #[test]
    fn pushdown_and_vanilla_agree_on_results() {
        let vanilla = session(false).sql(QUERY).unwrap();
        let pushed = session(true).sql(QUERY).unwrap();
        assert_eq!(vanilla.result, pushed.result);
        assert_eq!(vanilla.metrics.mode, ExecutionMode::Vanilla);
        assert_eq!(pushed.metrics.mode, ExecutionMode::Pushdown);
        assert!(pushed.metrics.pushed_conjuncts == 2);
        // The whole point: pushdown transfers far less.
        assert!(
            pushed.metrics.bytes_transferred * 4 < vanilla.metrics.bytes_transferred,
            "pushdown {} vs vanilla {}",
            pushed.metrics.bytes_transferred,
            vanilla.metrics.bytes_transferred
        );
        assert!(pushed.metrics.rows_to_compute < vanilla.metrics.rows_to_compute);
        assert!(vanilla.metrics.tasks > 1);
    }

    #[test]
    fn non_aggregate_query_with_order_and_limit() {
        let s = session(true);
        let out = s
            .sql("SELECT vid, index FROM largemeter WHERE city LIKE 'Rotterdam' ORDER BY index DESC LIMIT 3")
            .unwrap();
        assert_eq!(out.result.rows.len(), 3);
        let v0 = out.result.rows[0][1].as_f64().unwrap();
        let v1 = out.result.rows[1][1].as_f64().unwrap();
        assert!(v0 >= v1);
    }

    #[test]
    fn residual_filters_are_applied_compute_side() {
        let s = session(true);
        let out = s
            .sql("SELECT count(*) as n FROM largemeter WHERE SUBSTRING(date, 0, 7) = '2015-01' AND city LIKE 'Rotterdam'")
            .unwrap();
        assert_eq!(out.metrics.pushed_conjuncts, 1);
        assert_eq!(out.metrics.residual_conjuncts, 1);
        let reference = session(false)
            .sql("SELECT count(*) as n FROM largemeter WHERE SUBSTRING(date, 0, 7) = '2015-01' AND city LIKE 'Rotterdam'")
            .unwrap();
        assert_eq!(out.result, reference.result);
    }

    #[test]
    fn columnar_table_agrees_with_csv() {
        // Same logical data in both formats.
        let conn = MemoryConnector::with_pushdown();
        conn.put("meters", "p.csv", csv_data());
        let schema = Schema::new(vec![
            Field::new("vid", DataType::Str),
            Field::new("date", DataType::Str),
            Field::new("index", DataType::Float),
            Field::new("city", DataType::Str),
        ]);
        let mut w = ColumnarWriter::with_row_group_rows(schema.clone(), 50);
        let reader = scoop_csv::CsvReader::new(
            scoop_common::stream::once(csv_data()),
            schema,
            true,
        );
        for row in reader {
            w.write_row(&row.unwrap());
        }
        conn.put("meters-col", "p.scol", w.finish());

        let s = Session::new(conn, 2).with_chunk_size(512);
        s.register_table(
            "largemeter",
            "meters",
            None,
            TableFormat::Csv { has_header: true },
            None,
        );
        s.register_table("colmeter", "meters-col", None, TableFormat::Columnar, None);
        let a = s.sql(QUERY).unwrap();
        let b = s.sql(&QUERY.replace("largeMeter", "colmeter")).unwrap();
        assert_eq!(a.result, b.result);
        assert_eq!(b.metrics.mode, ExecutionMode::Columnar);
    }

    #[test]
    fn unknown_table_errors() {
        let s = session(true);
        assert!(s.sql("SELECT x FROM ghost").is_err());
    }

    #[test]
    fn schema_is_cached_after_first_query() {
        let s = session(true);
        s.sql("SELECT count(*) FROM largemeter").unwrap();
        let def = s.table("largemeter").unwrap();
        assert!(def.schema.is_some());
    }
}

#[cfg(test)]
mod retry_tests {
    use super::*;
    use crate::connector::{MemoryConnector, ObjectInfo, StorageConnector};
    use bytes::Bytes;
    use scoop_common::ByteStream;
    use scoop_csv::PushdownSpec;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A connector whose reads fail with a retryable error the first
    /// `failures` times they are opened — the session should absorb those
    /// through task re-execution.
    struct FlakyConnector {
        inner: Arc<MemoryConnector>,
        remaining: AtomicU64,
        faults: AtomicU64,
    }

    impl FlakyConnector {
        fn new(inner: Arc<MemoryConnector>, failures: u64) -> Arc<FlakyConnector> {
            Arc::new(FlakyConnector {
                inner,
                remaining: AtomicU64::new(failures),
                faults: AtomicU64::new(0),
            })
        }

        fn trip(&self) -> Result<()> {
            if self
                .remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(1))
                .is_ok()
            {
                self.faults.fetch_add(1, Ordering::Relaxed);
                return Err(ScoopError::Io(std::io::Error::other(
                    "injected transient read failure",
                )));
            }
            Ok(())
        }
    }

    impl StorageConnector for FlakyConnector {
        fn list(&self, location: &str, prefix: Option<&str>) -> Result<Vec<ObjectInfo>> {
            self.inner.list(location, prefix)
        }

        fn read_from(&self, location: &str, object: &str, start: u64) -> Result<ByteStream> {
            self.trip()?;
            self.inner.read_from(location, object, start)
        }

        fn read_pushdown(
            &self,
            location: &str,
            object: &str,
            start: u64,
            end_exclusive: Option<u64>,
            spec: &PushdownSpec,
            file_schema: &[String],
        ) -> Result<ByteStream> {
            self.trip()?;
            self.inner
                .read_pushdown(location, object, start, end_exclusive, spec, file_schema)
        }

        fn fetch_range(&self, location: &str, object: &str, start: u64, end: u64) -> Result<Bytes> {
            self.inner.fetch_range(location, object, start, end)
        }

        fn supports_pushdown(&self) -> bool {
            self.inner.supports_pushdown()
        }

        fn bytes_transferred(&self) -> u64 {
            self.inner.bytes_transferred()
        }

        fn reset_transfer_counter(&self) {
            self.inner.reset_transfer_counter()
        }
    }

    fn flaky_session(failures: u64, max_task_failures: u32) -> (Session, Arc<FlakyConnector>) {
        let mem = MemoryConnector::with_pushdown();
        let mut data = String::from("vid,index\n");
        for i in 0..50 {
            data.push_str(&format!("m{},{}.0\n", i % 5, i));
        }
        mem.put("meters", "p.csv", Bytes::from(data));
        let conn = FlakyConnector::new(mem, failures);
        let s = Session::new(conn.clone(), 4)
            .with_chunk_size(128)
            .with_max_task_failures(max_task_failures);
        s.register_table(
            "largemeter",
            "meters",
            None,
            TableFormat::Csv { has_header: true },
            None,
        );
        (s, conn)
    }

    const QUERY: &str =
        "SELECT vid, sum(index) as total FROM largemeter GROUP BY vid ORDER BY vid";

    #[test]
    fn task_retry_recovers_transient_read_failures() {
        let (healthy, _) = flaky_session(0, DEFAULT_MAX_TASK_FAILURES);
        let reference = healthy.sql(QUERY).unwrap();
        assert_eq!(reference.metrics.task_retries, 0);

        let (flaky, conn) = flaky_session(3, DEFAULT_MAX_TASK_FAILURES);
        let out = flaky.sql(QUERY).unwrap();
        assert_eq!(out.result, reference.result, "retries must not change results");
        assert_eq!(conn.faults.load(Ordering::Relaxed), 3, "faults must actually fire");
        assert_eq!(out.metrics.task_retries, 3);
    }

    #[test]
    fn task_retry_disabled_fails_the_job() {
        let (flaky, _) = flaky_session(1, 1);
        assert!(flaky.sql(QUERY).is_err());
    }

    #[test]
    fn limit_is_exact_across_task_retries() {
        // A failed attempt must release its claim on the early-LIMIT quota.
        let (flaky, _) = flaky_session(2, DEFAULT_MAX_TASK_FAILURES);
        let out = flaky
            .sql("SELECT vid, index FROM largemeter LIMIT 10")
            .unwrap();
        assert_eq!(out.result.rows.len(), 10);
    }

    #[test]
    fn time_budget_fails_fast_and_generous_budget_changes_nothing() {
        // A generous budget is invisible: identical results, no retries.
        let (unbudgeted, _) = flaky_session(0, DEFAULT_MAX_TASK_FAILURES);
        let reference = unbudgeted.sql(QUERY).unwrap();
        let (roomy, _) = flaky_session(0, DEFAULT_MAX_TASK_FAILURES);
        let roomy = roomy.with_time_budget(Duration::from_secs(60));
        assert_eq!(roomy.sql(QUERY).unwrap().result, reference.result);

        // A zero budget expires before any task starts: the query fails
        // with a deadline error instead of running to completion.
        let (starved, conn) = flaky_session(0, DEFAULT_MAX_TASK_FAILURES);
        let starved = starved.with_time_budget(Duration::ZERO);
        let err = starved.sql(QUERY).unwrap_err();
        assert_eq!(err.kind(), "deadline", "{err}");
        assert_eq!(conn.faults.load(Ordering::Relaxed), 0);
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;
    use crate::connector::MemoryConnector;
    use bytes::Bytes;

    #[test]
    fn explain_reports_plan_shape() {
        let conn = MemoryConnector::with_pushdown();
        conn.put(
            "meters",
            "a.csv",
            Bytes::from_static(b"vid,date,index,city\nm1,2015-01-01,1.0,Paris\n"),
        );
        let s = Session::new(conn, 2).with_chunk_size(16);
        s.register_table(
            "largemeter",
            "meters",
            None,
            TableFormat::Csv { has_header: true },
            None,
        );
        let plan = s
            .explain(
                "SELECT vid, sum(index) as t FROM largemeter \
                 WHERE city LIKE 'Paris' AND index + 1 > 2 \
                 GROUP BY vid HAVING count(*) > 0 ORDER BY vid LIMIT 5",
            )
            .unwrap();
        assert!(plan.contains("at object store"), "{plan}");
        assert!(plan.contains("1 conjunct(s) pushed"), "{plan}");
        assert!(plan.contains("residual : "), "{plan}");
        assert!(plan.contains("index"), "{plan}");
        assert!(plan.contains("partial aggregation"), "{plan}");
        assert!(plan.contains("HAVING"), "{plan}");
        assert!(plan.contains("LIMIT 5"), "{plan}");

        // Vanilla session reports disabled pushdown.
        let conn = MemoryConnector::new();
        conn.put("meters", "a.csv", Bytes::from_static(b"vid,city\nm1,Paris\n"));
        let s = Session::new(conn, 2).with_pushdown(false);
        s.register_table(
            "largemeter",
            "meters",
            None,
            TableFormat::Csv { has_header: true },
            None,
        );
        let plan = s.explain("SELECT vid FROM largemeter").unwrap();
        assert!(plan.contains("disabled — compute-side"), "{plan}");
    }
}
