//! Property test: distributed execution (any chunk size, any worker count,
//! pushdown on or off) equals the single-pass reference executor.

use proptest::prelude::*;
use scoop_compute::{MemoryConnector, Session, TableFormat};
use scoop_csv::schema::{DataType, Field};
use scoop_csv::{CsvWriter, Schema, Value};
use scoop_sql::exec::execute;
use scoop_sql::parse;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("vid", DataType::Str),
        Field::new("n", DataType::Int),
        Field::new("city", DataType::Str),
    ])
}

fn rows_strategy() -> impl Strategy<Value = Vec<Vec<Value>>> {
    let row = (0u32..20, -50i64..50, 0u8..3).prop_map(|(vid, n, city)| {
        vec![
            Value::Str(format!("m{vid:02}").into()),
            Value::Int(n),
            Value::Str(["Rotterdam", "Paris", "Nice"][city as usize].to_string().into()),
        ]
    });
    proptest::collection::vec(row, 0..80)
}

fn query_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("SELECT vid, sum(n) as s, count(*) as c FROM t GROUP BY vid ORDER BY vid".to_string()),
        Just("SELECT city, min(n) as lo, max(n) as hi FROM t WHERE n > 0 GROUP BY city ORDER BY city".to_string()),
        Just("SELECT vid, n FROM t WHERE city LIKE 'R%' ORDER BY vid, n".to_string()),
        Just("SELECT count(*) as c FROM t WHERE n >= 10".to_string()),
        Just("SELECT DISTINCT city FROM t ORDER BY city".to_string()),
        Just("SELECT vid, count(*) as c FROM t GROUP BY vid HAVING count(*) > 2 ORDER BY vid".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn distributed_equals_reference(
        rows in rows_strategy(),
        sql in query_strategy(),
        chunk in 8u64..400,
        workers in 1usize..6,
        n_objects in 1usize..4,
        pushdown in any::<bool>(),
    ) {
        // Reference: single-pass executor over all rows.
        let query = parse(&sql).unwrap();
        let reference = execute(&query, &schema(), rows.clone().into_iter().map(Ok)).unwrap();

        // Distributed: rows spread over objects, partitioned by `chunk`.
        let conn = MemoryConnector::with_pushdown();
        let per_object = rows.len().div_ceil(n_objects).max(1);
        for (i, slab) in rows.chunks(per_object).enumerate() {
            let mut w = CsvWriter::new();
            w.write_header(&schema());
            for r in slab {
                w.write_row(r);
            }
            conn.put("t", &format!("part-{i}.csv"), w.into_bytes());
        }
        if rows.is_empty() {
            // Still need one (empty-but-headered) object for schema inference.
            let mut w = CsvWriter::new();
            w.write_header(&schema());
            conn.put("t", "part-0.csv", w.into_bytes());
        }
        let session = Session::new(conn, workers)
            .with_chunk_size(chunk)
            .with_pushdown(pushdown);
        session.register_table("t", "t", None, TableFormat::Csv { has_header: true }, Some(schema()));
        let outcome = session.sql(&sql).unwrap();

        // ORDER BY queries: exact order; others compare as sorted multisets.
        let normalize = |rs: &scoop_sql::ResultSet| {
            let mut v: Vec<String> = rs
                .rows
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|v| match v.as_f64() {
                            Some(f) => format!("{f:.6}"),
                            None => v.to_string(),
                        })
                        .collect::<Vec<_>>()
                        .join("|")
                })
                .collect();
            if query.order_by.is_empty() {
                v.sort();
            }
            v
        };
        prop_assert_eq!(
            normalize(&reference),
            normalize(&outcome.result),
            "sql={} chunk={} workers={} pushdown={}",
            sql, chunk, workers, pushdown
        );
    }
}
