//! The Stocator-like connector.
//!
//! "We modified Stocator so that it could inject pushdown tasks in object
//! requests issued to Swift; that is, HTTP requests issued by Spark tasks to
//! ingest data objects are tagged with the appropriate metadata (e.g.,
//! projections/selections) to execute both projections and the selections at
//! the object store." — Section V.
//!
//! [`SwiftConnector`] implements the compute framework's
//! [`StorageConnector`] seam over a `SwiftCluster` client:
//!
//! * plain reads — ranged GETs, lazily consumed;
//! * pushdown reads — GETs tagged with `X-Run-Storlet: csvfilter`,
//!   `X-Storlet-Parameters` (the serialized [`PushdownSpec`] + file schema)
//!   and `X-Storlet-Range` (the record-aligned logical split);
//! * point range fetches for columnar footers/chunks.
//!
//! It counts every byte its streams deliver to the compute side, which is
//! the inter-cluster traffic the paper's Fig. 9(c) plots.

use bytes::Bytes;
use scoop_common::rng::XorShift64;
use scoop_common::telemetry::{self, names};
use scoop_common::{stream, ByteStream, Result, RetryPolicy, ScoopError};
use scoop_compute::connector::{count_consumed, ObjectInfo, StorageConnector};
use scoop_csv::PushdownSpec;
use scoop_objectstore::request::{ByteRange, Request, Response};
use scoop_objectstore::{ObjectPath, SwiftClient};
use scoop_storlets::middleware::{encode_params, headers};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where pushdown filters execute (the staging-control contribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunOn {
    /// At object servers, close to the disks (the paper's preferred stage:
    /// higher concurrency, no full-object transfer to proxies).
    #[default]
    ObjectNode,
    /// At proxy servers.
    Proxy,
}

/// The connector. A *location* maps to a Swift container.
///
/// Wire accounting is double-entry: per-connector atomics back the exact
/// accessors the experiments assert on, while registry counters
/// (`scoop_connector_*_total`) aggregate the same events process-wide for
/// [`scoop_common::telemetry::snapshot`]. Both are registered at
/// construction so a snapshot lists them even before any traffic.
pub struct SwiftConnector {
    client: SwiftClient,
    run_on: RunOn,
    pushdown_supported: bool,
    transferred: Arc<AtomicU64>,
    resumes: Arc<AtomicU64>,
    fallbacks: Arc<AtomicU64>,
    skipped: Arc<AtomicU64>,
    transferred_global: telemetry::Counter,
    resumes_global: telemetry::Counter,
    fallbacks_global: telemetry::Counter,
    skipped_global: telemetry::Counter,
}

impl SwiftConnector {
    /// Wrap an authenticated client session.
    pub fn new(client: SwiftClient) -> Arc<SwiftConnector> {
        Self::build(client, RunOn::default(), true)
    }

    /// Choose the storlet execution stage.
    pub fn with_run_on(client: SwiftClient, run_on: RunOn) -> Arc<SwiftConnector> {
        Self::build(client, run_on, true)
    }

    /// A connector that never pushes down (vanilla arm over the same store).
    pub fn without_pushdown(client: SwiftClient) -> Arc<SwiftConnector> {
        Self::build(client, RunOn::default(), false)
    }

    fn build(client: SwiftClient, run_on: RunOn, pushdown_supported: bool) -> Arc<SwiftConnector> {
        Arc::new(SwiftConnector {
            client,
            run_on,
            pushdown_supported,
            transferred: Arc::new(AtomicU64::new(0)),
            resumes: Arc::new(AtomicU64::new(0)),
            fallbacks: Arc::new(AtomicU64::new(0)),
            skipped: Arc::new(AtomicU64::new(0)),
            transferred_global: telemetry::counter(names::CONNECTOR_BYTES_TRANSFERRED),
            resumes_global: telemetry::counter(names::CONNECTOR_STREAM_RESUMES),
            fallbacks_global: telemetry::counter(names::CONNECTOR_PUSHDOWN_FALLBACKS),
            skipped_global: telemetry::counter(names::CONNECTOR_BYTES_SKIPPED),
        })
    }

    /// Wrap a stream so consumed bytes land in both ledgers: the
    /// per-connector counter and the process-wide registry mirror.
    fn count(&self, inner: ByteStream) -> ByteStream {
        count_consumed(
            count_consumed(inner, self.transferred.clone()),
            self.transferred_global.cell(),
        )
    }

    /// The client session behind this connector.
    pub fn client(&self) -> &SwiftClient {
        &self.client
    }

    /// Mid-stream resumes: plain reads re-issued as ranged GETs from the
    /// last consumed byte after a retryable stream failure.
    pub fn stream_resumes(&self) -> u64 {
        self.resumes.load(Ordering::Relaxed)
    }

    /// Pushdown reads that the store shed for overload (`503` +
    /// `x-storlet-degraded`) and the connector transparently re-issued as
    /// plain ranged GETs with client-side filtering.
    pub fn pushdown_fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Object-store bytes that pushdown reads never had to touch because the
    /// store's block planner pruned them with zone maps (the sum of the
    /// `x-scoop-skipped-bytes` response headers).
    pub fn bytes_skipped(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    /// Total recovery actions taken: request re-dispatches by the client
    /// plus mid-stream resumes by the connector.
    pub fn retries(&self) -> u64 {
        self.client.retries() + self.stream_resumes()
    }

    fn path(&self, location: &str, object: &str) -> Result<ObjectPath> {
        ObjectPath::new(self.client.account(), location, object)
    }

    /// Apply `spec` compute-side over a raw byte stream starting at `start`,
    /// producing the same record-aligned filtered stream a store-side
    /// pushdown would have. Shared by the two degradation paths: bronze-tier
    /// policy stripping and overload shedding.
    fn filter_client_side(
        raw: ByteStream,
        start: u64,
        end_exclusive: Option<u64>,
        spec: &PushdownSpec,
        file_schema: &[String],
    ) -> Result<ByteStream> {
        let compiled = scoop_csv::filter::CompiledSpec::compile(spec, file_schema)?;
        let records = scoop_csv::split::RangedRecordStream::new(raw, start, end_exclusive);
        let mut skip_header = spec.has_header && start == 0;
        let filtered = records.filter_map(move |record| match record {
            Err(e) => Some(Err(e)),
            Ok(record) => {
                if skip_header {
                    skip_header = false;
                    return None;
                }
                let mut out = Vec::new();
                if compiled.filter_record(&record, &mut out) {
                    Some(Ok(Bytes::from(out)))
                } else {
                    None
                }
            }
        });
        Ok(Box::new(filtered))
    }
}

/// A byte stream over one object that survives mid-stream failures by
/// re-issuing a ranged GET from the last byte it delivered downstream.
///
/// Plain reads are byte-addressed, so a broken stream can resume exactly
/// where it left off — unlike pushdown streams, whose filtered output has no
/// stable byte mapping back into the object and which therefore recover via
/// whole-task re-execution in the compute scheduler.
///
/// Truncated bodies are detected by length-checking each GET against the
/// store's `x-object-length` header: a stream that ends early surfaces a
/// retryable error instead of silently passing short data to the query.
struct ResumingStream {
    client: SwiftClient,
    path: ObjectPath,
    /// Absolute offset of the next byte to deliver.
    offset: u64,
    inner: Option<ByteStream>,
    policy: RetryPolicy,
    rng: XorShift64,
    /// Consecutive failures without delivering a byte.
    failures: u32,
    resumes: Arc<AtomicU64>,
    resumes_global: telemetry::Counter,
    done: bool,
}

impl ResumingStream {
    fn open(
        client: &SwiftClient,
        path: &ObjectPath,
        start: u64,
        resumes: Arc<AtomicU64>,
        resumes_global: telemetry::Counter,
    ) -> Result<ResumingStream> {
        let mut s = ResumingStream {
            client: client.clone(),
            path: path.clone(),
            offset: start,
            inner: None,
            policy: client.retry_policy().clone(),
            rng: XorShift64::new(client.retry_policy().seed ^ 0x9E37_79B9_7F4A_7C15),
            failures: 0,
            resumes,
            resumes_global,
            done: false,
        };
        s.inner = Some(s.issue()?);
        Ok(s)
    }

    /// GET from the current offset, length-checked against the whole-object
    /// size advertised by the store.
    fn issue(&self) -> Result<ByteStream> {
        let mut req = Request::get(self.path.clone());
        if self.offset > 0 {
            req = req.with_range(ByteRange { start: self.offset, end: None });
        }
        let resp = self.client.request(req)?;
        if !resp.is_success() {
            return Err(ScoopError::Io(std::io::Error::other(format!(
                "GET {} failed with status {}",
                self.path, resp.status
            ))));
        }
        Ok(checked_body(resp, self.offset))
    }

    /// Whether a mid-stream failure still has resume budget.
    fn can_resume(&self, e: &ScoopError) -> bool {
        e.is_retryable() && self.failures + 1 < self.policy.max_attempts
    }
}

/// Wrap a GET response body so that a short body (relative to the store's
/// `x-object-length`) errors instead of ending silently.
fn checked_body(resp: Response, start: u64) -> ByteStream {
    match resp
        .headers
        .get(scoop_common::headers::OBJECT_LENGTH)
        .and_then(|l| l.parse::<u64>().ok())
    {
        Some(total) => stream::enforce_length(resp.body, total.saturating_sub(start)),
        None => resp.body,
    }
}

impl Iterator for ResumingStream {
    type Item = Result<Bytes>;

    fn next(&mut self) -> Option<Result<Bytes>> {
        loop {
            if self.done {
                return None;
            }
            if self.inner.is_none() {
                // Re-open after a failure; dispatch errors count against the
                // same resume budget as stream errors.
                match self.issue() {
                    Ok(s) => self.inner = Some(s),
                    Err(e) if self.can_resume(&e) => {
                        std::thread::sleep(self.policy.backoff(self.failures, &mut self.rng));
                        self.failures += 1;
                        self.resumes.fetch_add(1, Ordering::Relaxed);
                        self.resumes_global.inc();
                        continue;
                    }
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                }
            }
            let Some(inner) = self.inner.as_mut() else {
                // `open_at` above either set `self.inner` or bailed; surface
                // a classified error rather than panicking mid-read if that
                // invariant ever breaks.
                self.done = true;
                return Some(Err(ScoopError::Internal(
                    "resumable stream lost its inner reader".into(),
                )));
            };
            match inner.next() {
                Some(Ok(chunk)) => {
                    self.offset += chunk.len() as u64;
                    // Progress resets the failure budget: a long object may
                    // legitimately hit more transient faults than one open.
                    self.failures = 0;
                    return Some(Ok(chunk));
                }
                Some(Err(e)) if self.can_resume(&e) => {
                    std::thread::sleep(self.policy.backoff(self.failures, &mut self.rng));
                    self.failures += 1;
                    self.resumes.fetch_add(1, Ordering::Relaxed);
                    self.resumes_global.inc();
                    self.inner = None;
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e));
                }
                None => {
                    self.done = true;
                    return None;
                }
            }
        }
    }
}

impl StorageConnector for SwiftConnector {
    fn list(&self, location: &str, prefix: Option<&str>) -> Result<Vec<ObjectInfo>> {
        Ok(self
            .client
            .list(location, prefix)?
            .into_iter()
            .map(|r| ObjectInfo { name: r.name, size: r.size })
            .collect())
    }

    fn read_from(&self, location: &str, object: &str, start: u64) -> Result<ByteStreamAlias> {
        let trace = self.client.trace();
        let _span = telemetry::span(
            trace.as_deref(),
            telemetry::layers::CONNECTOR,
            format!("read {location}/{object} from {start}"),
        );
        let stream = ResumingStream::open(
            &self.client,
            &self.path(location, object)?,
            start,
            self.resumes.clone(),
            self.resumes_global.clone(),
        )?;
        Ok(self.count(Box::new(stream)))
    }

    fn read_pushdown(
        &self,
        location: &str,
        object: &str,
        start: u64,
        end_exclusive: Option<u64>,
        spec: &PushdownSpec,
        file_schema: &[String],
    ) -> Result<ByteStreamAlias> {
        if !self.pushdown_supported {
            return Err(ScoopError::Unsupported(
                "connector built without pushdown".into(),
            ));
        }
        let trace = self.client.trace();
        let _span = telemetry::span(
            trace.as_deref(),
            telemetry::layers::CONNECTOR,
            format!("pushdown {location}/{object}"),
        );
        // An empty split owns no records. Without this guard,
        // `end_exclusive == Some(0)` would saturate to the inclusive range
        // `bytes=0-0` below and re-read the first record.
        if matches!(end_exclusive, Some(e) if e <= start) {
            return Ok(stream::empty());
        }
        let mut params = HashMap::new();
        params.insert("spec".to_string(), spec.to_header());
        params.insert("schema".to_string(), file_schema.join(","));
        let mut req = Request::get(self.path(location, object)?)
            .with_header(headers::RUN_STORLET, "csvfilter")
            .with_header(headers::PARAMETERS, encode_params(&params));
        if self.run_on == RunOn::Proxy {
            req = req.with_header(headers::RUN_ON, "proxy");
        }
        // The logical split [start, end_exclusive) travels as an inclusive
        // HTTP-style storlet range; the storlet owns records starting in
        // (start, end_exclusive].
        let range = ByteRange {
            start,
            end: end_exclusive.map(|e| e.saturating_sub(1)),
        };
        if start != 0 || end_exclusive.is_some() {
            req = req.with_header(headers::STORLET_RANGE, range.to_header());
        }
        let resp = self.client.request(req)?;
        if resp.status == 503 && resp.headers.contains(headers::DEGRADED) {
            // Overload shedding: the storlet engine refused the pushdown.
            // Degrade transparently to a plain (resumable) ranged GET and
            // filter compute-side — slower and heavier on the wire, but the
            // query still completes with identical results.
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
            self.fallbacks_global.inc();
            let plain = ResumingStream::open(
                &self.client,
                &self.path(location, object)?,
                start,
                self.resumes.clone(),
                self.resumes_global.clone(),
            )?;
            let raw = self.count(Box::new(plain));
            return Self::filter_client_side(raw, start, end_exclusive, spec, file_schema);
        }
        if !resp.is_success() {
            return Err(ScoopError::Io(std::io::Error::other(format!(
                "pushdown GET {location}/{object} failed with status {}",
                resp.status
            ))));
        }
        if resp.headers.get(headers::INVOKED).is_some() {
            if let Some(skipped) = resp
                .headers
                .get(scoop_common::headers::SKIPPED_BYTES)
                .and_then(|v| v.parse::<u64>().ok())
            {
                self.skipped.fetch_add(skipped, Ordering::Relaxed);
                self.skipped_global.add(skipped);
            }
            return Ok(self.count(resp.body));
        }
        // The store declined the pushdown (e.g. a bronze-tier policy stripped
        // it): the response is raw object bytes from `start`. Count the raw
        // transfer, then align + filter client-side so callers still receive
        // the contract's filtered record stream.
        let raw = self.count(checked_body(resp, start));
        Self::filter_client_side(raw, start, end_exclusive, spec, file_schema)
    }

    fn fetch_range(&self, location: &str, object: &str, start: u64, end: u64) -> Result<Bytes> {
        if end <= start {
            return Ok(Bytes::new());
        }
        let trace = self.client.trace();
        let _span = telemetry::span(
            trace.as_deref(),
            telemetry::layers::CONNECTOR,
            format!("fetch {location}/{object} [{start},{end})"),
        );
        let req = Request::get(self.path(location, object)?)
            .with_range(ByteRange { start, end: Some(end - 1) });
        let resp = self.client.request(req)?;
        if !resp.is_success() {
            return Err(ScoopError::Io(std::io::Error::other(format!(
                "ranged GET {location}/{object} failed with status {}",
                resp.status
            ))));
        }
        let data = resp.read_body()?;
        self.transferred
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.transferred_global.add(data.len() as u64);
        Ok(data)
    }

    fn invoke_storlet(
        &self,
        location: &str,
        object: &str,
        storlets: &str,
        params: &HashMap<String, String>,
        range: Option<(u64, u64)>,
    ) -> Result<scoop_common::ByteStream> {
        let trace = self.client.trace();
        let _span = telemetry::span(
            trace.as_deref(),
            telemetry::layers::CONNECTOR,
            format!("storlet {storlets} on {location}/{object}"),
        );
        let mut req = Request::get(self.path(location, object)?)
            .with_header(headers::RUN_STORLET, storlets)
            .with_header(headers::PARAMETERS, encode_params(params));
        if self.run_on == RunOn::Proxy {
            req = req.with_header(headers::RUN_ON, "proxy");
        }
        if let Some((start, end_exclusive)) = range {
            req = req.with_header(
                headers::STORLET_RANGE,
                ByteRange { start, end: Some(end_exclusive.saturating_sub(1)) }.to_header(),
            );
        }
        let resp = self.client.request(req)?;
        if !resp.is_success() {
            return Err(ScoopError::Io(std::io::Error::other(format!(
                "storlet GET {location}/{object} failed with status {}",
                resp.status
            ))));
        }
        Ok(self.count(resp.body))
    }

    fn set_deadline(&self, deadline: scoop_common::Deadline) {
        self.client.set_deadline(deadline);
    }

    fn set_trace(&self, trace: Option<String>) {
        self.client.set_trace(trace);
    }

    fn supports_pushdown(&self) -> bool {
        self.pushdown_supported
    }

    fn bytes_transferred(&self) -> u64 {
        self.transferred.load(Ordering::Relaxed)
    }

    fn reset_transfer_counter(&self) {
        self.transferred.store(0, Ordering::Relaxed);
    }
}

/// Local alias to keep signatures readable.
type ByteStreamAlias = scoop_common::ByteStream;

#[cfg(test)]
mod tests {
    use super::*;
    use scoop_objectstore::middleware::Pipeline;
    use scoop_objectstore::{SwiftCluster, SwiftConfig};
    use scoop_storlets::{PolicyStore, StorletEngine, StorletMiddleware};
    use scoop_csv::{Predicate, Value};

    const DATA: &[u8] = b"vid,date,index,city\n\
        m1,2015-01-03,100.5,Rotterdam\n\
        m2,2015-01-04,200.0,Paris\n\
        m3,2015-02-01,50.0,Utrecht\n\
        m4,2015-01-09,75.0,Rotterdam\n";

    fn cluster() -> Arc<SwiftCluster> {
        let cluster = SwiftCluster::new(SwiftConfig::default()).unwrap();
        let engine = Arc::new(StorletEngine::with_builtin_filters());
        let mut obj = Pipeline::new();
        obj.push(Arc::new(StorletMiddleware::new(engine.clone())));
        cluster.set_object_pipeline(obj);
        let mut proxy = Pipeline::new();
        proxy.push(Arc::new(StorletMiddleware::with_policy(
            engine,
            Arc::new(PolicyStore::new()),
        )));
        cluster.set_proxy_pipeline(proxy);
        let client = cluster.anonymous_client("AUTH_gp");
        client.create_container("meters").unwrap();
        client
            .put_object("meters", "jan.csv", Bytes::from_static(DATA))
            .unwrap();
        cluster
    }

    fn schema() -> Vec<String> {
        ["vid", "date", "index", "city"].iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn list_and_plain_read() {
        let cluster = cluster();
        let conn = SwiftConnector::new(cluster.anonymous_client("AUTH_gp"));
        let objs = conn.list("meters", None).unwrap();
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].size, DATA.len() as u64);
        let body =
            scoop_common::stream::collect(conn.read_from("meters", "jan.csv", 0).unwrap())
                .unwrap();
        assert_eq!(body, DATA);
        assert_eq!(conn.bytes_transferred(), DATA.len() as u64);
        // Offset read.
        let tail =
            scoop_common::stream::collect(conn.read_from("meters", "jan.csv", 20).unwrap())
                .unwrap();
        assert_eq!(&tail[..], &DATA[20..]);
    }

    #[test]
    fn pushdown_read_filters_at_store() {
        let cluster = cluster();
        let conn = SwiftConnector::new(cluster.anonymous_client("AUTH_gp"));
        let spec = PushdownSpec {
            columns: Some(vec!["vid".into(), "index".into()]),
            predicate: Some(Predicate::Eq("city".into(), Value::Str("Rotterdam".into()))),
            has_header: true,
        };
        let out = scoop_common::stream::collect(
            conn.read_pushdown("meters", "jan.csv", 0, None, &spec, &schema())
                .unwrap(),
        )
        .unwrap();
        assert_eq!(out, "m1,100.5\nm4,75.0\n");
        // Only filtered bytes crossed the wire.
        assert_eq!(conn.bytes_transferred(), out.len() as u64);
    }

    #[test]
    fn pushdown_over_indexed_object_counts_skipped_bytes() {
        let cluster = cluster();
        let client = cluster.anonymous_client("AUTH_gp");
        // Index a clustered object at PUT time so the store can skip blocks.
        let mut data = Vec::from(&b"vid,date,index,city\n"[..]);
        for i in 0..400 {
            data.extend_from_slice(format!("m{i},2015-01-01,{i},x\n").as_bytes());
        }
        let mut params = HashMap::new();
        params.insert("schema".to_string(), "vid,date,index,city".to_string());
        params.insert("header".to_string(), "1".to_string());
        params.insert("block".to_string(), "512".to_string());
        let put = Request::put(
            ObjectPath::new("AUTH_gp", "meters", "big.csv").unwrap(),
            Bytes::from(data.clone()),
        )
        .with_header(headers::RUN_STORLET, "zoneindex")
        .with_header(headers::PARAMETERS, encode_params(&params));
        assert_eq!(client.request(put).unwrap().status, 201);

        let conn = SwiftConnector::new(cluster.anonymous_client("AUTH_gp"));
        let spec = PushdownSpec {
            columns: Some(vec!["vid".into()]),
            predicate: Some(Predicate::Eq("index".into(), Value::Int(250))),
            has_header: true,
        };
        let out = scoop_common::stream::collect(
            conn.read_pushdown("meters", "big.csv", 0, None, &spec, &schema())
                .unwrap(),
        )
        .unwrap();
        assert_eq!(out, "m250\n");
        assert!(
            conn.bytes_skipped() > data.len() as u64 / 2,
            "skipped {} of {} bytes",
            conn.bytes_skipped(),
            data.len()
        );
    }

    #[test]
    fn ranged_pushdown_covers_each_record_once() {
        let cluster = cluster();
        let conn = SwiftConnector::new(cluster.anonymous_client("AUTH_gp"));
        let spec = PushdownSpec {
            columns: Some(vec!["vid".into()]),
            predicate: None,
            has_header: true,
        };
        for chunk in [10u64, 25, 31, 64, 1000] {
            let mut combined = Vec::new();
            for (s, e) in scoop_csv::split::plan_splits(DATA.len() as u64, chunk) {
                let body = scoop_common::stream::collect(
                    conn.read_pushdown("meters", "jan.csv", s, Some(e), &spec, &schema())
                        .unwrap(),
                )
                .unwrap();
                combined.extend_from_slice(&body);
            }
            assert_eq!(
                String::from_utf8(combined).unwrap(),
                "m1\nm2\nm3\nm4\n",
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn degenerate_pushdown_range_yields_nothing() {
        let cluster = cluster();
        let conn = SwiftConnector::new(cluster.anonymous_client("AUTH_gp"));
        let spec = PushdownSpec {
            columns: Some(vec!["vid".into()]),
            predicate: None,
            has_header: true,
        };
        // Regression: [0, 0) used to saturate to the inclusive header
        // `bytes=0-0` and re-deliver the first record of the object.
        for (s, e) in [(0u64, 0u64), (5, 5), (10, 3)] {
            let out = scoop_common::stream::collect(
                conn.read_pushdown("meters", "jan.csv", s, Some(e), &spec, &schema())
                    .unwrap(),
            )
            .unwrap();
            assert!(out.is_empty(), "split [{s},{e}) must own no records");
        }
    }

    #[test]
    fn proxy_stage_pushdown_works() {
        let cluster = cluster();
        let conn =
            SwiftConnector::with_run_on(cluster.anonymous_client("AUTH_gp"), RunOn::Proxy);
        let spec = PushdownSpec {
            columns: Some(vec!["city".into()]),
            predicate: Some(Predicate::StartsWith("date".into(), "2015-01".into())),
            has_header: true,
        };
        let out = scoop_common::stream::collect(
            conn.read_pushdown("meters", "jan.csv", 0, None, &spec, &schema())
                .unwrap(),
        )
        .unwrap();
        assert_eq!(out, "Rotterdam\nParis\nRotterdam\n");
    }

    #[test]
    fn fetch_range_and_errors() {
        let cluster = cluster();
        let conn = SwiftConnector::new(cluster.anonymous_client("AUTH_gp"));
        assert_eq!(conn.fetch_range("meters", "jan.csv", 0, 3).unwrap(), "vid");
        assert_eq!(conn.fetch_range("meters", "jan.csv", 5, 5).unwrap().len(), 0);
        assert!(conn.read_from("meters", "ghost.csv", 0).is_err());
        let no_push = SwiftConnector::without_pushdown(cluster.anonymous_client("AUTH_gp"));
        assert!(!no_push.supports_pushdown());
        assert!(no_push
            .read_pushdown("meters", "jan.csv", 0, None, &PushdownSpec::passthrough(), &schema())
            .is_err());
    }
}
