//! End-to-end chaos suite: the full ingest path — compute session →
//! connector → Swift-like store with storlet pushdown — run under each
//! injected fault class must produce results identical to the fault-free
//! run, with the stack's retry counters proving the faults actually fired
//! and were recovered, not dodged.
//!
//! Recovery is layered: the proxy fails reads over to surviving replicas,
//! the client re-dispatches retryably-failed requests, the connector
//! resumes broken plain-read streams from the last delivered byte, and the
//! scheduler re-executes pushdown tasks whose filtered stream broke
//! mid-flight (filtered output has no stable byte mapping to resume from).

use bytes::Bytes;
use scoop_common::RetryPolicy;
use scoop_compute::{QueryOutcome, Session, TableFormat};
use scoop_connector::SwiftConnector;
use scoop_objectstore::middleware::Pipeline;
use scoop_objectstore::{FaultPlan, SwiftCluster, SwiftConfig};
use scoop_storlets::{PolicyStore, StorletEngine, StorletMiddleware};
use std::sync::Arc;
use std::time::Duration;

/// Base seeds are fixed for day-to-day reproducibility; the CI seed matrix
/// exports `SCOOP_CHAOS_SEED` to perturb every plan, so each matrix leg
/// explores a different deterministic fault sequence. A matrix failure
/// reproduces locally by exporting the same value.
fn seed(base: u64) -> u64 {
    match std::env::var("SCOOP_CHAOS_SEED") {
        Ok(s) => {
            let mix: u64 = s.parse().expect("SCOOP_CHAOS_SEED must be a u64");
            base ^ mix.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        }
        Err(_) => base,
    }
}

/// ~19 KB of GridPocket-style meter readings — enough for several splits.
fn meter_csv() -> Bytes {
    let mut out = String::from("vid,date,index,city\n");
    for i in 0..400 {
        out.push_str(&format!(
            "m{:02},2015-{:02}-{:02} 10:0{}:00,{}.{},{}\n",
            i % 20,
            i % 12 + 1,
            i % 28 + 1,
            i % 10,
            i,
            i % 100,
            ["Rotterdam", "Paris", "Utrecht", "Delft"][i % 4],
        ));
    }
    Bytes::from(out)
}

const QUERY: &str = "SELECT vid, sum(index) as total, count(*) as n \
    FROM meters WHERE date LIKE '2015-01%' AND city LIKE 'Rotterdam' \
    GROUP BY vid ORDER BY vid";

struct Run {
    cluster: Arc<SwiftCluster>,
    connector: Arc<SwiftConnector>,
    session: Session,
    outcome: QueryOutcome,
}

/// Build a storlet-enabled cluster under `plan`, load the fixture, and run
/// the pushdown query end to end.
fn run_query(plan: Option<FaultPlan>, pushdown: bool) -> Run {
    let cluster = SwiftCluster::new(SwiftConfig {
        fault_plan: plan,
        ..SwiftConfig::default()
    })
    .unwrap();
    let engine = Arc::new(StorletEngine::with_builtin_filters());
    let mut obj = Pipeline::new();
    obj.push(Arc::new(StorletMiddleware::new(engine.clone())));
    cluster.set_object_pipeline(obj);
    let mut proxy = Pipeline::new();
    proxy.push(Arc::new(StorletMiddleware::with_policy(
        engine,
        Arc::new(PolicyStore::new()),
    )));
    cluster.set_proxy_pipeline(proxy);

    let client = cluster
        .anonymous_client("AUTH_gp")
        .with_retry(RetryPolicy::default());
    client.create_container("meters").unwrap();
    client.put_object("meters", "jan.csv", meter_csv()).unwrap();

    let connector = if pushdown {
        SwiftConnector::new(client)
    } else {
        SwiftConnector::without_pushdown(client)
    };
    let session = Session::new(connector.clone(), 2)
        .with_chunk_size(2048)
        .with_pushdown(pushdown)
        .with_max_task_failures(10);
    session.register_table(
        "meters",
        "meters",
        None,
        TableFormat::Csv { has_header: true },
        None,
    );
    let outcome = session.sql(QUERY).unwrap();
    Run { cluster, connector, session, outcome }
}

/// Total recovery actions across the stack for a run.
fn recoveries(run: &Run) -> u64 {
    run.cluster.replica_failovers()
        + run.connector.retries()
        + run.outcome.metrics.task_retries
}

#[test]
fn pushdown_query_survives_transient_errors() {
    let reference = run_query(None, true);
    assert_eq!(recoveries(&reference), 0, "fault-free run must not retry");

    let faulted = run_query(Some(FaultPlan::transient_errors(seed(0xE1))), true);
    assert_eq!(
        faulted.outcome.result, reference.outcome.result,
        "results diverge under transient errors"
    );
    // A single query samples only a couple dozen fault rolls, so under an
    // arbitrary matrix seed one pass can come up clean; soak until the
    // plan's faults actually fire and something recovers.
    let mut task_retries = faulted.outcome.metrics.task_retries;
    for _ in 0..12 {
        let stats = faulted.cluster.fault_stats();
        let recovered =
            faulted.cluster.replica_failovers() + faulted.connector.retries() + task_retries;
        if stats.errors > 0 && recovered > 0 {
            break;
        }
        let out = faulted.session.sql(QUERY).unwrap();
        assert_eq!(
            out.result, reference.outcome.result,
            "results diverge under transient errors"
        );
        task_retries += out.metrics.task_retries;
    }
    let stats = faulted.cluster.fault_stats();
    assert!(stats.errors > 0, "no faults fired: {stats:?}");
    assert!(
        faulted.cluster.replica_failovers() + faulted.connector.retries() + task_retries > 0,
        "faults fired but nothing recovered"
    );
}

#[test]
fn pushdown_query_survives_truncated_bodies() {
    let reference = run_query(None, true);
    // The pushdown arm samples only ~10 reads (one GET per task), so the
    // preset 0.25 rate leaves a fat zero-truncation tail under arbitrary
    // matrix seeds; 0.5 keeps every leg exercising the re-execution path.
    let faulted = run_query(
        Some(FaultPlan::quiet(seed(0x7B)).with_truncate_rate(0.5)),
        true,
    );
    assert_eq!(
        faulted.outcome.result, reference.outcome.result,
        "results diverge under truncated bodies"
    );
    // A truncated pushdown stream is only detectable once the storlet's
    // length-checked body runs dry mid-split — a cut past the split's
    // logical end is never even pulled, so not every truncation is
    // observable. Soak over more rounds until one lands inside a consumed
    // range: a detected truncation either re-executes the broken task,
    // resumes a broken plain read, or — once a retry budget is exhausted —
    // fails the query loudly. What it must never do is silently drop
    // records, which the byte-identity check on every successful round
    // rules out.
    let mut detections =
        faulted.outcome.metrics.task_retries + faulted.connector.stream_resumes();
    for _round in 0..12 {
        if detections > 0 {
            break;
        }
        match faulted.session.sql(QUERY) {
            Ok(out) => {
                assert_eq!(
                    out.result, reference.outcome.result,
                    "results diverge under truncated bodies"
                );
                detections += out.metrics.task_retries + faulted.connector.stream_resumes();
            }
            Err(e) => {
                assert!(
                    e.to_string().contains("truncated"),
                    "job failed for a non-truncation reason: {e}"
                );
                detections += 1;
            }
        }
    }
    let stats = faulted.cluster.fault_stats();
    assert!(stats.truncations > 0, "no truncations fired: {stats:?}");
    assert!(
        detections > 0,
        "truncations fired but none was ever detected: {stats:?}"
    );
}

#[test]
fn pushdown_query_survives_stalled_streams() {
    let reference = run_query(None, true);
    let faulted = run_query(
        Some(FaultPlan::stalled_reads(seed(0x5A)).with_stalls(0.3, Duration::from_micros(300))),
        true,
    );
    assert_eq!(
        faulted.outcome.result, reference.outcome.result,
        "results diverge under stalled reads"
    );
    // Stalls delay but never fail, so soaking extra rounds is cheap; keep
    // reading until the plan actually fires one.
    for _ in 0..12 {
        if faulted.cluster.fault_stats().stalls > 0 {
            break;
        }
        let out = faulted.session.sql(QUERY).unwrap();
        assert_eq!(
            out.result, reference.outcome.result,
            "results diverge under stalled reads"
        );
    }
    let stats = faulted.cluster.fault_stats();
    assert!(stats.stalls > 0, "no stalls fired: {stats:?}");
}

#[test]
fn pushdown_query_survives_node_down_window() {
    let reference = run_query(None, true);
    // Down the node that serves the object's *first* replica, so every GET
    // must fail over. Ring construction is deterministic for a fixed
    // config, so the fault-free run's ring predicts the chaos run's.
    let key = scoop_objectstore::ObjectPath::new("AUTH_gp", "meters", "jan.csv")
        .unwrap()
        .ring_key();
    let ring = reference.cluster.ring();
    let ring = ring.read();
    let first_node = ring.device(ring.lookup(&key)[0]).node;
    drop(ring);
    let faulted = run_query(
        Some(FaultPlan::quiet(seed(0xD0)).with_down_window(first_node, 0, u64::MAX)),
        true,
    );
    assert_eq!(
        faulted.outcome.result, reference.outcome.result,
        "results diverge with a node down"
    );
    let stats = faulted.cluster.fault_stats();
    assert!(stats.down_rejections > 0, "down window never hit: {stats:?}");
    assert!(
        faulted.cluster.replica_failovers() > 0,
        "no reads failed over around the dead node"
    );
}

#[test]
fn vanilla_query_resumes_plain_reads_mid_stream() {
    // The no-pushdown arm ingests whole objects through ResumingStream:
    // mid-stream faults are absorbed by re-issuing ranged GETs from the
    // last consumed offset rather than re-running the task.
    let reference = run_query(None, false);
    let faulted = run_query(
        Some(FaultPlan::quiet(seed(0xF1)).with_error_rate(0.2).with_truncate_rate(0.2)),
        false,
    );
    assert_eq!(
        faulted.outcome.result, reference.outcome.result,
        "results diverge on the vanilla arm"
    );
    assert_eq!(reference.outcome.result, run_query(None, true).outcome.result);
    let mut task_retries = faulted.outcome.metrics.task_retries;
    for _ in 0..12 {
        let stats = faulted.cluster.fault_stats();
        let recovered = faulted.cluster.replica_failovers()
            + faulted.connector.retries()
            + faulted.connector.stream_resumes()
            + task_retries;
        if stats.errors + stats.truncations > 0 && recovered > 0 {
            break;
        }
        let out = faulted.session.sql(QUERY).unwrap();
        assert_eq!(
            out.result, reference.outcome.result,
            "results diverge on the vanilla arm"
        );
        task_retries += out.metrics.task_retries;
    }
    let stats = faulted.cluster.fault_stats();
    assert!(stats.errors + stats.truncations > 0, "no faults fired: {stats:?}");
    assert!(
        faulted.cluster.replica_failovers()
            + faulted.connector.retries()
            + faulted.connector.stream_resumes()
            + task_retries
            > 0,
        "faults fired but nothing recovered"
    );
}

#[test]
fn mixed_faults_full_stack_soak() {
    let reference = run_query(None, true);
    let plan = FaultPlan::quiet(seed(0xC4A05))
        .with_error_rate(0.12)
        .with_truncate_rate(0.08)
        .with_stalls(0.05, Duration::from_micros(100))
        .with_down_window(1, 100, 260);
    let faulted = run_query(Some(plan), true);
    assert_eq!(
        faulted.outcome.result, reference.outcome.result,
        "results diverge under mixed faults"
    );
    assert!(faulted.cluster.fault_stats().total_faults() > 0);
}
