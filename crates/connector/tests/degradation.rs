//! Overload-protection e2e suite: a cluster suffering a sustained slow
//! node, a dead replica node, and a saturated storlet engine must still
//! answer the Table I-style query within its time budget — and with
//! byte-identical results — when the protection stack is on:
//!
//! * hedged GETs race a healthy replica past the slow one,
//! * the circuit breaker learns the dead node and skips it proactively,
//! * shed pushdown requests (`503` + `x-storlet-degraded`) fall back to a
//!   plain ranged GET with client-side filtering.
//!
//! The control arm runs the *same* fault plan and budget with breakers and
//! hedging disabled and must measurably violate the deadline.

use bytes::Bytes;
use scoop_common::RetryPolicy;
use scoop_compute::{QueryOutcome, Session, TableFormat};
use scoop_connector::SwiftConnector;
use scoop_objectstore::middleware::Pipeline;
use scoop_objectstore::{BreakerConfig, FaultPlan, ObjectPath, SwiftCluster, SwiftConfig};
use scoop_storlets::{AdaptivePolicy, PolicyStore, StorletEngine, StorletMiddleware};
use std::sync::Arc;
use std::time::Duration;

/// ~19 KB of GridPocket-style meter readings — enough for several splits.
fn meter_csv() -> Bytes {
    let mut out = String::from("vid,date,index,city\n");
    for i in 0..400 {
        out.push_str(&format!(
            "m{:02},2015-{:02}-{:02} 10:0{}:00,{}.{},{}\n",
            i % 20,
            i % 12 + 1,
            i % 28 + 1,
            i % 10,
            i,
            i % 100,
            ["Rotterdam", "Paris", "Utrecht", "Delft"][i % 4],
        ));
    }
    Bytes::from(out)
}

const QUERY: &str = "SELECT vid, sum(index) as total, count(*) as n \
    FROM meters WHERE date LIKE '2015-01%' AND city LIKE 'Rotterdam' \
    GROUP BY vid ORDER BY vid";

/// Per-read latency of the slow node. Shed pushdown GETs are refused before
/// any backend read, so each task pays exactly one slow read — the plain
/// fallback GET. The unprotected arm's wall time is therefore sleep-bound
/// (one `SLOW_READ` per task over the worker pool) regardless of host
/// speed; the protected arm hedges past it in milliseconds.
const SLOW_READ: Duration = Duration::from_millis(500);

/// Hedge threshold: far above a healthy in-process replica read (~µs), far
/// below `SLOW_READ`.
const HEDGE_AFTER: Duration = Duration::from_millis(3);

/// Query wall-clock budget shared by both arms. The unprotected arm's
/// sleep-bound floor (≥ 10 tasks × 500 ms over 2 workers = 2.5 s) sits
/// well past it; the protected arm's hedge-bound cost sits well under.
const BUDGET: Duration = Duration::from_millis(1500);

struct Run {
    cluster: Arc<SwiftCluster>,
    connector: Arc<SwiftConnector>,
    engine: Arc<StorletEngine>,
    outcome: scoop_common::Result<QueryOutcome>,
}

/// Build a storlet-enabled cluster from `config`, optionally saturate the
/// engine's admission slots, load the fixture, and run the pushdown query
/// under `budget`.
fn run_query(config: SwiftConfig, saturate: bool, budget: Option<Duration>) -> Run {
    let cluster = SwiftCluster::new(config).unwrap();
    let engine = Arc::new(StorletEngine::with_builtin_filters());
    let mut obj = Pipeline::new();
    obj.push(Arc::new(StorletMiddleware::new(engine.clone())));
    cluster.set_object_pipeline(obj);
    let mut proxy = Pipeline::new();
    proxy.push(Arc::new(StorletMiddleware::with_policy(
        engine.clone(),
        Arc::new(PolicyStore::new()),
    )));
    cluster.set_proxy_pipeline(proxy);
    if saturate {
        // Zero concurrency and zero burst slots: every pushdown GET sheds.
        let policy = AdaptivePolicy {
            max_concurrent_invocations: Some(0),
            max_queue_depth: 0,
            ..AdaptivePolicy::default()
        };
        policy.apply_admission(&engine);
    }

    let client = cluster
        .anonymous_client("AUTH_gp")
        .with_retry(RetryPolicy::default());
    client.create_container("meters").unwrap();
    client.put_object("meters", "jan.csv", meter_csv()).unwrap();

    let connector = SwiftConnector::new(client);
    let mut session = Session::new(connector.clone(), 2)
        .with_chunk_size(2048)
        .with_max_task_failures(10);
    if let Some(b) = budget {
        session = session.with_time_budget(b);
    }
    session.register_table(
        "meters",
        "meters",
        None,
        TableFormat::Csv { has_header: true },
        None,
    );
    let outcome = session.sql(QUERY);
    Run { cluster, connector, engine, outcome }
}

/// The sustained overload plan: the object's first replica sits on a slow
/// node, its second replica on a node that is down for the whole run.
fn overload_plan(probe: &SwiftCluster, seed: u64) -> FaultPlan {
    let key = ObjectPath::new("AUTH_gp", "meters", "jan.csv")
        .unwrap()
        .ring_key();
    let ring = probe.ring();
    let ring = ring.read();
    let replicas = ring.lookup(&key);
    let slow_node = ring.device(replicas[0]).node;
    let down_node = ring.device(replicas[1]).node;
    drop(ring);
    FaultPlan::quiet(seed)
        .with_slow_node(slow_node, SLOW_READ)
        .with_down_window(down_node, 0, u64::MAX)
}

#[test]
fn protected_query_beats_its_budget_under_sustained_overload() {
    // Fault-free, unsaturated, unbudgeted reference run for byte identity.
    let reference = run_query(SwiftConfig::default(), false, None);
    let reference_outcome = reference.outcome.unwrap();

    // Ring construction is deterministic for a fixed config, so the
    // reference cluster's ring predicts the overloaded cluster's replicas.
    let plan = overload_plan(&reference.cluster, 0xD16);
    let protected = run_query(
        SwiftConfig {
            fault_plan: Some(plan),
            breaker: Some(BreakerConfig {
                failure_threshold: 2,
                open_for: Duration::from_millis(100),
            }),
            hedge_after: Some(HEDGE_AFTER),
            ..SwiftConfig::default()
        },
        true,
        Some(BUDGET),
    );
    let outcome = protected
        .outcome
        .expect("protected query must complete within its budget");
    assert_eq!(
        outcome.result, reference_outcome.result,
        "degraded-mode results diverge from the fault-free run"
    );

    // The faults actually fired…
    let stats = protected.cluster.fault_stats();
    assert!(stats.slow_node_delays > 0, "slow node never hit: {stats:?}");
    assert!(stats.down_rejections > 0, "down node never hit: {stats:?}");
    assert!(
        protected.engine.admission_sheds() > 0,
        "saturated engine never shed a pushdown request"
    );
    // …and every protection layer did real work.
    assert!(
        protected.cluster.hedged_gets() > 0,
        "no hedge was launched against the slow node"
    );
    assert!(
        protected.cluster.hedge_wins() > 0,
        "no hedge beat the slow first replica"
    );
    assert!(
        protected.cluster.breaker_skips() > 0,
        "the breaker never skipped the dead node"
    );
    assert!(
        protected.connector.pushdown_fallbacks() > 0,
        "no shed pushdown fell back to a plain read"
    );
}

#[test]
fn unprotected_query_violates_the_same_budget() {
    let probe = run_query(SwiftConfig::default(), false, None);
    let plan = overload_plan(&probe.cluster, 0xD17);
    // Same faults, same saturation, same budget — no breaker, no hedging.
    let unprotected = run_query(
        SwiftConfig {
            fault_plan: Some(plan),
            ..SwiftConfig::default()
        },
        true,
        Some(BUDGET),
    );
    let err = unprotected
        .outcome
        .expect_err("sequential replica reads through the slow node must exhaust the budget");
    assert_eq!(err.kind(), "deadline", "{err}");
    assert!(
        unprotected.cluster.fault_stats().slow_node_delays > 0,
        "slow node never hit — the violation proves nothing"
    );
}
