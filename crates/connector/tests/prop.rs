//! Property tests: split planning + ranged pushdown over the fault-injected
//! store deliver each record exactly once — for random record lengths,
//! chunk sizes, and fault seeds. A split whose read breaks mid-stream is
//! retried whole (the scheduler's task-retry model); its partial output is
//! discarded, so exactly-once must hold across retries, not just across
//! clean reads.

use bytes::Bytes;
use proptest::prelude::*;
use scoop_common::{stream, RetryPolicy};
use scoop_compute::connector::StorageConnector;
use scoop_connector::SwiftConnector;
use scoop_csv::split::plan_splits;
use scoop_csv::PushdownSpec;
use scoop_objectstore::middleware::Pipeline;
use scoop_objectstore::{FaultPlan, SwiftCluster, SwiftConfig};
use scoop_storlets::{StorletEngine, StorletMiddleware};
use std::sync::Arc;

/// One single-column record per requested length, every line distinct.
fn build_data(record_lens: &[usize]) -> Bytes {
    let mut out = String::new();
    for (i, len) in record_lens.iter().enumerate() {
        out.push_str(&format!("r{i}-"));
        out.extend(std::iter::repeat_n('x', *len));
        out.push('\n');
    }
    Bytes::from(out)
}

/// A small storlet-enabled chaos cluster holding `data`, plus a connector
/// whose client retries.
fn connector_over(data: Bytes, plan: FaultPlan) -> (Arc<SwiftCluster>, Arc<SwiftConnector>) {
    let cluster = SwiftCluster::new(SwiftConfig {
        object_servers: 3,
        devices_per_server: 1,
        part_power: 4,
        fault_plan: Some(plan),
        ..SwiftConfig::default()
    })
    .unwrap();
    let engine = Arc::new(StorletEngine::with_builtin_filters());
    let mut obj = Pipeline::new();
    obj.push(Arc::new(StorletMiddleware::new(engine)));
    cluster.set_object_pipeline(obj);
    let client = cluster
        .anonymous_client("AUTH_p")
        .with_retry(RetryPolicy::default());
    client.create_container("c").unwrap();
    client.put_object("c", "o.csv", data).unwrap();
    (cluster, SwiftConnector::new(client))
}

/// Read one split with whole-split retry, like the compute scheduler: a
/// broken filtered stream discards its partial output and re-runs.
fn read_split_retrying(
    conn: &SwiftConnector,
    s: u64,
    e: u64,
    spec: &PushdownSpec,
    schema: &[String],
) -> Bytes {
    let mut attempts = 0;
    loop {
        let out = conn
            .read_pushdown("c", "o.csv", s, Some(e), spec, schema)
            .and_then(stream::collect);
        match out {
            Ok(bytes) => return bytes,
            // The consecutive-fault cap guarantees a clean op every few
            // rolls, so a small budget always converges.
            Err(err) if attempts < 8 => {
                attempts += 1;
                assert!(err.is_retryable(), "non-retryable under faults: {err}");
            }
            Err(err) => panic!("split [{s},{e}) failed beyond budget: {err}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// plan_splits + ranged pushdown over a faulty store reassemble the
    /// object exactly: no record lost, duplicated, or reordered.
    #[test]
    fn faulted_ranged_pushdown_yields_each_record_exactly_once(
        record_lens in proptest::collection::vec(0usize..60, 1..32),
        chunk in 1u64..180,
        seed in 0u64..1_000,
    ) {
        let data = build_data(&record_lens);
        let plan = FaultPlan::quiet(seed)
            .with_error_rate(0.2)
            .with_truncate_rate(0.2);
        let (_cluster, conn) = connector_over(data.clone(), plan);
        let spec = PushdownSpec {
            columns: Some(vec!["rec".into()]),
            predicate: None,
            has_header: false,
        };
        let schema = vec!["rec".to_string()];
        let mut combined = Vec::new();
        for (s, e) in plan_splits(data.len() as u64, chunk) {
            combined.extend_from_slice(&read_split_retrying(&conn, s, e, &spec, &schema));
        }
        prop_assert_eq!(Bytes::from(combined), data);
    }

    /// Plain (no-pushdown) reads resume mid-stream and still deliver the
    /// object byte-identically under faults.
    #[test]
    fn faulted_plain_read_is_byte_identical(
        record_lens in proptest::collection::vec(0usize..60, 1..32),
        start_frac in 0u64..100,
        seed in 0u64..1_000,
    ) {
        let data = build_data(&record_lens);
        let plan = FaultPlan::quiet(seed)
            .with_error_rate(0.2)
            .with_truncate_rate(0.2);
        let (_cluster, conn) = connector_over(data.clone(), plan);
        let start = (data.len() as u64) * start_frac / 100;
        let body = stream::collect(conn.read_from("c", "o.csv", start).unwrap()).unwrap();
        prop_assert_eq!(body, data.slice(start as usize..));
    }
}

/// Deterministic companion: with fixed seeds the properties above must
/// actually exercise the fault machinery, not pass vacuously.
#[test]
fn property_runs_do_inject_faults() {
    let data = build_data(&[5usize; 64]);
    let plan = FaultPlan::quiet(7)
        .with_error_rate(0.3)
        .with_truncate_rate(0.3);
    let (cluster, conn) = connector_over(data.clone(), plan);
    let spec = PushdownSpec {
        columns: Some(vec!["rec".into()]),
        predicate: None,
        has_header: false,
    };
    let schema = vec!["rec".to_string()];
    let mut combined = Vec::new();
    for (s, e) in plan_splits(data.len() as u64, 40) {
        combined.extend_from_slice(&read_split_retrying(&conn, s, e, &spec, &schema));
    }
    assert_eq!(Bytes::from(combined), data);
    let stats = cluster.fault_stats();
    assert!(stats.errors > 0, "no transient errors fired: {stats:?}");
    assert!(stats.truncations > 0, "no truncations fired: {stats:?}");
    assert!(
        cluster.replica_failovers() + conn.retries() > 0,
        "faults fired but nothing retried"
    );
}
