//! The TCP data plane end to end: a pushdown query whose every storage hop
//! rides real loopback sockets must behave exactly like the in-process
//! transport — same rows, and one `x-scoop-trace` trace whose spans cover
//! client → proxy → objserver → storlet, proving the trace header crossed
//! the wire on every hop instead of being re-minted server-side.

use bytes::Bytes;
use scoop_common::{telemetry, RetryPolicy};
use scoop_compute::{QueryOutcome, Session, TableFormat};
use scoop_connector::SwiftConnector;
use scoop_objectstore::middleware::Pipeline;
use scoop_objectstore::{SwiftClient, SwiftCluster, SwiftConfig};
use scoop_storlets::{PolicyStore, StorletEngine, StorletMiddleware};
use std::collections::BTreeSet;
use std::sync::Arc;

/// ~19 KB of GridPocket-style meter readings — several storlet splits.
fn meter_csv() -> Bytes {
    let mut out = String::from("vid,date,index,city\n");
    for i in 0..400 {
        out.push_str(&format!(
            "m{:02},2015-{:02}-{:02} 10:0{}:00,{}.{},{}\n",
            i % 20,
            i % 12 + 1,
            i % 28 + 1,
            i % 10,
            i,
            i % 100,
            ["Rotterdam", "Paris", "Utrecht", "Delft"][i % 4],
        ));
    }
    Bytes::from(out)
}

const QUERY: &str = "SELECT vid, sum(index) as total, count(*) as n \
    FROM meters WHERE date LIKE '2015-01%' AND city LIKE 'Rotterdam' \
    GROUP BY vid ORDER BY vid";

/// A storlet-enabled cluster with the fixture loaded.
fn storlet_cluster() -> Arc<SwiftCluster> {
    let cluster = SwiftCluster::new(SwiftConfig::default()).unwrap();
    let engine = Arc::new(StorletEngine::with_builtin_filters());
    let mut obj = Pipeline::new();
    obj.push(Arc::new(StorletMiddleware::new(engine.clone())));
    cluster.set_object_pipeline(obj);
    let mut proxy = Pipeline::new();
    proxy.push(Arc::new(StorletMiddleware::with_policy(
        engine,
        Arc::new(PolicyStore::new()),
    )));
    cluster.set_proxy_pipeline(proxy);
    cluster
}

/// Run the pushdown query through `client` and return the outcome.
fn run_query(client: SwiftClient) -> QueryOutcome {
    client.create_container("meters").unwrap();
    client.put_object("meters", "jan.csv", meter_csv()).unwrap();
    let connector = SwiftConnector::new(client);
    let session = Session::new(connector, 2)
        .with_chunk_size(2048)
        .with_pushdown(true);
    session.register_table(
        "meters",
        "meters",
        None,
        TableFormat::Csv { has_header: true },
        None,
    );
    session.sql(QUERY).unwrap()
}

#[test]
fn tcp_pushdown_query_yields_one_trace_spanning_every_layer() {
    let cluster = storlet_cluster();
    let client = cluster
        .anonymous_client("AUTH_gp")
        .with_retry(RetryPolicy::default())
        .over_tcp()
        .unwrap();
    assert!(client.is_tcp(), "query must ride real sockets");
    let pool = client.transport_pool().unwrap().clone();

    let outcome = run_query(client);
    assert!(!outcome.result.rows.is_empty(), "query must produce rows");
    assert!(!outcome.metrics.trace.is_empty(), "query must mint a trace ID");
    assert!(
        pool.snapshot().dials > 0,
        "the connector's requests must actually have dialed the TCP plane"
    );

    // One trace, spanning the whole path: the ID was stamped into the
    // x-scoop-trace header client-side, crossed every socket hop, and each
    // server layer recorded its span against that same ID.
    let spans = telemetry::trace_spans(&outcome.metrics.trace);
    let layers: BTreeSet<&str> = spans.iter().map(|s| s.layer).collect();
    for layer in ["session", "connector", "client", "proxy", "objserver", "storlet"] {
        assert!(
            layers.contains(layer),
            "trace {} is missing a {layer} span over TCP; got layers {layers:?}",
            outcome.metrics.trace
        );
    }
}

#[test]
fn tcp_and_in_process_transports_agree_on_query_results() {
    let reference = {
        let cluster = storlet_cluster();
        run_query(cluster.anonymous_client("AUTH_gp").with_retry(RetryPolicy::default()))
    };
    let over_tcp = {
        let cluster = storlet_cluster();
        let client = cluster
            .anonymous_client("AUTH_gp")
            .with_retry(RetryPolicy::default())
            .over_tcp()
            .unwrap();
        run_query(client)
    };
    assert_eq!(
        reference.result.rows, over_tcp.result.rows,
        "transport must not change query results"
    );
    assert!(
        over_tcp.metrics.bytes_transferred > 0,
        "pushdown over TCP must still account transferred bytes"
    );
}
