//! Property-based tests for the CSV engine invariants called out in DESIGN.md:
//! round-trips, split completeness, chunking invariance and LIKE semantics.

use proptest::prelude::*;
use scoop_csv::pushdown::{like_match, PushdownSpec};
use scoop_csv::record::{parse_fields, split_records, write_record, RecordSplitter};
use scoop_csv::split::{aligned_slice, plan_splits};
use scoop_csv::{Predicate, Value};

/// Arbitrary field content, including the characters that require quoting.
fn field_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9 ,\"\n\r%();=_-]{0,12}").expect("regex")
}

fn rows_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    proptest::collection::vec(
        proptest::collection::vec(field_strategy(), 1..6),
        0..30,
    )
}

/// Newline-free line content for split tests (the split contract, like
/// Hadoop's, assumes no embedded newlines).
fn lines_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        proptest::string::string_regex("[a-z0-9,]{0,20}").expect("regex"),
        0..40,
    )
}

proptest! {
    /// write∘parse = id for arbitrary records, including quoting.
    #[test]
    fn csv_record_roundtrip(rows in rows_strategy()) {
        let mut buf = Vec::new();
        for row in &rows {
            let refs: Vec<&str> = row.iter().map(String::as_str).collect();
            write_record(&mut buf, &refs);
        }
        let records = split_records(&buf);
        prop_assert_eq!(records.len(), rows.len());
        for (rec, row) in records.iter().zip(&rows) {
            let parsed: Vec<String> =
                parse_fields(rec).into_iter().map(|c| c.into_owned()).collect();
            prop_assert_eq!(&parsed, row);
        }
    }

    /// The record splitter is invariant to chunk boundaries.
    #[test]
    fn splitter_chunking_invariant(
        rows in rows_strategy(),
        chunk in 1usize..64,
    ) {
        let mut buf = Vec::new();
        for row in &rows {
            let refs: Vec<&str> = row.iter().map(String::as_str).collect();
            write_record(&mut buf, &refs);
        }
        let whole = split_records(&buf);
        let mut chunked = Vec::new();
        let mut sp = RecordSplitter::new();
        for c in buf.chunks(chunk) {
            sp.push(c, |r| chunked.push(r.to_vec())).unwrap();
        }
        sp.finish(|r| chunked.push(r.to_vec()));
        prop_assert_eq!(chunked, whole);
    }

    /// Record-aligned splits partition the object: every record appears in
    /// exactly one split, in order, for any chunk size.
    #[test]
    fn aligned_splits_cover_each_record_once(
        lines in lines_strategy(),
        chunk in 1u64..64,
        trailing_newline in any::<bool>(),
    ) {
        let mut data = lines.join("\n");
        if trailing_newline && !data.is_empty() {
            data.push('\n');
        }
        let bytes = data.as_bytes();
        let expected: Vec<Vec<u8>> = split_records(bytes);
        let mut got = Vec::new();
        for (s, e) in plan_splits(bytes.len() as u64, chunk) {
            got.extend(split_records(aligned_slice(bytes, s, e)));
        }
        prop_assert_eq!(got, expected);
    }

    /// The pushdown header encoding round-trips arbitrary column names and
    /// string literals.
    #[test]
    fn pushdown_header_roundtrip(
        col in field_strategy().prop_filter("non-empty", |s| !s.is_empty()),
        lit in field_strategy(),
        iv in any::<i64>(),
        has_header in any::<bool>(),
        project in any::<bool>(),
    ) {
        let pred = Predicate::And(
            Box::new(Predicate::Like(col.clone(), lit.clone())),
            Box::new(Predicate::Le(col.clone(), Value::Int(iv))),
        );
        let spec = PushdownSpec {
            columns: if project { Some(vec![col.clone(), "other".into()]) } else { None },
            predicate: Some(pred),
            has_header,
        };
        let back = PushdownSpec::from_header(&spec.to_header()).unwrap();
        prop_assert_eq!(back, spec);
    }

    /// LIKE with no wildcards is equality; '%'-only matches everything.
    #[test]
    fn like_degenerate_cases(s in "[a-zA-Z0-9]{0,12}", t in "[a-zA-Z0-9]{0,12}") {
        prop_assert_eq!(like_match(&s, &t), s == t);
        prop_assert!(like_match("%", &t));
        let prefixed = format!("{s}%");
        prop_assert_eq!(like_match(&prefixed, &t), t.starts_with(&s));
        let suffixed = format!("%{s}");
        prop_assert_eq!(like_match(&suffixed, &t), t.ends_with(&s));
        let contains = format!("%{s}%");
        prop_assert_eq!(like_match(&contains, &t), t.contains(&s));
    }

    /// Typed value total order is antisymmetric and transitive on samples.
    #[test]
    fn value_total_order_laws(
        a in any::<i64>(), b in any::<f64>(), s in "[a-z]{0,6}",
    ) {
        let vals = [Value::Null, Value::Int(a), Value::Float(b), Value::Str(s.into())];
        for x in &vals {
            for y in &vals {
                prop_assert_eq!(x.total_cmp(y), y.total_cmp(x).reverse());
                for z in &vals {
                    if x.total_cmp(y) != std::cmp::Ordering::Greater
                        && y.total_cmp(z) != std::cmp::Ordering::Greater
                    {
                        prop_assert_ne!(x.total_cmp(z), std::cmp::Ordering::Greater);
                    }
                }
            }
        }
    }
}
