//! Byte-level CSV record machinery: incremental record splitting (quote-aware)
//! and RFC-4180 field parsing.
//!
//! This is the hot path of the whole system: the CSV storlet runs these
//! routines at storage nodes over every byte of every object. The splitter
//! scans with the SWAR primitives in [`crate::scan`] (8 bytes per step
//! outside quoted regions) and emits **borrowed slices of the input chunk**
//! whenever a record is fully contained in it — bytes are only copied into
//! the internal buffer for records that straddle a chunk boundary. Field
//! parsing lives in [`crate::view`] and borrows from the record wherever
//! possible.
//!
//! ## Bounded buffering
//!
//! A corrupt object (an opening quote that never closes, or a single record
//! with no newline) used to make the splitter buffer the entire remaining
//! stream. [`RecordSplitter::push`] now enforces a configurable
//! max-record-size cap ([`DEFAULT_MAX_RECORD_SIZE`]) on the *buffered*
//! partial record and surfaces [`scoop_common::ScoopError::Csv`] instead of
//! growing without bound. The error is sticky: a capped splitter stays
//! failed.

use crate::scan;
use scoop_common::{Result, ScoopError};
use std::borrow::Cow;

/// Default cap on one buffered (chunk-straddling) record: 16 MiB. Far above
/// any sane CSV record, far below "the rest of a multi-GB object".
pub const DEFAULT_MAX_RECORD_SIZE: usize = 16 * 1024 * 1024;

/// Incremental, quote-aware record splitter.
///
/// Feed arbitrary chunks with [`RecordSplitter::push`]; complete records
/// (without their line terminator) are handed to the callback. Newlines inside
/// double-quoted fields do not split records. Call
/// [`RecordSplitter::finish`] to flush a trailing record that lacks a final
/// newline.
#[derive(Debug)]
pub struct RecordSplitter {
    /// The current chunk-straddling partial record (empty at record
    /// boundaries).
    buf: Vec<u8>,
    in_quotes: bool,
    max_record: usize,
    /// Sticky failure: the cap fired and the splitter is unusable.
    overflowed: bool,
    /// Reusable comma-offset table for [`RecordSplitter::push_rows`].
    comma_buf: Vec<u32>,
}

impl Default for RecordSplitter {
    fn default() -> Self {
        Self::new()
    }
}

impl RecordSplitter {
    /// Create a splitter with the default record-size cap.
    pub fn new() -> Self {
        Self::with_max_record_size(DEFAULT_MAX_RECORD_SIZE)
    }

    /// Create a splitter that errors once a single buffered record exceeds
    /// `max_record` bytes (use [`usize::MAX`] to disable the cap).
    pub fn with_max_record_size(max_record: usize) -> Self {
        RecordSplitter {
            buf: Vec::new(),
            in_quotes: false,
            max_record,
            overflowed: false,
            comma_buf: Vec::new(),
        }
    }

    /// Feed a chunk, invoking `emit` once per completed record.
    ///
    /// Records fully contained in `chunk` are emitted as borrowed slices of
    /// `chunk` (zero-copy); only a trailing partial record is buffered.
    pub fn push(&mut self, chunk: &[u8], mut emit: impl FnMut(&[u8])) -> Result<()> {
        if self.overflowed {
            return Err(self.cap_error());
        }
        let mut data = chunk;
        if !self.buf.is_empty() {
            // Finish the straddling record: find the first record boundary
            // in `data` under the carried quote state.
            match find_boundary(data, self.in_quotes) {
                Boundary::Newline(nl) => {
                    self.buf.extend_from_slice(&data[..nl]);
                    self.check_cap()?;
                    let mut end = self.buf.len();
                    if end > 0 && self.buf[end - 1] == b'\r' {
                        end -= 1;
                    }
                    // Blank lines are not records (Spark-CSV semantics).
                    if end > 0 {
                        emit(&self.buf[..end]);
                    }
                    self.buf.clear();
                    self.in_quotes = false;
                    data = &data[nl + 1..];
                }
                Boundary::None { in_quotes } => {
                    self.buf.extend_from_slice(data);
                    self.in_quotes = in_quotes;
                    return self.check_cap();
                }
            }
        }
        // Zero-copy scan over the rest of the chunk. `buf` is empty, so we
        // are at a record boundary and therefore outside any quoted region.
        debug_assert!(!self.in_quotes);
        let mut record_start = 0usize;
        let mut pos = 0usize;
        let mut in_quotes = false;
        while pos < data.len() {
            if in_quotes {
                match scan::find_byte(&data[pos..], b'"') {
                    // A doubled quote inside a quoted field toggles twice —
                    // the net quote state is still correct for splitting.
                    Some(q) => {
                        pos += q + 1;
                        in_quotes = false;
                    }
                    None => pos = data.len(),
                }
            } else {
                match scan::find_byte2(&data[pos..], b'\n', b'"') {
                    None => pos = data.len(),
                    Some(i) => {
                        let at = pos + i;
                        if data[at] == b'"' {
                            in_quotes = true;
                        } else {
                            let mut end = at;
                            if end > record_start && data[end - 1] == b'\r' {
                                end -= 1;
                            }
                            if end > record_start {
                                emit(&data[record_start..end]);
                            }
                            record_start = at + 1;
                        }
                        pos = at + 1;
                    }
                }
            }
        }
        self.buf.extend_from_slice(&data[record_start..]);
        self.in_quotes = in_quotes;
        self.check_cap()
    }

    /// Feed a chunk through the fused record-and-field scanner.
    ///
    /// One SWAR sweep computes the newline, comma and quote lanes of each
    /// 8-byte word together, so the chunk is read once — not once for record
    /// splitting plus once per record for field splitting. Quote-free records
    /// fully contained in `chunk` reach `on_row` with `Some(commas)` — the
    /// record-relative byte offsets of their commas, i.e. the field
    /// boundaries; everything else — records containing a quote anywhere, and
    /// records that straddle a chunk boundary — arrives with `None` and needs
    /// the full quote-aware field parse. Record boundary semantics (quoted
    /// newlines, CRLF trimming, blank-line skipping, the size cap) are
    /// identical to [`RecordSplitter::push`].
    pub fn push_rows(
        &mut self,
        chunk: &[u8],
        mut on_row: impl FnMut(&[u8], Option<&[u32]>),
    ) -> Result<()> {
        if self.overflowed {
            return Err(self.cap_error());
        }
        let mut data = chunk;
        if !self.buf.is_empty() {
            // Finish the straddling record under the carried quote state; it
            // lives in `buf`, so it takes the messy (re-parsing) path.
            match find_boundary(data, self.in_quotes) {
                Boundary::Newline(nl) => {
                    self.buf.extend_from_slice(&data[..nl]);
                    self.check_cap()?;
                    let mut end = self.buf.len();
                    if end > 0 && self.buf[end - 1] == b'\r' {
                        end -= 1;
                    }
                    if end > 0 {
                        on_row(&self.buf[..end], None);
                    }
                    self.buf.clear();
                    self.in_quotes = false;
                    data = &data[nl + 1..];
                }
                Boundary::None { in_quotes } => {
                    self.buf.extend_from_slice(data);
                    self.in_quotes = in_quotes;
                    return self.check_cap();
                }
            }
        }
        debug_assert!(!self.in_quotes);
        let mut commas = std::mem::take(&mut self.comma_buf);
        commas.clear();
        let mut record_start = 0usize;
        let mut pos = 0usize;
        while pos < data.len() {
            let word = if data.len() - pos >= 8 {
                scan::load_word(&data[pos..pos + 8])
            } else {
                // Zero-pad the tail word: 0x00 is none of the three needles,
                // so the phantom lanes can never match.
                let mut w = 0u64;
                for (k, &c) in data[pos..].iter().enumerate() {
                    w |= (c as u64) << (8 * k);
                }
                w
            };
            // `u32` comma offsets can only overflow on a >4 GiB record, which
            // the same fallback handles (and the cap then rejects).
            if scan::match_lanes(word, b'"') != 0
                || pos - record_start > (u32::MAX as usize) - 8
            {
                // Rare: a quote somewhere in this word. Hand the current
                // record to the quote-aware boundary scanner, route it messy,
                // and resume the fused scan right after it. The quote may
                // belong to a *later* record in the same word — then this
                // record goes messy needlessly, which is slower but correct.
                commas.clear();
                match find_boundary(&data[record_start..], false) {
                    Boundary::Newline(rel) => {
                        let at = record_start + rel;
                        let mut end = at;
                        if end > record_start && data[end - 1] == b'\r' {
                            end -= 1;
                        }
                        if end > record_start {
                            on_row(&data[record_start..end], None);
                        }
                        record_start = at + 1;
                        pos = record_start;
                        continue;
                    }
                    Boundary::None { in_quotes } => {
                        // Partial record runs to the end of the chunk.
                        self.buf.extend_from_slice(&data[record_start..]);
                        self.in_quotes = in_quotes;
                        self.comma_buf = commas;
                        return self.check_cap();
                    }
                }
            }
            let nl = scan::match_lanes(word, b'\n');
            let mut m = nl | scan::match_lanes(word, b',');
            while m != 0 {
                let at = pos + scan::lane_index(m);
                let lane_bit = m & m.wrapping_neg();
                if nl & lane_bit != 0 {
                    let mut end = at;
                    if end > record_start && data[end - 1] == b'\r' {
                        end -= 1;
                    }
                    if end > record_start {
                        on_row(&data[record_start..end], Some(&commas));
                    }
                    commas.clear();
                    record_start = at + 1;
                } else {
                    commas.push((at - record_start) as u32);
                }
                m &= m - 1;
            }
            pos += 8;
        }
        // Trailing partial record: buffer it; its commas are recomputed when
        // it completes (via the messy path), so the collected ones drop.
        self.buf.extend_from_slice(&data[record_start..]);
        self.comma_buf = commas;
        self.check_cap()
    }

    /// Flush the final record (if any bytes remain) and consume the splitter.
    pub fn finish(mut self, mut emit: impl FnMut(&[u8])) {
        if self.overflowed {
            return;
        }
        if !self.buf.is_empty() {
            let mut end = self.buf.len();
            // A trailing CR is a line-terminator fragment only *outside* a
            // quoted region; inside an open quote it is record content.
            if !self.in_quotes && self.buf[end - 1] == b'\r' {
                end -= 1;
            }
            if end > 0 {
                emit(&self.buf[..end]);
            }
            self.buf.clear();
        }
    }

    /// Bytes currently buffered awaiting a record terminator.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    fn check_cap(&mut self) -> Result<()> {
        if self.buf.len() > self.max_record {
            self.overflowed = true;
            // Release the hoarded bytes immediately — the point of the cap.
            self.buf = Vec::new();
            return Err(self.cap_error());
        }
        Ok(())
    }

    fn cap_error(&self) -> ScoopError {
        ScoopError::Csv(format!(
            "CSV record exceeds the {}-byte record-size cap \
             (unterminated quote or missing newline in the object?)",
            self.max_record
        ))
    }
}

/// Where the first record boundary of a slice lies, given the quote state
/// carried in from previous chunks.
enum Boundary {
    /// Index of the first `\n` outside quotes.
    Newline(usize),
    /// No boundary in the slice; the quote state after consuming all of it.
    None { in_quotes: bool },
}

fn find_boundary(data: &[u8], mut in_quotes: bool) -> Boundary {
    let mut pos = 0usize;
    while pos < data.len() {
        if in_quotes {
            match scan::find_byte(&data[pos..], b'"') {
                Some(q) => {
                    pos += q + 1;
                    in_quotes = false;
                }
                None => return Boundary::None { in_quotes: true },
            }
        } else {
            match scan::find_byte2(&data[pos..], b'\n', b'"') {
                None => return Boundary::None { in_quotes: false },
                Some(i) => {
                    let at = pos + i;
                    if data[at] == b'"' {
                        in_quotes = true;
                        pos = at + 1;
                    } else {
                        return Boundary::Newline(at);
                    }
                }
            }
        }
    }
    Boundary::None { in_quotes }
}

/// Split a whole in-memory buffer into records (helper over the splitter).
pub fn split_records(data: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut sp = RecordSplitter::with_max_record_size(usize::MAX);
    // With the cap disabled push cannot fail.
    let _infallible = sp.push(data, |r| out.push(r.to_vec()));
    sp.finish(|r| out.push(r.to_vec()));
    out
}

/// Parse one record into fields.
///
/// Unquoted fields are borrowed; quoted fields are unescaped into owned
/// strings (doubled quotes collapse, and bytes between a closing quote and
/// the next comma are preserved by concatenation rather than silently
/// dropped). Invalid UTF-8 is replaced lossily — object stores accept
/// arbitrary bytes, but SQL operates on text.
pub fn parse_fields(record: &[u8]) -> Vec<Cow<'_, str>> {
    let mut buf = crate::view::FieldBuf::default();
    let view = buf.parse(record);
    let n = view.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        match view.text(i) {
            Some(t) => out.push(t),
            None => break,
        }
    }
    out
}

/// True when the raw value needs quoting when written back out.
pub fn needs_quoting(field: &str) -> bool {
    scan::find_byte3(field.as_bytes(), b',', b'"', b'\n').is_some()
        || scan::find_byte(field.as_bytes(), b'\r').is_some()
}

/// Append a single field to `out`, quoting/escaping as required.
pub fn write_field(out: &mut Vec<u8>, field: &str) {
    if needs_quoting(field) {
        out.push(b'"');
        for b in field.bytes() {
            if b == b'"' {
                out.push(b'"');
            }
            out.push(b);
        }
        out.push(b'"');
    } else {
        out.extend_from_slice(field.as_bytes());
    }
}

/// Serialize string fields into one CSV record terminated by `\n`.
///
/// A record consisting of a single empty field is written as `""` — a bare
/// empty line would be indistinguishable from a blank line, which readers
/// (like Spark-CSV) skip.
pub fn write_record(out: &mut Vec<u8>, fields: &[&str]) {
    if fields.len() == 1 && fields[0].is_empty() {
        out.extend_from_slice(b"\"\"\n");
        return;
    }
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(b',');
        }
        write_field(out, f);
    }
    out.push(b'\n');
}

/// The original per-byte splitter and field parser, kept verbatim (modulo the
/// three correctness fixes this module now shares: quote-aware trailing-CR
/// handling in `finish`, and stray-byte concatenation in field parsing) as
/// the reference implementation for the differential property suite. Never
/// compiled into release binaries.
#[cfg(test)]
pub(crate) mod reference {
    use std::borrow::Cow;

    #[derive(Debug, Default)]
    pub struct RecordSplitter {
        buf: Vec<u8>,
        scan: usize,
        in_quotes: bool,
    }

    impl RecordSplitter {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn push(&mut self, chunk: &[u8], mut emit: impl FnMut(&[u8])) {
            self.buf.extend_from_slice(chunk);
            let mut record_start = 0usize;
            let mut i = self.scan;
            while i < self.buf.len() {
                let b = self.buf[i];
                if b == b'"' {
                    self.in_quotes = !self.in_quotes;
                } else if b == b'\n' && !self.in_quotes {
                    let mut end = i;
                    if end > record_start && self.buf[end - 1] == b'\r' {
                        end -= 1;
                    }
                    if end > record_start {
                        emit(&self.buf[record_start..end]);
                    }
                    record_start = i + 1;
                }
                i += 1;
            }
            if record_start > 0 {
                self.buf.drain(..record_start);
            }
            self.scan = self.buf.len();
        }

        pub fn finish(mut self, mut emit: impl FnMut(&[u8])) {
            if !self.buf.is_empty() {
                let mut end = self.buf.len();
                if !self.in_quotes && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                if end > 0 {
                    emit(&self.buf[..end]);
                }
                self.buf.clear();
            }
        }
    }

    pub fn split_records(data: &[u8]) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let mut sp = RecordSplitter::new();
        sp.push(data, |r| out.push(r.to_vec()));
        sp.finish(|r| out.push(r.to_vec()));
        out
    }

    pub fn parse_fields(record: &[u8]) -> Vec<Cow<'_, str>> {
        let mut fields = Vec::new();
        if record.is_empty() {
            return fields;
        }
        let mut i = 0usize;
        loop {
            if i < record.len() && record[i] == b'"' {
                // Quoted field.
                let mut owned = Vec::new();
                i += 1;
                loop {
                    match record.get(i) {
                        Some(b'"') if record.get(i + 1) == Some(&b'"') => {
                            owned.push(b'"');
                            i += 2;
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            owned.push(b);
                            i += 1;
                        }
                        // Unterminated quote: treat remainder as the field.
                        None => break,
                    }
                }
                // Preserve stray bytes between the closing quote and the
                // next comma (RFC-4180-tolerant concatenation).
                while i < record.len() && record[i] != b',' {
                    owned.push(record[i]);
                    i += 1;
                }
                fields.push(Cow::Owned(String::from_utf8_lossy(&owned).into_owned()));
            } else {
                let start = i;
                while i < record.len() && record[i] != b',' {
                    i += 1;
                }
                fields.push(String::from_utf8_lossy(&record[start..i]));
            }
            if i >= record.len() {
                break;
            }
            i += 1; // consume the comma
            if i == record.len() {
                // Trailing comma → trailing empty field.
                fields.push(Cow::Borrowed(""));
                break;
            }
        }
        fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(data: &[u8]) -> Vec<String> {
        split_records(data)
            .into_iter()
            .map(|r| String::from_utf8(r).unwrap())
            .collect()
    }

    fn fields(rec: &str) -> Vec<String> {
        parse_fields(rec.as_bytes())
            .into_iter()
            .map(|c| c.into_owned())
            .collect()
    }

    #[test]
    fn splits_simple_lines() {
        assert_eq!(records(b"a\nb\nc\n"), vec!["a", "b", "c"]);
        // Missing trailing newline still yields the last record.
        assert_eq!(records(b"a\nb"), vec!["a", "b"]);
        assert_eq!(records(b""), Vec::<String>::new());
    }

    #[test]
    fn handles_crlf() {
        assert_eq!(records(b"a\r\nb\r\n"), vec!["a", "b"]);
        assert_eq!(records(b"a\r"), vec!["a"]);
    }

    #[test]
    fn quoted_newlines_do_not_split() {
        assert_eq!(
            records(b"\"a\nstill a\",x\nb,y\n"),
            vec!["\"a\nstill a\",x", "b,y"]
        );
    }

    #[test]
    fn trailing_cr_inside_open_quote_is_content() {
        // `"a<CR>` at EOF: the CR is *inside* the unterminated quote, so the
        // flushed record must keep it (the old splitter stripped it).
        assert_eq!(records(b"\"a\r"), vec!["\"a\r"]);
        // Outside quotes the CR is still a terminator fragment.
        assert_eq!(records(b"\"a\"\r"), vec!["\"a\""]);
    }

    #[test]
    fn chunk_boundaries_are_invisible() {
        let data = b"alpha,1\n\"be,ta\",2\r\n\"ga\"\"mma\",3\nlast,4";
        let whole = records(data);
        for chunk in [1usize, 2, 3, 5, 7, 100] {
            let mut out = Vec::new();
            let mut sp = RecordSplitter::new();
            for c in data.chunks(chunk) {
                sp.push(c, |r| out.push(String::from_utf8(r.to_vec()).unwrap()))
                    .unwrap();
            }
            sp.finish(|r| out.push(String::from_utf8(r.to_vec()).unwrap()));
            assert_eq!(out, whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn record_size_cap_errors_instead_of_buffering() {
        // An unterminated quote makes everything after it one giant pending
        // record; the cap must fire instead of buffering the whole stream.
        let mut sp = RecordSplitter::with_max_record_size(64);
        sp.push(b"ok,1\n\"never closed ", |_| {}).unwrap();
        let mut err = None;
        for _ in 0..100 {
            if let Err(e) = sp.push(&[b'x'; 32], |_| panic!("no record can complete")) {
                err = Some(e);
                break;
            }
        }
        let err = err.expect("cap must fire");
        assert!(matches!(err, ScoopError::Csv(_)), "{err:?}");
        assert!(err.to_string().contains("record-size cap"), "{err}");
        // Sticky: further pushes keep failing, buffered bytes are released.
        assert!(sp.push(b"a\n", |_| {}).is_err());
        assert_eq!(sp.pending(), 0);
    }

    #[test]
    fn cap_also_guards_missing_newlines() {
        let mut sp = RecordSplitter::with_max_record_size(16);
        assert!(sp.push(&[b'x'; 64], |_| {}).is_err());
    }

    #[test]
    fn parses_plain_fields() {
        assert_eq!(fields("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(fields("a,,c"), vec!["a", "", "c"]);
        assert_eq!(fields("a,b,"), vec!["a", "b", ""]);
        assert_eq!(fields(""), Vec::<String>::new());
        assert_eq!(fields("solo"), vec!["solo"]);
    }

    #[test]
    fn parses_quoted_fields() {
        assert_eq!(fields("\"a,b\",c"), vec!["a,b", "c"]);
        assert_eq!(fields("\"he said \"\"hi\"\"\",x"), vec!["he said \"hi\"", "x"]);
        assert_eq!(fields("\"multi\nline\",y"), vec!["multi\nline", "y"]);
        // Unterminated quote tolerated.
        assert_eq!(fields("\"open"), vec!["open"]);
    }

    #[test]
    fn stray_bytes_after_closing_quote_are_preserved() {
        // RFC-4180-tolerant concatenation — the old parser silently ate
        // `tail` here.
        assert_eq!(fields("\"a\"tail,x"), vec!["atail", "x"]);
        assert_eq!(fields("\"a\"\"b\"z"), vec!["a\"bz"]);
        assert_eq!(fields("x,\"q\" ,y"), vec!["x", "q ", "y"]);
    }

    #[test]
    fn write_roundtrip() {
        let cases: Vec<Vec<&str>> = vec![
            vec!["a", "b"],
            vec!["with,comma", "with\"quote", "with\nnewline"],
            vec!["", "", ""],
            vec!["plain"],
        ];
        for case in cases {
            let mut buf = Vec::new();
            write_record(&mut buf, &case);
            let recs = split_records(&buf);
            assert_eq!(recs.len(), 1);
            assert_eq!(fields(std::str::from_utf8(&recs[0]).unwrap()), case);
        }
    }

    /// Run data through `push_rows` in `chunk`-byte steps, returning every
    /// emitted record plus, for clean ones, the reported comma offsets.
    fn fused_rows(data: &[u8], chunk: usize) -> Vec<(Vec<u8>, Option<Vec<u32>>)> {
        let mut out = Vec::new();
        let mut sp = RecordSplitter::new();
        for c in data.chunks(chunk.max(1)) {
            sp.push_rows(c, |r, commas| {
                out.push((r.to_vec(), commas.map(|c| c.to_vec())));
            })
            .unwrap();
        }
        sp.finish(|r| out.push((r.to_vec(), None)));
        out
    }

    #[test]
    fn push_rows_emits_the_same_records_as_push() {
        let cases: &[&[u8]] = &[
            b"a,b,c\nd,e,f\n",
            b"a,b\nc,d",
            b"\r\n\n\r\n",
            b"a\r\nb\r\n",
            b"\"q,in\",x\nplain,y\n",
            b"\"multi\nline\",1\nz,2\r\n",
            b"one_long_record_with_no_newline_at_all,spanning,words",
            b"short\n\"a\"\"b\",c\ntrailing,comma,\n",
            b"\"unterminated, never closes\nstill inside",
            b"x\ny\"z,w\nplain,tail\n",
        ];
        for data in cases {
            for chunk in [1usize, 2, 3, 5, 7, 8, 9, 64] {
                let fused: Vec<Vec<u8>> =
                    fused_rows(data, chunk).into_iter().map(|(r, _)| r).collect();
                assert_eq!(
                    fused,
                    split_records(data),
                    "record divergence on {:?} chunk={chunk}",
                    String::from_utf8_lossy(data)
                );
            }
        }
    }

    #[test]
    fn push_rows_comma_offsets_are_exact() {
        let rows = fused_rows(b"a,bb,,ccc\nno_commas\n1,2\n", 64);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], (b"a,bb,,ccc".to_vec(), Some(vec![1, 4, 5])));
        assert_eq!(rows[1], (b"no_commas".to_vec(), Some(vec![])));
        assert_eq!(rows[2], (b"1,2".to_vec(), Some(vec![1])));
        // Straddling records lose their offsets (messy path), clean in-chunk
        // records keep them; a trailing CR is trimmed before the offsets are
        // reported, so offsets always index into the emitted record.
        let rows = fused_rows(b"aa,bb\ncc,dd\r\n", 8);
        assert_eq!(rows[0], (b"aa,bb".to_vec(), Some(vec![2])));
        assert_eq!(rows[1].0, b"cc,dd".to_vec());
        // Quoted records never report offsets.
        for (r, commas) in fused_rows(b"\"a,b\",c\nplain,row\n", 64) {
            if r.starts_with(b"\"") {
                assert!(commas.is_none(), "{:?}", String::from_utf8_lossy(&r));
            } else {
                assert_eq!(commas, Some(vec![5]));
            }
        }
    }

    #[test]
    fn push_rows_respects_the_record_size_cap() {
        let mut sp = RecordSplitter::with_max_record_size(16);
        assert!(sp.push_rows(&[b'x'; 64], |_, _| {}).is_err());
        // Sticky, like push().
        assert!(sp.push_rows(b"a\n", |_, _| {}).is_err());
    }

    #[test]
    fn pending_tracks_incomplete_record() {
        let mut sp = RecordSplitter::new();
        sp.push(b"unfinished", |_| panic!("no record yet")).unwrap();
        assert_eq!(sp.pending(), 10);
    }
}

/// Differential property suite: the SWAR zero-copy splitter/parser must be
/// byte-identical to the per-byte [`reference`] implementation over random
/// chunk boundaries, CRLF mixes, nested/doubled quotes and trailing commas.
#[cfg(test)]
mod differential {
    use super::*;
    use proptest::prelude::*;

    /// Raw byte soup biased toward CSV structure: delimiters, quotes, CR/LF
    /// and a little printable filler. This deliberately produces malformed
    /// CSV (unbalanced quotes, bare CRs, stray bytes after closing quotes) —
    /// the paths where the two implementations are most likely to diverge.
    fn soup_strategy() -> impl Strategy<Value = Vec<u8>> {
        // Repeated arms bias the (uniform) union toward structure bytes.
        proptest::collection::vec(
            prop_oneof![
                Just(b'a'),
                Just(b'a'),
                Just(b'b'),
                Just(b','),
                Just(b','),
                Just(b'"'),
                Just(b'"'),
                Just(b'"'),
                Just(b'\n'),
                Just(b'\n'),
                Just(b'\r'),
                Just(b'\r'),
                Just(b' '),
                Just(0xC3u8), // multi-byte UTF-8 lead / invalid tail
            ],
            0..160,
        )
    }

    /// Structured rows joined with a mix of `\n` and `\r\n` terminators.
    fn structured_strategy() -> impl Strategy<Value = Vec<u8>> {
        let field = prop_oneof![
            proptest::string::string_regex("[a-z0-9 ;=_-]{0,10}").expect("regex"),
            proptest::string::string_regex("[a-z0-9 ;=_-]{0,10}").expect("regex"),
            proptest::string::string_regex("\"[a-z,\n\r]{0,8}\"").expect("regex"),
            proptest::string::string_regex("\"[a-z\"\"]{0,6}\"").expect("regex"),
            Just(String::new()), // empty / trailing-comma fields
        ];
        let row = proptest::collection::vec(field, 1..6);
        proptest::collection::vec((row, any::<bool>()), 0..20).prop_map(|rows| {
            let mut buf = Vec::new();
            for (fields, crlf) in rows {
                buf.extend_from_slice(fields.join(",").as_bytes());
                buf.extend_from_slice(if crlf { b"\r\n" } else { b"\n" });
            }
            buf
        })
    }

    fn assert_equivalent(data: &[u8], chunk: usize) {
        // Whole-buffer split.
        let new = split_records(data);
        let old = reference::split_records(data);
        assert_eq!(new, old, "split divergence on {:?}", String::from_utf8_lossy(data));
        // Chunked split with the given boundary stride.
        let mut chunked = Vec::new();
        let mut sp = RecordSplitter::with_max_record_size(usize::MAX);
        for c in data.chunks(chunk.max(1)) {
            sp.push(c, |r| chunked.push(r.to_vec())).expect("uncapped");
        }
        sp.finish(|r| chunked.push(r.to_vec()));
        assert_eq!(chunked, old, "chunked split divergence (chunk={chunk})");
        // Fused record+field scan: identical record stream, and the comma
        // offsets reported for clean records must be exactly the commas a
        // per-byte scan of the emitted record finds.
        let mut fused = Vec::new();
        let mut sp = RecordSplitter::with_max_record_size(usize::MAX);
        for c in data.chunks(chunk.max(1)) {
            sp.push_rows(c, |r, commas| {
                if let Some(commas) = commas {
                    let expect: Vec<u32> = r
                        .iter()
                        .enumerate()
                        .filter(|(_, &b)| b == b',')
                        .map(|(i, _)| i as u32)
                        .collect();
                    assert_eq!(commas, expect, "comma offsets on {:?}", String::from_utf8_lossy(r));
                    assert!(!r.contains(&b'"'), "clean record contains a quote");
                }
                fused.push(r.to_vec());
            })
            .expect("uncapped");
        }
        sp.finish(|r| fused.push(r.to_vec()));
        assert_eq!(fused, old, "fused split divergence (chunk={chunk})");
        // Field parse of every record.
        for rec in &old {
            let new_fields: Vec<String> =
                parse_fields(rec).into_iter().map(|c| c.into_owned()).collect();
            let old_fields: Vec<String> = reference::parse_fields(rec)
                .into_iter()
                .map(|c| c.into_owned())
                .collect();
            assert_eq!(
                new_fields,
                old_fields,
                "parse divergence on record {:?}",
                String::from_utf8_lossy(rec)
            );
        }
    }

    proptest! {
        #[test]
        fn swar_matches_reference_on_byte_soup(
            data in soup_strategy(),
            chunk in 1usize..48,
        ) {
            assert_equivalent(&data, chunk);
        }

        #[test]
        fn swar_matches_reference_on_structured_csv(
            data in structured_strategy(),
            chunk in 1usize..48,
        ) {
            assert_equivalent(&data, chunk);
        }
    }

    #[test]
    fn swar_matches_reference_on_fixtures() {
        let fixtures: &[&[u8]] = &[
            b"",
            b"\n",
            b"\r\n",
            b"\r",
            b"a,b\nc,d",
            b"a,b,\n,,\n",
            b"\"a\nb\",c\r\nd,e\n",
            b"\"unterminated, never closes\nstill inside\n",
            b"\"a\"stray,b\n",
            b"\"a\"\"b\"\"\",c\n",
            b"trailing,comma,\n",
            b"\"\"\n",
            b"\"\r\n",
            b"x\r\r\n",
            b"\"q\"\r",
        ];
        for (i, f) in fixtures.iter().enumerate() {
            for chunk in [1, 2, 3, 7, 64] {
                assert_equivalent(f, chunk);
            }
            let _ = i;
        }
    }
}
