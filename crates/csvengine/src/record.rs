//! Byte-level CSV record machinery: incremental record splitting (quote-aware)
//! and RFC-4180 field parsing.
//!
//! This is the hot path of the whole system: the CSV storlet runs these
//! routines at storage nodes over every byte of every object, so field parsing
//! borrows from the record wherever possible and the splitter never rescans
//! bytes it has already classified.

use std::borrow::Cow;

/// Incremental, quote-aware record splitter.
///
/// Feed arbitrary chunks with [`RecordSplitter::push`]; complete records
/// (without their line terminator) are handed to the callback. Newlines inside
/// double-quoted fields do not split records. Call
/// [`RecordSplitter::finish`] to flush a trailing record that lacks a final
/// newline.
#[derive(Debug, Default)]
pub struct RecordSplitter {
    buf: Vec<u8>,
    /// Scan resume position within `buf` (bytes before it are already classified).
    scan: usize,
    in_quotes: bool,
}

impl RecordSplitter {
    /// Create an empty splitter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed a chunk, invoking `emit` once per completed record.
    pub fn push(&mut self, chunk: &[u8], mut emit: impl FnMut(&[u8])) {
        self.buf.extend_from_slice(chunk);
        let mut record_start = 0usize;
        let mut i = self.scan;
        while i < self.buf.len() {
            let b = self.buf[i];
            if b == b'"' {
                // A doubled quote inside a quoted field toggles twice — the
                // net quote state is still correct for line-splitting.
                self.in_quotes = !self.in_quotes;
            } else if b == b'\n' && !self.in_quotes {
                let mut end = i;
                if end > record_start && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                // Blank lines are not records (Spark-CSV semantics).
                if end > record_start {
                    emit(&self.buf[record_start..end]);
                }
                record_start = i + 1;
            }
            i += 1;
        }
        if record_start > 0 {
            self.buf.drain(..record_start);
        }
        self.scan = self.buf.len();
    }

    /// Flush the final record (if any bytes remain) and consume the splitter.
    pub fn finish(mut self, mut emit: impl FnMut(&[u8])) {
        if !self.buf.is_empty() {
            let mut end = self.buf.len();
            if self.buf[end - 1] == b'\r' {
                end -= 1;
            }
            if end > 0 {
                emit(&self.buf[..end]);
            }
            self.buf.clear();
        }
    }

    /// Bytes currently buffered awaiting a record terminator.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// Split a whole in-memory buffer into records (helper over the splitter).
pub fn split_records(data: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut sp = RecordSplitter::new();
    sp.push(data, |r| out.push(r.to_vec()));
    sp.finish(|r| out.push(r.to_vec()));
    out
}

/// Parse one record into fields.
///
/// Unquoted fields are borrowed; quoted fields are unescaped into owned
/// strings (doubled quotes collapse). Invalid UTF-8 is replaced lossily —
/// object stores accept arbitrary bytes, but SQL operates on text.
pub fn parse_fields(record: &[u8]) -> Vec<Cow<'_, str>> {
    let mut fields = Vec::new();
    if record.is_empty() {
        return fields;
    }
    let mut i = 0usize;
    loop {
        if i < record.len() && record[i] == b'"' {
            // Quoted field.
            let mut owned = Vec::new();
            i += 1;
            loop {
                match record.get(i) {
                    Some(b'"') if record.get(i + 1) == Some(&b'"') => {
                        owned.push(b'"');
                        i += 2;
                    }
                    Some(b'"') => {
                        i += 1;
                        break;
                    }
                    Some(&b) => {
                        owned.push(b);
                        i += 1;
                    }
                    // Unterminated quote: treat remainder as the field.
                    None => break,
                }
            }
            fields.push(Cow::Owned(
                String::from_utf8_lossy(&owned).into_owned(),
            ));
            // Skip up to the next comma (tolerate stray bytes after the quote).
            while i < record.len() && record[i] != b',' {
                i += 1;
            }
        } else {
            let start = i;
            while i < record.len() && record[i] != b',' {
                i += 1;
            }
            fields.push(String::from_utf8_lossy(&record[start..i]));
        }
        if i >= record.len() {
            break;
        }
        i += 1; // consume the comma
        if i == record.len() {
            // Trailing comma → trailing empty field.
            fields.push(Cow::Borrowed(""));
            break;
        }
    }
    fields
}

/// True when the raw value needs quoting when written back out.
pub fn needs_quoting(field: &str) -> bool {
    field
        .bytes()
        .any(|b| matches!(b, b',' | b'"' | b'\n' | b'\r'))
}

/// Append a single field to `out`, quoting/escaping as required.
pub fn write_field(out: &mut Vec<u8>, field: &str) {
    if needs_quoting(field) {
        out.push(b'"');
        for b in field.bytes() {
            if b == b'"' {
                out.push(b'"');
            }
            out.push(b);
        }
        out.push(b'"');
    } else {
        out.extend_from_slice(field.as_bytes());
    }
}

/// Serialize string fields into one CSV record terminated by `\n`.
///
/// A record consisting of a single empty field is written as `""` — a bare
/// empty line would be indistinguishable from a blank line, which readers
/// (like Spark-CSV) skip.
pub fn write_record(out: &mut Vec<u8>, fields: &[&str]) {
    if fields.len() == 1 && fields[0].is_empty() {
        out.extend_from_slice(b"\"\"\n");
        return;
    }
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(b',');
        }
        write_field(out, f);
    }
    out.push(b'\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(data: &[u8]) -> Vec<String> {
        split_records(data)
            .into_iter()
            .map(|r| String::from_utf8(r).unwrap())
            .collect()
    }

    fn fields(rec: &str) -> Vec<String> {
        parse_fields(rec.as_bytes())
            .into_iter()
            .map(|c| c.into_owned())
            .collect()
    }

    #[test]
    fn splits_simple_lines() {
        assert_eq!(records(b"a\nb\nc\n"), vec!["a", "b", "c"]);
        // Missing trailing newline still yields the last record.
        assert_eq!(records(b"a\nb"), vec!["a", "b"]);
        assert_eq!(records(b""), Vec::<String>::new());
    }

    #[test]
    fn handles_crlf() {
        assert_eq!(records(b"a\r\nb\r\n"), vec!["a", "b"]);
        assert_eq!(records(b"a\r"), vec!["a"]);
    }

    #[test]
    fn quoted_newlines_do_not_split() {
        assert_eq!(
            records(b"\"a\nstill a\",x\nb,y\n"),
            vec!["\"a\nstill a\",x", "b,y"]
        );
    }

    #[test]
    fn chunk_boundaries_are_invisible() {
        let data = b"alpha,1\n\"be,ta\",2\r\n\"ga\"\"mma\",3\nlast,4";
        let whole = records(data);
        for chunk in [1usize, 2, 3, 5, 7, 100] {
            let mut out = Vec::new();
            let mut sp = RecordSplitter::new();
            for c in data.chunks(chunk) {
                sp.push(c, |r| out.push(String::from_utf8(r.to_vec()).unwrap()));
            }
            sp.finish(|r| out.push(String::from_utf8(r.to_vec()).unwrap()));
            assert_eq!(out, whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn parses_plain_fields() {
        assert_eq!(fields("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(fields("a,,c"), vec!["a", "", "c"]);
        assert_eq!(fields("a,b,"), vec!["a", "b", ""]);
        assert_eq!(fields(""), Vec::<String>::new());
        assert_eq!(fields("solo"), vec!["solo"]);
    }

    #[test]
    fn parses_quoted_fields() {
        assert_eq!(fields("\"a,b\",c"), vec!["a,b", "c"]);
        assert_eq!(fields("\"he said \"\"hi\"\"\",x"), vec!["he said \"hi\"", "x"]);
        assert_eq!(fields("\"multi\nline\",y"), vec!["multi\nline", "y"]);
        // Unterminated quote tolerated.
        assert_eq!(fields("\"open"), vec!["open"]);
    }

    #[test]
    fn write_roundtrip() {
        let cases: Vec<Vec<&str>> = vec![
            vec!["a", "b"],
            vec!["with,comma", "with\"quote", "with\nnewline"],
            vec!["", "", ""],
            vec!["plain"],
        ];
        for case in cases {
            let mut buf = Vec::new();
            write_record(&mut buf, &case);
            let recs = split_records(&buf);
            assert_eq!(recs.len(), 1);
            assert_eq!(fields(std::str::from_utf8(&recs[0]).unwrap()), case);
        }
    }

    #[test]
    fn pending_tracks_incomplete_record() {
        let mut sp = RecordSplitter::new();
        sp.push(b"unfinished", |_| panic!("no record yet"));
        assert_eq!(sp.pending(), 10);
    }
}
