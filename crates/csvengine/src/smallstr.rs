//! Inline-capable string storage for [`crate::Value`].
//!
//! Every field of the GridPocket meter schema — including the 19-byte
//! `"2015-02-01 00:00:00"` timestamps — fits in [`INLINE_LEN`] bytes, so the
//! typed-row hot path (`CsvReader` → `Vec<Value>`) materializes string
//! columns without touching the allocator: an inline copy of at most 22
//! bytes instead of a `String` allocation per field, and a no-op drop
//! instead of a `free`. Longer strings spill to a `Box<str>`.
//!
//! The type is deliberately safe Rust: the inline buffer stores bytes that
//! were valid UTF-8 at construction, and [`SmallStr::as_str`] re-validates
//! on access (a handful of nanoseconds for ≤22 bytes) rather than caching a
//! `str` view through `unsafe`.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Maximum byte length stored inline. Chosen so the enum stays 24 bytes —
/// the same payload size as `String` — while covering every meter field.
pub const INLINE_LEN: usize = 22;

/// A UTF-8 string that stores short values inline and long ones on the heap.
#[derive(Clone)]
pub enum SmallStr {
    /// At most [`INLINE_LEN`] bytes, valid UTF-8 at construction.
    Inline { len: u8, buf: [u8; INLINE_LEN] },
    /// Spill storage for longer strings.
    Heap(Box<str>),
}

impl SmallStr {
    /// Build from a `&str`, inlining when it fits.
    #[inline]
    pub fn new(s: &str) -> SmallStr {
        if s.len() <= INLINE_LEN {
            let mut buf = [0u8; INLINE_LEN];
            buf[..s.len()].copy_from_slice(s.as_bytes());
            SmallStr::Inline { len: s.len() as u8, buf }
        } else {
            SmallStr::Heap(s.into())
        }
    }

    /// Build from raw bytes with `from_utf8_lossy` semantics: short valid
    /// UTF-8 is inlined without allocating; anything else goes through the
    /// lossy conversion. This is the CSV field materialization fast path.
    #[inline]
    pub fn from_utf8_lossy(bytes: &[u8]) -> SmallStr {
        // ASCII implies valid UTF-8; `[u8]::is_ascii` is a word-at-a-time
        // high-bit check, much cheaper than the full UTF-8 validator. This
        // is the whole inlined fast path — everything else is outlined.
        if bytes.len() <= INLINE_LEN && bytes.is_ascii() {
            let mut buf = [0u8; INLINE_LEN];
            buf[..bytes.len()].copy_from_slice(bytes);
            return SmallStr::Inline { len: bytes.len() as u8, buf };
        }
        Self::from_utf8_lossy_slow(bytes)
    }

    /// Construct from the first `len` bytes of `window`, which the caller
    /// guarantees are ASCII (with `len <= INLINE_LEN`). When the window
    /// extends to at least [`INLINE_LEN`] bytes the copy is a single
    /// fixed-size move instead of a variable-length one — the bytes past
    /// `len` land in the buffer but are unreachable, because every accessor
    /// is length-bounded. This is how the fused row decoder materializes
    /// string columns: the "window" is the rest of the record.
    #[inline(always)]
    pub(crate) fn from_ascii_window(window: &[u8], len: usize) -> SmallStr {
        debug_assert!(len <= window.len() && len <= INLINE_LEN);
        debug_assert!(window[..len.min(window.len())].is_ascii());
        let mut buf = [0u8; INLINE_LEN];
        if window.len() >= INLINE_LEN {
            buf.copy_from_slice(&window[..INLINE_LEN]);
        } else {
            buf[..window.len()].copy_from_slice(window);
        }
        SmallStr::Inline { len: len.min(INLINE_LEN) as u8, buf }
    }

    /// Non-ASCII or long input: full validation / lossy conversion.
    #[cold]
    #[inline(never)]
    fn from_utf8_lossy_slow(bytes: &[u8]) -> SmallStr {
        if bytes.len() <= INLINE_LEN {
            if let Ok(s) = std::str::from_utf8(bytes) {
                return SmallStr::new(s);
            }
        }
        match String::from_utf8_lossy(bytes) {
            Cow::Borrowed(s) => SmallStr::new(s),
            Cow::Owned(s) => SmallStr::from(s),
        }
    }

    /// The string view. Inline storage re-validates (it was valid UTF-8 at
    /// construction, so the fallback arm is unreachable in practice).
    #[inline]
    pub fn as_str(&self) -> &str {
        match self {
            SmallStr::Inline { len, buf } => {
                let end = (*len as usize).min(INLINE_LEN);
                std::str::from_utf8(&buf[..end]).unwrap_or("")
            }
            SmallStr::Heap(s) => s,
        }
    }

    /// Byte length of the string.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            SmallStr::Inline { len, .. } => *len as usize,
            SmallStr::Heap(s) => s.len(),
        }
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SmallStr {
    fn default() -> Self {
        SmallStr::Inline { len: 0, buf: [0u8; INLINE_LEN] }
    }
}

impl From<&str> for SmallStr {
    #[inline]
    fn from(s: &str) -> SmallStr {
        SmallStr::new(s)
    }
}

impl From<String> for SmallStr {
    #[inline]
    fn from(s: String) -> SmallStr {
        if s.len() <= INLINE_LEN {
            SmallStr::new(&s)
        } else {
            SmallStr::Heap(s.into_boxed_str())
        }
    }
}

impl From<Cow<'_, str>> for SmallStr {
    #[inline]
    fn from(s: Cow<'_, str>) -> SmallStr {
        match s {
            Cow::Borrowed(s) => SmallStr::new(s),
            Cow::Owned(s) => SmallStr::from(s),
        }
    }
}

impl From<&SmallStr> for String {
    fn from(s: &SmallStr) -> String {
        s.as_str().to_owned()
    }
}

impl std::ops::Deref for SmallStr {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for SmallStr {
    #[inline]
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq for SmallStr {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for SmallStr {}

impl PartialEq<str> for SmallStr {
    #[inline]
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for SmallStr {
    #[inline]
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialOrd for SmallStr {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SmallStr {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl Hash for SmallStr {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state)
    }
}

impl fmt::Display for SmallStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for SmallStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

// Marker impls for the offline serde stand-in (the derive emits no code,
// but hand-rolled wire formats never route through serde anyway).
impl serde::Serialize for SmallStr {}
impl<'de> serde::Deserialize<'de> for SmallStr {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inlines_short_and_spills_long() {
        let s = SmallStr::new("2015-02-01 00:00:00");
        assert!(matches!(s, SmallStr::Inline { .. }));
        assert_eq!(s.as_str(), "2015-02-01 00:00:00");
        assert_eq!(s.len(), 19);

        let long = "x".repeat(INLINE_LEN + 1);
        let s = SmallStr::new(&long);
        assert!(matches!(s, SmallStr::Heap(_)));
        assert_eq!(s.as_str(), long);
    }

    #[test]
    fn boundary_length_is_inline() {
        let at = "y".repeat(INLINE_LEN);
        let s = SmallStr::from(at.clone());
        assert!(matches!(s, SmallStr::Inline { .. }));
        assert_eq!(s.as_str(), at);
    }

    #[test]
    fn lossy_bytes_match_string_lossy() {
        for raw in [
            b"plain".as_slice(),
            b"".as_slice(),
            b"caf\xc3\xa9".as_slice(),
            b"bad\xffbyte".as_slice(),
            b"this one is much longer than the inline buffer \xff".as_slice(),
        ] {
            assert_eq!(
                SmallStr::from_utf8_lossy(raw).as_str(),
                String::from_utf8_lossy(raw),
                "{raw:?}"
            );
        }
    }

    #[test]
    fn eq_ord_hash_cross_representation() {
        use std::collections::hash_map::DefaultHasher;
        let inline = SmallStr::new("abc");
        let heap = SmallStr::Heap("abc".into());
        assert_eq!(inline, heap);
        assert_eq!(inline.cmp(&heap), Ordering::Equal);
        let h = |s: &SmallStr| {
            let mut st = DefaultHasher::new();
            s.hash(&mut st);
            st.finish()
        };
        assert_eq!(h(&inline), h(&heap));
        assert!(SmallStr::new("a") < SmallStr::new("b"));
        assert_eq!(SmallStr::new("x"), "x");
    }

    #[test]
    fn display_and_default() {
        assert_eq!(SmallStr::new("hi").to_string(), "hi");
        assert_eq!(SmallStr::default().as_str(), "");
        assert!(SmallStr::default().is_empty());
    }
}
