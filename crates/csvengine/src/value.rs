//! The typed scalar data model.
//!
//! A deliberately small lattice — `Null < Int/Float < Str` — matching what the
//! GridPocket meter data and the Table I queries require. Numeric comparisons
//! coerce `Int` and `Float`; strings compare lexicographically (byte order),
//! which is also how the paper's `date LIKE '2015-01%'`-style predicates rely
//! on ISO-8601 dates sorting textually.

use crate::smallstr::SmallStr;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A scalar value flowing through the SQL engine and pushdown filters.
///
/// Strings are [`SmallStr`]: short values (every GridPocket meter field,
/// including timestamps) are stored inline, so building and dropping typed
/// rows on the ingest hot path does not touch the allocator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL / empty CSV field in a numeric column.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(SmallStr),
}

/// NULL, so a value can be cheaply `std::mem::take`n out of a decoded block.
impl Default for Value {
    #[inline]
    fn default() -> Value {
        Value::Null
    }
}

impl Value {
    /// Parse a raw CSV field according to a preferred type, falling back to
    /// string when the field does not parse. Empty fields become `Null`.
    pub fn parse_typed(field: &str, dtype: crate::schema::DataType) -> Value {
        use crate::schema::DataType;
        if field.is_empty() {
            return Value::Null;
        }
        match dtype {
            DataType::Int => field
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or_else(|_| Value::Str(field.into())),
            DataType::Float => field
                .parse::<f64>()
                .map(Value::Float)
                .unwrap_or_else(|_| Value::Str(field.into())),
            DataType::Str => Value::Str(field.into()),
        }
    }

    /// Byte-level [`Value::parse_typed`]: identical semantics, but numeric
    /// fields that hit the exact fast path skip the UTF-8 pass and the
    /// general float parser entirely — this is the compute-ingest hot loop.
    /// The body that inlines into callers is deliberately tiny; everything
    /// rare (exponents, overflow, non-UTF-8) lives in the cold outlined
    /// fallback so it doesn't pollute the per-field loop.
    #[inline]
    pub fn parse_field_bytes(field: &[u8], dtype: crate::schema::DataType) -> Value {
        use crate::schema::DataType;
        if field.is_empty() {
            return Value::Null;
        }
        match dtype {
            DataType::Int => match parse_i64_simple(field) {
                Some(v) => Value::Int(v),
                None => Self::parse_field_slow(field, dtype),
            },
            DataType::Float => match parse_f64_simple(field) {
                Some(v) => Value::Float(v),
                None => Self::parse_field_slow(field, dtype),
            },
            DataType::Str => Value::Str(SmallStr::from_utf8_lossy(field)),
        }
    }

    /// Fallback for fields the exact numeric fast path rejects: lossy UTF-8
    /// conversion plus the std parsers, preserving `parse_typed` semantics.
    #[cold]
    #[inline(never)]
    fn parse_field_slow(field: &[u8], dtype: crate::schema::DataType) -> Value {
        use crate::schema::DataType;
        let text = String::from_utf8_lossy(field);
        match dtype {
            DataType::Int => text
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or_else(|_| Value::Str(text.into())),
            DataType::Float => text
                .parse::<f64>()
                .map(Value::Float)
                .unwrap_or_else(|_| Value::Str(text.into())),
            DataType::Str => Value::Str(text.into()),
        }
    }

    /// Best-effort numeric view (`Int` and `Float` only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view (only for `Str`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL-style three-valued comparison: `None` when either side is NULL or
    /// the types are incomparable (e.g. string vs number).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                _ => None,
            },
        }
    }

    /// SQL equality under the same coercion rules (NULL = anything → false).
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.sql_cmp(other) == Some(Ordering::Equal)
    }

    /// Total ordering for ORDER BY / GROUP BY keys: NULLs first, then numbers
    /// (coerced), then strings. Unlike [`Value::sql_cmp`] this is total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 1 && rank(b) == 1 => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                // Rank 1 is Int/Float only, so both coercions succeed; keep a
                // non-panicking fallback for the type system's sake.
                _ => Ordering::Equal,
            },
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Render the value the way the CSV writer / result printer does.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

/// Exact fast path for `-?\d+(\.\d+)?` with an exactly-representable
/// mantissa: a `u64` accumulate plus one correctly-rounded division by a
/// power of ten — the classic strtod fast case, bit-identical to the general
/// parser. Anything else (exponents, overflow, `inf`, stray bytes) returns
/// `None` and falls back to `str::parse`.
#[inline]
fn parse_f64_simple(b: &[u8]) -> Option<f64> {
    const POW10: [f64; 16] = [
        1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13,
        1e14, 1e15,
    ];
    let (neg, digits) = match b.split_first()? {
        (b'-', rest) => (true, rest),
        _ => (false, b),
    };
    if digits.is_empty() || digits.len() > 16 {
        return None;
    }
    let mut mant = 0u64;
    let mut frac = 0usize;
    let mut seen_dot = false;
    let mut n_digits = 0usize;
    for &c in digits {
        match c {
            b'0'..=b'9' => {
                mant = mant * 10 + (c - b'0') as u64;
                n_digits += 1;
                if seen_dot {
                    frac += 1;
                }
            }
            b'.' if !seen_dot => seen_dot = true,
            _ => return None,
        }
    }
    // ≤ 15 digits keeps the mantissa exactly representable (< 2^53).
    if n_digits == 0 || n_digits > 15 {
        return None;
    }
    let v = mant as f64 / POW10[frac];
    Some(if neg { -v } else { v })
}

/// Broadcast `'0'` — the padding byte for the SWAR digit word.
const ZERO_WORD: u64 = 0x3030_3030_3030_3030;

/// Decimal value of 8 digit characters in string order (first digit in the
/// low byte of the little-endian word), or `None` if any byte is not
/// `'0'..='9'`. Pairwise Muła reduction: three multiplies instead of eight
/// data-dependent multiply-adds.
#[inline(always)]
fn eight_digit_value(w: u64) -> Option<u64> {
    // A byte is a digit iff its high nibble is 3 and adding 6 doesn't carry
    // into the high nibble (0x39+6=0x3F stays, 0x3A+6=0x40 escapes).
    let nibble_check = (w & 0xF0F0_F0F0_F0F0_F0F0)
        | ((w.wrapping_add(0x0606_0606_0606_0606) & 0xF0F0_F0F0_F0F0_F0F0) >> 4);
    if nibble_check != 0x3333_3333_3333_3333 {
        return None;
    }
    let v = w - ZERO_WORD;
    let v = v.wrapping_mul(2561) >> 8;
    let v = (v & 0x00FF_00FF_00FF_00FF).wrapping_mul(6_553_601) >> 16;
    let v = (v & 0x0000_FFFF_0000_FFFF).wrapping_mul(42_949_672_960_001) >> 32;
    Some(v)
}

/// Branch-light float parse for a short field given over-read room: `window`
/// is the rest of the record starting at the field, `len` the field's true
/// length. One 8-byte load covers the whole field; bytes past `len` are
/// masked to `'0'` so they can never affect the result. Returns exactly what
/// [`parse_f64_simple`] would for the same field, or `None` to fall back
/// (longer fields, exotic syntax, non-digits).
#[inline(always)]
pub(crate) fn parse_f64_window(window: &[u8], len: usize) -> Option<f64> {
    const POW10: [f64; 9] = [1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8];
    if len == 0 || len > 8 || window.len() < 8 {
        return None;
    }
    let w = crate::scan::load_word(window);
    let (w, len, neg) = if w as u8 == b'-' {
        (w >> 8, len - 1, true)
    } else {
        (w, len, false)
    };
    if len == 0 {
        return None;
    }
    let mask = if len == 8 { !0u64 } else { (1u64 << (8 * len)) - 1 };
    let w = (w & mask) | (ZERO_WORD & !mask);
    let dots = crate::scan::match_lanes(w, b'.');
    // With pad count p and fractional digits f, the 8-char value is
    // D·10^p, so the result is D/10^f = value/10^(p+f).
    let (digits, exp) = if dots == 0 {
        (w, 8 - len)
    } else {
        if dots & dots.wrapping_sub(1) != 0 || len == 1 {
            // Two dots, or the field is just ".".
            return None;
        }
        let d = crate::scan::lane_index(dots);
        // Drop the dot byte, close the gap, pad the vacated top with '0'.
        let low = w & ((1u64 << (8 * d)) - 1);
        let high = if d == 7 { 0 } else { (w >> (8 * (d + 1))) << (8 * d) };
        // p' = 8-(len-1), f = len-1-d, so p'+f = 8-d.
        (low | high | (0xFFu64 << 56 & ZERO_WORD), 8 - d)
    };
    let mant = eight_digit_value(digits)?;
    let v = mant as f64 / POW10[exp];
    Some(if neg { -v } else { v })
}

/// Fast path for plain decimal integers; overflow and oddities fall back.
#[inline]
fn parse_i64_simple(b: &[u8]) -> Option<i64> {
    let (neg, digits) = match b.split_first()? {
        (b'-', rest) => (true, rest),
        _ => (false, b),
    };
    if digits.is_empty() || digits.len() > 18 {
        return None;
    }
    let mut v = 0i64;
    for &c in digits {
        if !c.is_ascii_digit() {
            return None;
        }
        v = v * 10 + (c - b'0') as i64;
    }
    Some(if neg { -v } else { v })
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash numerics by their f64 bits after coercion so Int(2) and
            // Float(2.0) (equal under total_cmp) hash identically.
            Value::Int(i) => (*i as f64).to_bits().hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => Ok(()),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    #[test]
    fn window_float_parse_matches_the_serial_parser() {
        // Every candidate is parsed via the over-read window (padded with
        // comma + junk, like a real record tail) and must agree bit-for-bit
        // with parse_f64_simple / the std fallback on both value and
        // accept/reject decision.
        let pieces = [
            "0", "5", "51", "92", "9244", "123456", "1234567", "99999999", "000123",
        ];
        let mut cases: Vec<String> = Vec::new();
        for a in pieces {
            cases.push(a.to_string());
            cases.push(format!("-{a}"));
            for b in pieces {
                cases.push(format!("{a}.{b}"));
                cases.push(format!("-{a}.{b}"));
            }
        }
        for odd in [
            ".", "-.", "..", "1.2.3", "5.", ".5", "-.5", "+5", "1e3", "abc", "12a",
            "-", "--5", "12345678", "123456789", "1234.5678",
        ] {
            cases.push(odd.to_string());
        }
        for case in &cases {
            let mut window = case.clone().into_bytes();
            window.extend_from_slice(b",junk,tail");
            let got = parse_f64_window(&window, case.len());
            let reference = parse_f64_simple(case.as_bytes());
            match (got, reference) {
                (Some(g), Some(r)) => {
                    assert_eq!(g.to_bits(), r.to_bits(), "{case:?}");
                }
                (Some(g), None) => panic!("window accepted {case:?} = {g} but serial rejects"),
                (None, _) => {
                    // Declining is always allowed; the caller falls back.
                    // But anything short and plain must take the fast path.
                    if case.len() <= 8
                        && case.bytes().all(|b| b.is_ascii_digit())
                        && !case.is_empty()
                    {
                        panic!("window parser must accept plain digits {case:?}");
                    }
                }
            }
        }
        // Short-window guard: a field at the very end of a record (< 8 bytes
        // of over-read room) declines rather than reading out of bounds.
        assert_eq!(parse_f64_window(b"5.2", 3), None);
    }

    #[test]
    fn fast_number_parse_matches_std() {
        // Floats: sweep digit counts on both sides of the dot and compare
        // bit patterns against the std parser.
        let pieces = ["0", "5", "51", "9244", "12345678", "999999999", "000123"];
        for int_p in pieces {
            for frac_p in pieces {
                for s in [
                    format!("{int_p}.{frac_p}"),
                    format!("-{int_p}.{frac_p}"),
                    int_p.to_string(),
                    format!("-{int_p}"),
                ] {
                    if let Some(got) = parse_f64_simple(s.as_bytes()) {
                        let want: f64 = s.parse().unwrap();
                        assert_eq!(got.to_bits(), want.to_bits(), "{s:?}");
                    }
                }
            }
        }
        assert_eq!(parse_f64_simple(b"51.9244"), Some(51.9244));
        assert_eq!(parse_f64_simple(b"1.2.3"), None);
        assert_eq!(parse_f64_simple(b"."), None);
        assert_eq!(parse_f64_simple(b"5."), Some(5.0));
        assert_eq!(parse_f64_simple(b".5"), Some(0.5));
        // Integers, including the 18-digit boundary.
        for s in ["0", "42", "-42", "123456789", "123456789012345678", "-999999999999999999"] {
            assert_eq!(parse_i64_simple(s.as_bytes()), Some(s.parse().unwrap()), "{s:?}");
        }
        assert_eq!(parse_i64_simple(b"1234567890123456789"), None, ">18 digits falls back");
        assert_eq!(parse_i64_simple(b"12a4"), None);
    }

    #[test]
    fn parse_typed_respects_type_and_falls_back() {
        assert_eq!(Value::parse_typed("42", DataType::Int), Value::Int(42));
        assert_eq!(Value::parse_typed("4.5", DataType::Float), Value::Float(4.5));
        assert_eq!(
            Value::parse_typed("oops", DataType::Int),
            Value::Str("oops".into())
        );
        assert!(Value::parse_typed("", DataType::Int).is_null());
        assert_eq!(
            Value::parse_typed("Rotterdam", DataType::Str),
            Value::Str("Rotterdam".into())
        );
    }

    #[test]
    fn sql_cmp_coerces_numerics_and_rejects_mixed() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Float(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert!(!Value::Null.sql_eq(&Value::Null));
    }

    #[test]
    fn total_cmp_is_total_and_ranks_types() {
        let vals = [
            Value::Null,
            Value::Int(1),
            Value::Float(1.5),
            Value::Str("a".into()),
        ];
        for a in &vals {
            for b in &vals {
                // Anti-symmetry sanity.
                assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse());
            }
        }
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Int(9) < Value::Str("".into()));
    }

    #[test]
    fn equal_numerics_hash_identically() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(h(&Value::Int(2)), h(&Value::Float(2.0)));
    }

    #[test]
    fn display_matches_csv_expectations() {
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.25).to_string(), "2.25");
        assert_eq!(Value::Str("x,y".into()).to_string(), "x,y");
    }
}
