//! The typed scalar data model.
//!
//! A deliberately small lattice — `Null < Int/Float < Str` — matching what the
//! GridPocket meter data and the Table I queries require. Numeric comparisons
//! coerce `Int` and `Float`; strings compare lexicographically (byte order),
//! which is also how the paper's `date LIKE '2015-01%'`-style predicates rely
//! on ISO-8601 dates sorting textually.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A scalar value flowing through the SQL engine and pushdown filters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL / empty CSV field in a numeric column.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Parse a raw CSV field according to a preferred type, falling back to
    /// string when the field does not parse. Empty fields become `Null`.
    pub fn parse_typed(field: &str, dtype: crate::schema::DataType) -> Value {
        use crate::schema::DataType;
        if field.is_empty() {
            return Value::Null;
        }
        match dtype {
            DataType::Int => field
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or_else(|_| Value::Str(field.to_string())),
            DataType::Float => field
                .parse::<f64>()
                .map(Value::Float)
                .unwrap_or_else(|_| Value::Str(field.to_string())),
            DataType::Str => Value::Str(field.to_string()),
        }
    }

    /// Best-effort numeric view (`Int` and `Float` only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view (only for `Str`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL-style three-valued comparison: `None` when either side is NULL or
    /// the types are incomparable (e.g. string vs number).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                _ => None,
            },
        }
    }

    /// SQL equality under the same coercion rules (NULL = anything → false).
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.sql_cmp(other) == Some(Ordering::Equal)
    }

    /// Total ordering for ORDER BY / GROUP BY keys: NULLs first, then numbers
    /// (coerced), then strings. Unlike [`Value::sql_cmp`] this is total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 1 && rank(b) == 1 => {
                let x = a.as_f64().expect("numeric");
                let y = b.as_f64().expect("numeric");
                x.total_cmp(&y)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Render the value the way the CSV writer / result printer does.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash numerics by their f64 bits after coercion so Int(2) and
            // Float(2.0) (equal under total_cmp) hash identically.
            Value::Int(i) => (*i as f64).to_bits().hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => Ok(()),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    #[test]
    fn parse_typed_respects_type_and_falls_back() {
        assert_eq!(Value::parse_typed("42", DataType::Int), Value::Int(42));
        assert_eq!(Value::parse_typed("4.5", DataType::Float), Value::Float(4.5));
        assert_eq!(
            Value::parse_typed("oops", DataType::Int),
            Value::Str("oops".into())
        );
        assert!(Value::parse_typed("", DataType::Int).is_null());
        assert_eq!(
            Value::parse_typed("Rotterdam", DataType::Str),
            Value::Str("Rotterdam".into())
        );
    }

    #[test]
    fn sql_cmp_coerces_numerics_and_rejects_mixed() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Float(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert!(!Value::Null.sql_eq(&Value::Null));
    }

    #[test]
    fn total_cmp_is_total_and_ranks_types() {
        let vals = [
            Value::Null,
            Value::Int(1),
            Value::Float(1.5),
            Value::Str("a".into()),
        ];
        for a in &vals {
            for b in &vals {
                // Anti-symmetry sanity.
                assert_eq!(a.total_cmp(b), b.total_cmp(a).reverse());
            }
        }
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Int(9) < Value::Str(String::new()));
    }

    #[test]
    fn equal_numerics_hash_identically() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(h(&Value::Int(2)), h(&Value::Float(2.0)));
    }

    #[test]
    fn display_matches_csv_expectations() {
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.25).to_string(), "2.25");
        assert_eq!(Value::Str("x,y".into()).to_string(), "x,y");
    }
}
