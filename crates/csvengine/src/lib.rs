//! Streaming CSV engine for Scoop.
//!
//! The paper's proof-of-concept pushes SQL projections and selections down to
//! raw CSV objects in the store. This crate implements everything both sides
//! of that pushdown need:
//!
//! * [`value`] / [`schema`] — the typed data model (rows of [`value::Value`]
//!   described by a [`schema::Schema`]).
//! * [`record`] — byte-level record splitting and field parsing (RFC-4180
//!   quoting, embedded delimiters/newlines).
//! * [`scan`] — SWAR (8-bytes-per-word) delimiter scanning primitives the
//!   record splitter and field parser are built on.
//! * [`view`] — zero-copy [`view::RecordView`] field spans with lazy typed
//!   access; the allocation-free fast path for predicate evaluation.
//! * [`reader`] / [`writer`] — streaming readers and writers over
//!   [`scoop_common::ByteStream`] chunked bodies.
//! * [`split`] — record-aligned byte-range splits, matching Hadoop's
//!   `LineRecordReader` contract that the Storlet byte-range extension in the
//!   paper had to honour ("running Storlets at storage nodes for byte ranges").
//! * [`pushdown`] — the [`pushdown::PushdownSpec`] (projection + selection)
//!   exchanged between the analytics delegator and the CSV storlet, including
//!   its compact header serialization.
//! * [`filter`] — evaluation of a compiled pushdown spec against raw records;
//!   the exact code the CSV storlet runs at storage nodes.

pub mod filter;
pub mod pushdown;
pub mod reader;
pub mod record;
pub mod scan;
pub mod schema;
pub mod smallstr;
pub mod split;
pub mod value;
pub mod view;
pub mod writer;

pub use filter::CompiledSpec;
pub use pushdown::{Predicate, PushdownSpec};
pub use reader::CsvReader;
pub use schema::{DataType, Field, Schema};
pub use smallstr::SmallStr;
pub use value::Value;
pub use view::{FieldBuf, RecordView};
pub use writer::CsvWriter;
