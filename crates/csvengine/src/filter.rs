//! Pushdown filter evaluation over raw CSV records.
//!
//! This is the code the CSV storlet executes at storage nodes: it resolves the
//! [`PushdownSpec`]'s column names against the object schema, then streams
//! records through selection + projection, emitting filtered CSV.
//!
//! ## NULL semantics
//!
//! An empty CSV field is NULL. Comparisons and string matches against NULL are
//! false (`IS NULL` / `IS NOT NULL` excepted), and comparisons between a
//! numeric literal and a non-numeric field are false — exactly matching the
//! typed evaluation in `scoop-sql`, which is what makes pushdown transparent.
//!
//! ## Byte fidelity
//!
//! Matching records are emitted as **untouched slices of the input**: the
//! passthrough path copies the whole record verbatim, and the projection path
//! copies each projected field's original bytes (quoting and escapes
//! included) whenever that is safe — a field is only re-rendered through
//! [`write_field`] when its raw form could corrupt downstream parsing (an
//! unquoted field containing a literal `"` or a stray `\r`, or a malformed
//! quoted field). A field holding `2` therefore ships as `2`, never `2.0`.
//!
//! ## Zero-copy evaluation
//!
//! Selection runs on a [`RecordView`]: the record is scanned once with the
//! SWAR scanner, only the first `max(referenced field index) + 1` fields are
//! delimited, and predicates read borrowed field bytes — no `String` or
//! `Value` is allocated per field on the hot path.

use crate::pushdown::{like_match, Predicate, PushdownSpec};
use crate::record::{write_field, RecordSplitter};
use crate::scan;
use crate::value::Value;
use crate::view::{FieldBuf, RecordView};
use scoop_common::{Result, ScoopError};
use std::borrow::Cow;
use std::cmp::Ordering;

/// A predicate with column names resolved to field indices.
#[derive(Debug, Clone)]
enum CompiledPred {
    Eq(usize, Value),
    Ne(usize, Value),
    Lt(usize, Value),
    Le(usize, Value),
    Gt(usize, Value),
    Ge(usize, Value),
    Like(usize, String),
    StartsWith(usize, String),
    EndsWith(usize, String),
    Contains(usize, String),
    In(usize, Vec<Value>),
    IsNull(usize),
    IsNotNull(usize),
    And(Box<CompiledPred>, Box<CompiledPred>),
    Or(Box<CompiledPred>, Box<CompiledPred>),
    Not(Box<CompiledPred>),
}

/// Resolve a column name against a header (case-insensitive).
fn resolve(header: &[String], name: &str) -> Result<usize> {
    header
        .iter()
        .position(|h| h.eq_ignore_ascii_case(name))
        .ok_or_else(|| ScoopError::InvalidRequest(format!("unknown pushdown column '{name}'")))
}

fn compile_pred(p: &Predicate, header: &[String]) -> Result<CompiledPred> {
    Ok(match p {
        Predicate::Eq(c, v) => CompiledPred::Eq(resolve(header, c)?, v.clone()),
        Predicate::Ne(c, v) => CompiledPred::Ne(resolve(header, c)?, v.clone()),
        Predicate::Lt(c, v) => CompiledPred::Lt(resolve(header, c)?, v.clone()),
        Predicate::Le(c, v) => CompiledPred::Le(resolve(header, c)?, v.clone()),
        Predicate::Gt(c, v) => CompiledPred::Gt(resolve(header, c)?, v.clone()),
        Predicate::Ge(c, v) => CompiledPred::Ge(resolve(header, c)?, v.clone()),
        Predicate::Like(c, s) => CompiledPred::Like(resolve(header, c)?, s.clone()),
        Predicate::StartsWith(c, s) => CompiledPred::StartsWith(resolve(header, c)?, s.clone()),
        Predicate::EndsWith(c, s) => CompiledPred::EndsWith(resolve(header, c)?, s.clone()),
        Predicate::Contains(c, s) => CompiledPred::Contains(resolve(header, c)?, s.clone()),
        Predicate::In(c, vs) => CompiledPred::In(resolve(header, c)?, vs.clone()),
        Predicate::IsNull(c) => CompiledPred::IsNull(resolve(header, c)?),
        Predicate::IsNotNull(c) => CompiledPred::IsNotNull(resolve(header, c)?),
        Predicate::And(a, b) => CompiledPred::And(
            Box::new(compile_pred(a, header)?),
            Box::new(compile_pred(b, header)?),
        ),
        Predicate::Or(a, b) => CompiledPred::Or(
            Box::new(compile_pred(a, header)?),
            Box::new(compile_pred(b, header)?),
        ),
        Predicate::Not(a) => CompiledPred::Not(Box::new(compile_pred(a, header)?)),
    })
}

/// Compare a raw field with a literal under the NULL/coercion rules above.
fn cmp_field(field: &str, lit: &Value) -> Option<Ordering> {
    if field.is_empty() {
        return None;
    }
    match lit {
        Value::Null => None,
        Value::Int(_) | Value::Float(_) => {
            let f = field.parse::<f64>().ok()?;
            f.partial_cmp(&lit.as_f64()?)
        }
        Value::Str(s) => Some(field.cmp(s.as_str())),
    }
}

/// Field equality under the same rules.
fn eq_field(field: &str, lit: &Value) -> bool {
    cmp_field(field, lit) == Some(Ordering::Equal)
}

impl CompiledPred {
    /// Evaluate with a field accessor (absent fields read as NULL/empty).
    /// Generic so both the legacy slice path and the zero-copy view path
    /// monomorphize to direct code.
    fn eval_with<'a, F>(&self, get: &F) -> bool
    where
        F: Fn(usize) -> Cow<'a, str>,
    {
        match self {
            CompiledPred::Eq(i, v) => eq_field(&get(*i), v),
            CompiledPred::Ne(i, v) => {
                // SQL: NULL <> x is unknown → false.
                matches!(cmp_field(&get(*i), v), Some(o) if o != Ordering::Equal)
            }
            CompiledPred::Lt(i, v) => cmp_field(&get(*i), v) == Some(Ordering::Less),
            CompiledPred::Le(i, v) => {
                matches!(cmp_field(&get(*i), v), Some(Ordering::Less | Ordering::Equal))
            }
            CompiledPred::Gt(i, v) => cmp_field(&get(*i), v) == Some(Ordering::Greater),
            CompiledPred::Ge(i, v) => {
                matches!(cmp_field(&get(*i), v), Some(Ordering::Greater | Ordering::Equal))
            }
            CompiledPred::Like(i, p) => {
                let f = get(*i);
                !f.is_empty() && like_match(p, &f)
            }
            CompiledPred::StartsWith(i, p) => {
                let f = get(*i);
                !f.is_empty() && f.starts_with(p.as_str())
            }
            CompiledPred::EndsWith(i, p) => {
                let f = get(*i);
                !f.is_empty() && f.ends_with(p.as_str())
            }
            CompiledPred::Contains(i, p) => {
                let f = get(*i);
                !f.is_empty() && f.contains(p.as_str())
            }
            CompiledPred::In(i, vs) => {
                let f = get(*i);
                vs.iter().any(|v| eq_field(&f, v))
            }
            CompiledPred::IsNull(i) => get(*i).is_empty(),
            CompiledPred::IsNotNull(i) => !get(*i).is_empty(),
            CompiledPred::And(a, b) => a.eval_with(get) && b.eval_with(get),
            CompiledPred::Or(a, b) => a.eval_with(get) || b.eval_with(get),
            CompiledPred::Not(a) => !a.eval_with(get),
        }
    }

    /// Largest field index this predicate reads.
    fn max_index(&self, m: &mut usize) {
        match self {
            CompiledPred::Eq(i, _)
            | CompiledPred::Ne(i, _)
            | CompiledPred::Lt(i, _)
            | CompiledPred::Le(i, _)
            | CompiledPred::Gt(i, _)
            | CompiledPred::Ge(i, _)
            | CompiledPred::Like(i, _)
            | CompiledPred::StartsWith(i, _)
            | CompiledPred::EndsWith(i, _)
            | CompiledPred::Contains(i, _)
            | CompiledPred::In(i, _)
            | CompiledPred::IsNull(i)
            | CompiledPred::IsNotNull(i) => *m = (*m).max(*i),
            CompiledPred::And(a, b) | CompiledPred::Or(a, b) => {
                a.max_index(m);
                b.max_index(m);
            }
            CompiledPred::Not(a) => a.max_index(m),
        }
    }
}

/// A [`PushdownSpec`] resolved against a concrete file schema, ready for
/// record-rate evaluation.
#[derive(Debug, Clone)]
pub struct CompiledSpec {
    /// Projected field indices in output order; `None` = all fields.
    projection: Option<Vec<usize>>,
    pred: Option<CompiledPred>,
    /// Number of leading fields selection + projection actually read; the
    /// per-record parse stops there.
    parse_bound: usize,
    /// Whether the object's first record is a header row.
    pub has_header: bool,
}

impl CompiledSpec {
    /// Resolve `spec` against the object's column list (in file order).
    pub fn compile(spec: &PushdownSpec, header: &[String]) -> Result<CompiledSpec> {
        let projection = match &spec.columns {
            None => None,
            Some(cols) => Some(
                cols.iter()
                    .map(|c| resolve(header, c))
                    .collect::<Result<Vec<usize>>>()?,
            ),
        };
        let pred = spec
            .predicate
            .as_ref()
            .map(|p| compile_pred(p, header))
            .transpose()?;
        let mut max = None::<usize>;
        if let Some(p) = &pred {
            let mut m = 0;
            p.max_index(&mut m);
            max = Some(m);
        }
        if let Some(idx) = &projection {
            for &i in idx {
                max = Some(max.map_or(i, |m| m.max(i)));
            }
        }
        let parse_bound = max.map_or(0, |m| m.saturating_add(1));
        Ok(CompiledSpec { projection, pred, parse_bound, has_header: spec.has_header })
    }

    /// Evaluate the selection on parsed fields.
    pub fn matches(&self, fields: &[Cow<'_, str>]) -> bool {
        self.pred.as_ref().is_none_or(|p| {
            p.eval_with(&|i| Cow::Borrowed(fields.get(i).map(|c| c.as_ref()).unwrap_or("")))
        })
    }

    /// Evaluate the selection on a zero-copy record view.
    pub fn matches_view(&self, view: &RecordView<'_, '_>) -> bool {
        self.pred
            .as_ref()
            .is_none_or(|p| p.eval_with(&|i| view.text(i).unwrap_or(Cow::Borrowed(""))))
    }

    /// Parse a raw record; when it passes selection, append the projected
    /// record to `out` and return true. Allocation-free except for malformed
    /// (escaped/stray) fields; `buf` is the caller's reusable parse state.
    pub fn filter_record_buf(&self, record: &[u8], buf: &mut FieldBuf, out: &mut Vec<u8>) -> bool {
        let view = buf.parse_bounded(record, self.parse_bound);
        if !self.matches_view(&view) {
            return false;
        }
        match &self.projection {
            None => {
                out.extend_from_slice(record);
                out.push(b'\n');
            }
            Some(idx) => {
                // A single projected NULL field must not serialize to a
                // blank line (readers skip those): quote it, matching
                // `record::write_record`.
                if idx.len() == 1
                    && view.bytes(idx[0]).map(|b| b.is_empty()).unwrap_or(true)
                {
                    out.extend_from_slice(b"\"\"\n");
                    return true;
                }
                for (k, &i) in idx.iter().enumerate() {
                    if k > 0 {
                        out.push(b',');
                    }
                    emit_field(&view, i, out);
                }
                out.push(b'\n');
            }
        }
        true
    }

    /// One-shot variant of [`CompiledSpec::filter_record_buf`].
    pub fn filter_record(&self, record: &[u8], out: &mut Vec<u8>) -> bool {
        let mut buf = FieldBuf::default();
        self.filter_record_buf(record, &mut buf, out)
    }
}

/// Append field `i` of `view` to `out`, preserving the original bytes
/// whenever their raw form is safe to re-parse.
fn emit_field(view: &RecordView<'_, '_>, i: usize, out: &mut Vec<u8>) {
    let Some(span) = view.span(i) else {
        return; // absent field → empty
    };
    let raw = &view.raw()[span.start..span.end];
    if span.quoted {
        if span.is_simple() {
            // Cleanly quoted in the input: ship the original bytes, quotes
            // and all.
            out.extend_from_slice(raw);
            return;
        }
    } else if scan::find_byte2(raw, b'"', b'\r').is_none() {
        // Plain field with no byte that could confuse a re-parse (commas and
        // newlines cannot occur inside an unquoted span by construction).
        out.extend_from_slice(raw);
        return;
    }
    // Malformed or risky raw form: re-render with canonical quoting. For a
    // well-formed doubled-quote escape this reproduces the input bytes
    // exactly; only RFC-violating fields are normalized.
    if let Some(t) = view.text(i) {
        write_field(out, &t);
    }
}

/// Cumulative statistics from a [`StreamFilter`] run; the storlet engine
/// reports these for resource accounting and selectivity measurement.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FilterStats {
    /// Raw bytes consumed (including records that were discarded).
    pub bytes_in: u64,
    /// Filtered bytes produced.
    pub bytes_out: u64,
    /// Records examined (excluding a consumed header row).
    pub records_in: u64,
    /// Records that passed selection.
    pub records_out: u64,
}

impl FilterStats {
    /// Fraction of input bytes discarded — the paper's "query data selectivity".
    pub fn data_selectivity(&self) -> f64 {
        if self.bytes_in == 0 {
            0.0
        } else {
            1.0 - self.bytes_out as f64 / self.bytes_in as f64
        }
    }
}

/// Stateful, chunk-at-a-time filter over a CSV byte stream.
///
/// Drives [`RecordSplitter`] + [`CompiledSpec`]; this is the storlet's
/// `invoke()` body. When `consume_header` is true the first record of the
/// stream is treated as the header row and dropped (the compute side already
/// knows the schema; pushdown responses carry pure data records).
pub struct StreamFilter {
    compiled: CompiledSpec,
    splitter: RecordSplitter,
    fields: FieldBuf,
    header_pending: bool,
    stats: FilterStats,
}

impl StreamFilter {
    /// Create a filter. `range_starts_at_zero` tells the filter whether the
    /// header row (if the object has one) is present at the stream start.
    pub fn new(compiled: CompiledSpec, range_starts_at_zero: bool) -> Self {
        let header_pending = compiled.has_header && range_starts_at_zero;
        StreamFilter {
            compiled,
            splitter: RecordSplitter::new(),
            fields: FieldBuf::default(),
            header_pending,
            stats: FilterStats::default(),
        }
    }

    /// Feed a chunk; filtered output is appended to `out`. Fails when a
    /// single record exceeds the splitter's record-size cap.
    pub fn push(&mut self, chunk: &[u8], out: &mut Vec<u8>) -> Result<()> {
        self.stats.bytes_in += chunk.len() as u64;
        let compiled = &self.compiled;
        let fields = &mut self.fields;
        let stats = &mut self.stats;
        let header_pending = &mut self.header_pending;
        let before = out.len();
        let res = self.splitter.push(chunk, |record| {
            if *header_pending {
                *header_pending = false;
                return;
            }
            stats.records_in += 1;
            if compiled.filter_record_buf(record, fields, out) {
                stats.records_out += 1;
            }
        });
        self.stats.bytes_out += (out.len() - before) as u64;
        res
    }

    /// Flush the trailing record and return cumulative statistics.
    pub fn finish(self, out: &mut Vec<u8>) -> FilterStats {
        let StreamFilter { compiled, splitter, mut fields, mut header_pending, mut stats } = self;
        let before = out.len();
        splitter.finish(|record| {
            if header_pending {
                header_pending = false;
                return;
            }
            stats.records_in += 1;
            if compiled.filter_record_buf(record, &mut fields, out) {
                stats.records_out += 1;
            }
        });
        stats.bytes_out += (out.len() - before) as u64;
        stats
    }
}

/// Convenience: filter an entire in-memory buffer.
///
/// ```
/// use scoop_csv::{filter::filter_buffer, Predicate, PushdownSpec, Value};
/// let spec = PushdownSpec {
///     columns: Some(vec!["vid".into()]),
///     predicate: Some(Predicate::Eq("city".into(), Value::Str("Paris".into()))),
///     has_header: true,
/// };
/// let header = vec!["vid".to_string(), "city".to_string()];
/// let data = b"vid,city\nm1,Paris\nm2,Nice\n";
/// let (out, stats) = filter_buffer(&spec, &header, data, true).unwrap();
/// assert_eq!(out, b"m1\n");
/// assert_eq!(stats.records_out, 1);
/// ```
pub fn filter_buffer(
    spec: &PushdownSpec,
    header: &[String],
    data: &[u8],
    range_starts_at_zero: bool,
) -> Result<(Vec<u8>, FilterStats)> {
    let compiled = CompiledSpec::compile(spec, header)?;
    let mut f = StreamFilter::new(compiled, range_starts_at_zero);
    let mut out = Vec::new();
    f.push(data, &mut out)?;
    let stats = f.finish(&mut out);
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Vec<String> {
        ["vid", "date", "index", "city", "state"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    const DATA: &[u8] = b"vid,date,index,city,state\n\
        m1,2015-01-03 10:00:00,100.5,Rotterdam,NLD\n\
        m2,2015-01-04 11:00:00,200.0,Paris,FRA\n\
        m3,2015-02-01 09:00:00,50.0,Utrecht,NLD\n\
        m4,2015-01-09 09:30:00,,Rotterdam,NLD\n";

    fn run(spec: PushdownSpec) -> (String, FilterStats) {
        let (out, stats) = filter_buffer(&spec, &header(), DATA, true).unwrap();
        (String::from_utf8(out).unwrap(), stats)
    }

    #[test]
    fn passthrough_drops_only_header() {
        let (out, stats) = run(PushdownSpec {
            has_header: true,
            ..PushdownSpec::passthrough()
        });
        assert_eq!(out.lines().count(), 4);
        assert_eq!(stats.records_in, 4);
        assert_eq!(stats.records_out, 4);
        assert!(!out.contains("vid,date"));
    }

    #[test]
    fn like_selection_on_date() {
        let spec = PushdownSpec {
            columns: None,
            predicate: Some(Predicate::Like("date".into(), "2015-01%".into())),
            has_header: true,
        };
        let (out, stats) = run(spec);
        assert_eq!(stats.records_out, 3);
        assert!(!out.contains("2015-02"));
    }

    #[test]
    fn projection_reorders_columns() {
        let spec = PushdownSpec {
            columns: Some(vec!["index".into(), "vid".into()]),
            predicate: Some(Predicate::Eq("city".into(), Value::Str("Paris".into()))),
            has_header: true,
        };
        let (out, _) = run(spec);
        assert_eq!(out, "200.0,m2\n");
    }

    #[test]
    fn numeric_comparison_and_null_semantics() {
        let gt = PushdownSpec {
            columns: Some(vec!["vid".into()]),
            predicate: Some(Predicate::Gt("index".into(), Value::Float(99.0))),
            has_header: true,
        };
        let (out, _) = run(gt);
        // m4's empty index is NULL → excluded even though Rotterdam.
        assert_eq!(out, "m1\nm2\n");

        let isnull = PushdownSpec {
            columns: Some(vec!["vid".into()]),
            predicate: Some(Predicate::IsNull("index".into())),
            has_header: true,
        };
        assert_eq!(run(isnull).0, "m4\n");

        // NOT (index > 99) still excludes NULL under... note: our NOT is
        // boolean (two-valued), so NULL rows *pass* NOT. Catalyst never pushes
        // NOT over nullable comparisons for this reason; the planner in
        // scoop-sql mirrors that restriction.
        let ne = PushdownSpec {
            columns: Some(vec!["vid".into()]),
            predicate: Some(Predicate::Ne("index".into(), Value::Float(100.5))),
            has_header: true,
        };
        assert_eq!(run(ne).0, "m2\nm3\n");
    }

    #[test]
    fn in_and_string_ops() {
        let spec = PushdownSpec {
            columns: Some(vec!["vid".into()]),
            predicate: Some(Predicate::In(
                "state".into(),
                vec![Value::Str("FRA".into()), Value::Str("DEU".into())],
            )),
            has_header: true,
        };
        assert_eq!(run(spec).0, "m2\n");

        let sw = PushdownSpec {
            columns: Some(vec!["vid".into()]),
            predicate: Some(Predicate::StartsWith("city".into(), "Rot".into())),
            has_header: true,
        };
        assert_eq!(run(sw).0, "m1\nm4\n");

        let ct = PushdownSpec {
            columns: Some(vec!["vid".into()]),
            predicate: Some(Predicate::Contains("city".into(), "tre".into())),
            has_header: true,
        };
        assert_eq!(run(ct).0, "m3\n");
    }

    #[test]
    fn selectivity_reported() {
        let spec = PushdownSpec {
            columns: Some(vec!["vid".into()]),
            predicate: Some(Predicate::Eq("vid".into(), Value::Str("m1".into()))),
            has_header: true,
        };
        let (_, stats) = run(spec);
        assert!(stats.data_selectivity() > 0.9, "{stats:?}");
        assert_eq!(stats.records_in, 4);
        assert_eq!(stats.records_out, 1);
    }

    #[test]
    fn range_not_at_zero_keeps_all_records() {
        // When the byte range starts mid-object there is no header to drop.
        let body = b"m9,2015-01-01 00:00:00,1.0,Nice,FRA\n";
        let spec = PushdownSpec { has_header: true, ..Default::default() };
        let (out, stats) = filter_buffer(&spec, &header(), body, false).unwrap();
        assert_eq!(out, body);
        assert_eq!(stats.records_in, 1);
    }

    #[test]
    fn unknown_column_fails_compile() {
        let spec = PushdownSpec {
            columns: Some(vec!["ghost".into()]),
            predicate: None,
            has_header: true,
        };
        assert!(CompiledSpec::compile(&spec, &header()).is_err());
    }

    #[test]
    fn chunked_push_equals_whole_buffer() {
        let spec = PushdownSpec {
            columns: Some(vec!["vid".into(), "city".into()]),
            predicate: Some(Predicate::Like("date".into(), "2015-01%".into())),
            has_header: true,
        };
        let (whole, ws) = filter_buffer(&spec, &header(), DATA, true).unwrap();
        for chunk in [1usize, 3, 8, 17] {
            let compiled = CompiledSpec::compile(&spec, &header()).unwrap();
            let mut f = StreamFilter::new(compiled, true);
            let mut out = Vec::new();
            for c in DATA.chunks(chunk) {
                f.push(c, &mut out).unwrap();
            }
            let stats = f.finish(&mut out);
            assert_eq!(out, whole, "chunk={chunk}");
            assert_eq!(stats.records_out, ws.records_out);
            assert_eq!(stats.bytes_in, ws.bytes_in);
            assert_eq!(stats.bytes_out, ws.bytes_out);
        }
    }

    /// The byte-fidelity contract: every record (and projected field) in the
    /// output is an untouched slice of the input.
    #[test]
    fn output_round_trips_original_bytes() {
        // `2` must not become `2.0`; original quoting must survive.
        let header: Vec<String> = ["id", "val", "note"].iter().map(|s| s.to_string()).collect();
        let data: &[u8] = b"id,val,note\n\
            a,2,\"Rot,terdam\"\n\
            b,3.50,\"say \"\"hi\"\"\"\n\
            c,2,plain\n";
        let spec = PushdownSpec {
            columns: None,
            predicate: Some(Predicate::Eq("val".into(), Value::Int(2))),
            has_header: true,
        };
        let (out, _) = filter_buffer(&spec, &header, data, true).unwrap();
        assert_eq!(out, b"a,2,\"Rot,terdam\"\nc,2,plain\n".to_vec());
        // Every output record is a verbatim sub-slice of the input.
        for line in out.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            assert!(
                data.windows(line.len()).any(|w| w == line),
                "output record {:?} not found in input",
                String::from_utf8_lossy(line)
            );
        }
    }

    #[test]
    fn projection_preserves_original_field_bytes() {
        let header: Vec<String> = ["id", "val", "note"].iter().map(|s| s.to_string()).collect();
        let data: &[u8] = b"id,val,note\n\
            a,2,\"Rot,terdam\"\n\
            b,007,\"say \"\"hi\"\"\"\n";
        let spec = PushdownSpec {
            columns: Some(vec!["note".into(), "val".into()]),
            predicate: None,
            has_header: true,
        };
        let (out, _) = filter_buffer(&spec, &header, data, true).unwrap();
        // Quoted fields keep their exact original rendering (including the
        // doubled-quote escape), numerics keep leading zeros.
        assert_eq!(out, b"\"Rot,terdam\",2\n\"say \"\"hi\"\"\",007\n".to_vec());
    }
}
