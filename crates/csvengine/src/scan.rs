//! SWAR (SIMD-within-a-register) byte scanning primitives.
//!
//! The CSV hot loops need exactly one operation: "find the next occurrence
//! of one of these delimiter bytes". The portable way to do that at close to
//! memory bandwidth without platform intrinsics is the classic memchr trick:
//! broadcast the needle into a 64-bit word, XOR against 8 input bytes at a
//! time, and use the `(x - 0x01..) & !x & 0x80..` zero-byte test to locate a
//! match. Everything here is safe code — `chunks_exact(8)` +
//! `u64::from_le_bytes` compiles to a single unaligned load.
//!
//! These functions are the only byte-searching code the record splitter,
//! field parser, ranged streams, and storlet filter use; keeping them in one
//! module makes the differential proptest surface (new SWAR path vs the
//! per-byte reference) small and auditable.

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// Broadcast one byte into all 8 lanes of a word.
#[inline(always)]
const fn broadcast(b: u8) -> u64 {
    LO * b as u64
}

/// Nonzero iff some byte of `x` is zero; the high bit of each zero lane is
/// set in the result (Mycroft's zero-in-word test).
#[inline(always)]
const fn zero_lanes(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

/// Byte index of the first marked lane (little-endian: lowest address first).
#[inline(always)]
const fn first_lane(mask: u64) -> usize {
    (mask.trailing_zeros() / 8) as usize
}

/// Exact mask of lanes equal to `needle` (high bit set in each matching
/// lane). Unlike [`zero_lanes`] — whose borrow can leak into the lane above
/// a match, which is harmless when only the *first* hit is consumed — this
/// test has no inter-lane carries, so callers may iterate **all** set lanes.
#[inline(always)]
pub(crate) const fn match_lanes(word: u64, needle: u8) -> u64 {
    let x = word ^ broadcast(needle);
    // (x & 0x7F..) + 0x7F.. sets a lane's high bit iff its low 7 bits are
    // nonzero; OR-ing x back in covers lanes with the high bit set. The
    // complement therefore marks exactly the zero lanes.
    let sub = (x & !HI).wrapping_add(!HI);
    !(sub | x | !HI)
}

/// Load 8 bytes as a little-endian word (first byte in the low lane).
#[inline(always)]
pub(crate) fn load_word(chunk: &[u8]) -> u64 {
    u64::from_le_bytes([
        chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
    ])
}

/// Byte index of a marked lane within the word (little-endian).
#[inline(always)]
pub(crate) const fn lane_index(mask: u64) -> usize {
    (mask.trailing_zeros() / 8) as usize
}

/// Find the first occurrence of `n1` in `haystack`, 8 bytes per step.
#[inline]
pub fn find_byte(haystack: &[u8], n1: u8) -> Option<usize> {
    let b1 = broadcast(n1);
    let mut offset = 0usize;
    let mut chunks = haystack.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes([
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
        ]);
        let hits = zero_lanes(word ^ b1);
        if hits != 0 {
            return Some(offset + first_lane(hits));
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n1)
        .map(|p| offset + p)
}

/// Find the first occurrence of `n1` *or* `n2`, 8 bytes per step.
#[inline]
pub fn find_byte2(haystack: &[u8], n1: u8, n2: u8) -> Option<usize> {
    let b1 = broadcast(n1);
    let b2 = broadcast(n2);
    let mut offset = 0usize;
    let mut chunks = haystack.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes([
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
        ]);
        let hits = zero_lanes(word ^ b1) | zero_lanes(word ^ b2);
        if hits != 0 {
            return Some(offset + first_lane(hits));
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n1 || b == n2)
        .map(|p| offset + p)
}

/// Find the first occurrence of `n1`, `n2` or `n3`, 8 bytes per step.
#[inline]
pub fn find_byte3(haystack: &[u8], n1: u8, n2: u8, n3: u8) -> Option<usize> {
    let b1 = broadcast(n1);
    let b2 = broadcast(n2);
    let b3 = broadcast(n3);
    let mut offset = 0usize;
    let mut chunks = haystack.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes([
            chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
        ]);
        let hits = zero_lanes(word ^ b1) | zero_lanes(word ^ b2) | zero_lanes(word ^ b3);
        if hits != 0 {
            return Some(offset + first_lane(hits));
        }
        offset += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n1 || b == n2 || b == n3)
        .map(|p| offset + p)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Per-byte reference the SWAR implementations must match exactly.
    fn reference(haystack: &[u8], needles: &[u8]) -> Option<usize> {
        haystack.iter().position(|b| needles.contains(b))
    }

    #[test]
    fn matches_reference_on_edges() {
        let cases: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"abcdefg".to_vec(),
            b"abcdefgh".to_vec(),
            b"abcdefghi".to_vec(),
            b"\n".to_vec(),
            vec![b'x'; 7],
            vec![b'x'; 8],
            vec![b'x'; 9],
            vec![b'x'; 31],
        ];
        for mut case in cases {
            assert_eq!(find_byte(&case, b'\n'), reference(&case, b"\n"));
            assert_eq!(find_byte2(&case, b'\n', b'"'), reference(&case, b"\n\""));
            assert_eq!(
                find_byte3(&case, b'\n', b'"', b','),
                reference(&case, b"\n\",")
            );
            // Plant each needle at every position and re-check.
            for i in 0..case.len() {
                let orig = case[i];
                for needle in [b'\n', b'"', b','] {
                    case[i] = needle;
                    assert_eq!(find_byte(&case, needle), reference(&case, &[needle]));
                    assert_eq!(
                        find_byte2(&case, b'\n', b'"'),
                        reference(&case, b"\n\""),
                    );
                    assert_eq!(
                        find_byte3(&case, b'\n', b'"', b','),
                        reference(&case, b"\n\","),
                    );
                }
                case[i] = orig;
            }
        }
    }

    #[test]
    fn finds_first_of_several() {
        let data = b"aaaa,bbb\"b\ncc";
        assert_eq!(find_byte(data, b'\n'), Some(10));
        assert_eq!(find_byte2(data, b'\n', b'"'), Some(8));
        assert_eq!(find_byte3(data, b'\n', b'"', b','), Some(4));
        assert_eq!(find_byte(data, b'z'), None);
    }

    #[test]
    fn match_lanes_is_exact_on_every_lane() {
        // zero_lanes' borrow false-positive case: a lane one greater than
        // the needle sitting directly above a match (e.g. '-' = ',' + 1
        // right after a comma). match_lanes must flag only true matches.
        let mut data = *b"12,-4,,x";
        let word = load_word(&data);
        let m = match_lanes(word, b',');
        let got: Vec<usize> = (0..8).filter(|&i| m & (0x80u64 << (8 * i)) != 0).collect();
        assert_eq!(got, vec![2, 5, 6]);
        // Exhaustive sweep: every byte value in every lane, no false hits.
        for lane in 0..8 {
            for v in 0u8..=255 {
                data = *b"\x00\x2B\x2C\x2D\x7F\x80\xFF\x2C";
                data[lane] = v;
                let m = match_lanes(load_word(&data), b',');
                for i in 0..8 {
                    let flagged = m & (0x80u64 << (8 * i)) != 0;
                    assert_eq!(flagged, data[i] == b',', "lane {i} of {data:?}");
                }
            }
        }
    }

    #[test]
    fn high_bit_bytes_do_not_confuse_the_lane_test() {
        // 0x80/0xFF neighbours are the classic false-positive risk for the
        // zero-lane trick; the subtraction borrow must not leak across lanes.
        let data = [0xFFu8, 0x80, 0x7F, 0x01, 0x00, 0xFE, b'\n', 0x80, 0xFF];
        assert_eq!(find_byte(&data, b'\n'), Some(6));
        assert_eq!(find_byte(&data, 0x00), Some(4));
        assert_eq!(find_byte(&data, 0xFF), Some(0));
        assert_eq!(find_byte2(&data, 0x01, 0xFE), Some(3));
    }
}
