//! Record-aligned byte-range splits.
//!
//! Spark/Hadoop partition a CSV object into fixed-size byte ranges and each
//! task must read a *record-aligned* view of its range so that every record is
//! processed exactly once across all tasks. The paper extended the Storlet
//! middleware to run filters "at storage nodes for byte ranges" under exactly
//! this contract; this module implements it.
//!
//! ## Ownership contract (Hadoop `LineRecordReader` semantics)
//!
//! For a split `[s, e)` over an object of `len` bytes, the split owns the
//! records whose starting offset `p` satisfies:
//!
//! * `p == 0 && s == 0` (the first record belongs to the first split), or
//! * `s < p <= e`.
//!
//! A record straddling the end of a split is therefore read past `e` by the
//! owning split, and a record starting exactly at `s > 0` belongs to the
//! *previous* split. Like Hadoop, split alignment scans for raw newlines and
//! assumes records do not contain embedded (quoted) newlines; whole-object
//! reads through [`crate::reader::CsvReader`] have no such restriction.

use crate::scan;

/// Find the byte index of the first `\n` at or after `from`, if any.
fn find_newline(data: &[u8], from: usize) -> Option<usize> {
    scan::find_byte(data.get(from..)?, b'\n').map(|p| from + p)
}

/// Compute the record-aligned byte range `[a, b)` for logical split
/// `[start, end)` of `data`, honouring the ownership contract above.
///
/// The returned range contains only whole records; it may be empty when the
/// split owns no record.
pub fn aligned_range(data: &[u8], start: u64, end: u64) -> (usize, usize) {
    let len = data.len();
    let s = (start.min(len as u64)) as usize;
    let a = if s == 0 {
        0
    } else {
        match find_newline(data, s) {
            Some(nl) => nl + 1,
            None => len,
        }
    };
    let b = if end >= len as u64 {
        len
    } else {
        match find_newline(data, end as usize) {
            Some(nl) => nl + 1,
            None => len,
        }
    };
    (a, b.max(a))
}

/// Extract the record-aligned slice for split `[start, end)`.
pub fn aligned_slice(data: &[u8], start: u64, end: u64) -> &[u8] {
    let (a, b) = aligned_range(data, start, end);
    &data[a..b]
}

/// Plan logical splits of `total_len` bytes into chunks of `chunk_size`.
///
/// Mirrors Hadoop partition discovery: the object is divided by the configured
/// chunk size (the HDFS block size in the paper, which notes this constant is
/// "not adapted to object stores" — see the ablation bench).
pub fn plan_splits(total_len: u64, chunk_size: u64) -> Vec<(u64, u64)> {
    assert!(chunk_size > 0, "chunk size must be positive");
    if total_len == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(total_len.div_ceil(chunk_size) as usize);
    let mut s = 0u64;
    while s < total_len {
        let e = (s + chunk_size).min(total_len);
        out.push((s, e));
        s = e;
    }
    out
}

/// Streaming record iterator over a byte stream that starts at absolute
/// object offset `start`, honouring the split-ownership contract above and
/// **stopping the input early** once past `end` — the client-side (Hadoop
/// `LineRecordReader`) counterpart of the storlet's ranged execution.
pub struct RangedRecordStream {
    input: Option<scoop_common::ByteStream>,
    buf: Vec<u8>,
    /// Absolute offset of `buf[0]`.
    offset: u64,
    aligned: bool,
    /// Inclusive end of the logical range (None = EOF).
    end: Option<u64>,
    queue: std::collections::VecDeque<Vec<u8>>,
    done: bool,
}

impl RangedRecordStream {
    /// Create over a stream whose first byte is object offset `start`;
    /// `end` is the *exclusive* logical split end: the stream owns records
    /// whose start offset `p` satisfies `start < p <= end` (plus `p == 0`
    /// when `start == 0`), exactly matching [`aligned_range`].
    pub fn new(input: scoop_common::ByteStream, start: u64, end: Option<u64>) -> Self {
        RangedRecordStream {
            input: Some(input),
            buf: Vec::new(),
            offset: start,
            aligned: start == 0,
            end,
            queue: std::collections::VecDeque::new(),
            done: false,
        }
    }

    /// Drain complete records from `buf` into the queue. Returns true when
    /// the range end has been passed.
    ///
    /// Scans with an index cursor and drains the consumed prefix **once** at
    /// the end — the old per-record `Vec::drain` made this loop quadratic in
    /// records-per-chunk.
    fn drain(&mut self) -> bool {
        let mut pos = 0usize;
        let mut past_end = false;
        loop {
            if !self.aligned {
                match scan::find_byte(&self.buf[pos..], b'\n') {
                    Some(nl) => {
                        pos += nl + 1;
                        self.aligned = true;
                    }
                    None => {
                        // Everything so far precedes our first owned record.
                        pos = self.buf.len();
                        break;
                    }
                }
                continue;
            }
            // Absolute offset of the record starting at the cursor.
            let rec_off = self.offset + pos as u64;
            if let Some(end) = self.end {
                if rec_off > end {
                    past_end = true;
                    break;
                }
            }
            match scan::find_byte(&self.buf[pos..], b'\n') {
                None => break,
                Some(nl) => {
                    let mut rec_end = pos + nl;
                    if rec_end > pos && self.buf[rec_end - 1] == b'\r' {
                        rec_end -= 1;
                    }
                    if rec_end > pos {
                        self.queue.push_back(self.buf[pos..rec_end].to_vec());
                    }
                    pos += nl + 1;
                }
            }
        }
        self.offset += pos as u64;
        if pos > 0 {
            self.buf.drain(..pos);
        }
        past_end
    }

    fn drain_tail(&mut self) {
        if self.buf.is_empty() || !self.aligned {
            self.buf.clear();
            return;
        }
        if let Some(end) = self.end {
            if self.offset > end {
                self.buf.clear();
                return;
            }
        }
        let mut rec_end = self.buf.len();
        if self.buf[rec_end - 1] == b'\r' {
            rec_end -= 1;
        }
        if rec_end > 0 {
            self.queue.push_back(self.buf[..rec_end].to_vec());
        }
        self.buf.clear();
    }
}

impl Iterator for RangedRecordStream {
    type Item = scoop_common::Result<Vec<u8>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(r) = self.queue.pop_front() {
                return Some(Ok(r));
            }
            if self.done {
                return None;
            }
            match self.input.as_mut().and_then(Iterator::next) {
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e));
                }
                Some(Ok(chunk)) => {
                    self.buf.extend_from_slice(&chunk);
                    if self.drain() {
                        self.done = true;
                        self.input = None;
                    }
                }
                None => {
                    self.drain_tail();
                    self.done = true;
                    self.input = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::split_records;

    #[test]
    fn ranged_stream_matches_aligned_slice() {
        let data: Vec<u8> = (0..50)
            .flat_map(|i| format!("rec-{i},val{}\n", i * 2).into_bytes())
            .collect();
        for chunk in [8u64, 17, 40, 200] {
            for (s, e) in plan_splits(data.len() as u64, chunk) {
                let reference = split_records(aligned_slice(&data, s, e));
                let stream = scoop_common::stream::chunked(
                    bytes::Bytes::from(data[s as usize..].to_vec()),
                    13,
                );
                let got: Vec<Vec<u8>> = RangedRecordStream::new(stream, s, Some(e))
                    .collect::<scoop_common::Result<_>>()
                    .unwrap();
                assert_eq!(got, reference, "split=({s},{e}) chunk={chunk}");
            }
        }
    }

    #[test]
    fn ranged_stream_stops_early() {
        let data: Vec<u8> = (0..10_000)
            .flat_map(|i| format!("row-{i}\n").into_bytes())
            .collect();
        let (stream, counter) = scoop_common::stream::StreamExt::counted(
            scoop_common::stream::chunked(bytes::Bytes::from(data), 512),
        );
        let rows: Vec<Vec<u8>> = RangedRecordStream::new(stream, 0, Some(100))
            .collect::<scoop_common::Result<_>>()
            .unwrap();
        assert!(!rows.is_empty());
        assert!(counter.get() < 5_000, "consumed {} bytes", counter.get());
    }

    fn lines(data: &[u8], splits: &[(u64, u64)]) -> Vec<Vec<u8>> {
        let mut all = Vec::new();
        for &(s, e) in splits {
            all.extend(split_records(aligned_slice(data, s, e)));
        }
        all
    }

    #[test]
    fn single_split_covers_everything() {
        let data = b"a\nbb\nccc\n";
        assert_eq!(aligned_range(data, 0, data.len() as u64), (0, data.len()));
    }

    #[test]
    fn straddling_record_belongs_to_left_split() {
        // Records: "aaaa"(0..5), "bbbb"(5..10), "cc"(10..13)
        let data = b"aaaa\nbbbb\ncc\n";
        // Split cuts mid-"bbbb": left split owns it.
        let left = aligned_slice(data, 0, 7);
        let right = aligned_slice(data, 7, data.len() as u64);
        assert_eq!(left, b"aaaa\nbbbb\n");
        assert_eq!(right, b"cc\n");
    }

    #[test]
    fn record_starting_exactly_at_split_start_belongs_to_previous() {
        let data = b"aaaa\nbbbb\ncc\n";
        // "bbbb" starts at offset 5; split boundary at 5 → previous owns it.
        let left = aligned_slice(data, 0, 5);
        let right = aligned_slice(data, 5, data.len() as u64);
        assert_eq!(left, b"aaaa\nbbbb\n");
        assert_eq!(right, b"cc\n");
    }

    #[test]
    fn empty_middle_split_is_fine() {
        let data = b"a-very-long-single-record-with-no-newline";
        let splits = plan_splits(data.len() as u64, 10);
        let all = lines(data, &splits);
        assert_eq!(all, vec![data.to_vec()]);
    }

    #[test]
    fn no_trailing_newline_last_record_owned_once() {
        let data = b"one\ntwo\nthree";
        for chunk in 1..=(data.len() as u64 + 3) {
            let splits = plan_splits(data.len() as u64, chunk);
            let all = lines(data, &splits);
            assert_eq!(
                all,
                vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()],
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn plan_splits_covers_exactly() {
        assert_eq!(plan_splits(0, 10), Vec::<(u64, u64)>::new());
        assert_eq!(plan_splits(25, 10), vec![(0, 10), (10, 20), (20, 25)]);
        assert_eq!(plan_splits(10, 10), vec![(0, 10)]);
        let splits = plan_splits(1_000_003, 4096);
        assert_eq!(splits.first().unwrap().0, 0);
        assert_eq!(splits.last().unwrap().1, 1_000_003);
        for w in splits.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }
}
