//! Zero-copy field views over a raw CSV record.
//!
//! [`FieldBuf::parse`] scans a record once with the SWAR primitives from
//! [`crate::scan`] and produces a [`RecordView`]: per-field byte spans into
//! the original record, with **lazy** typed access. Nothing is allocated for
//! plain (unquoted, valid-UTF-8) fields — the common case by far — and the
//! span buffer itself is reusable across records, so a tight filter loop
//! does zero heap traffic per record.
//!
//! ## Malformed-input tolerance
//!
//! Real objects contain CSV that RFC 4180 forbids. The semantics here are
//! deliberately tolerant and match the engine's historical behaviour:
//!
//! * an unterminated quote runs to the end of the record;
//! * unquoted fields may contain literal `"` bytes (taken verbatim);
//! * bytes between a closing quote and the next comma are **preserved** by
//!   concatenation (`"a"tail,…` → `atail`) rather than silently dropped —
//!   each such occurrence is counted in the
//!   [`STRAY_BYTES_METRIC`] telemetry counter so malformed input is visible.

use crate::scan;
use scoop_common::telemetry::{self, Counter};
use std::borrow::Cow;
use std::sync::OnceLock;

/// Registry name of the counter tracking bytes found between a closing
/// quote and the next delimiter (RFC-4180 violations we tolerate).
pub const STRAY_BYTES_METRIC: &str = "scoop_csv_stray_bytes_total";

fn stray_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| telemetry::counter(STRAY_BYTES_METRIC))
}

/// One field's location inside a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpan {
    /// Raw span start (inclusive) — for quoted fields this is the opening
    /// quote itself.
    pub start: usize,
    /// Raw span end (exclusive) — past the closing quote and any tolerated
    /// stray bytes, up to (not including) the delimiting comma.
    pub end: usize,
    /// The field began with a `"`.
    pub quoted: bool,
    /// The semantic value is **not** a plain sub-slice of the record: the
    /// field has doubled-quote escapes, stray bytes after the closing quote,
    /// or an unterminated quote. Only ever true for quoted fields.
    pub escaped: bool,
}

impl FieldSpan {
    /// True when the semantic bytes are exactly a borrowed sub-slice of the
    /// record (no unescaping required).
    #[inline]
    pub fn is_simple(&self) -> bool {
        !self.escaped
    }
}

/// Reusable parse state: owns the span table so repeated parses in a loop
/// reuse one allocation.
#[derive(Debug, Default)]
pub struct FieldBuf {
    spans: Vec<FieldSpan>,
}

impl FieldBuf {
    /// Parse every field of `record`.
    pub fn parse<'r, 'b>(&'b mut self, record: &'r [u8]) -> RecordView<'r, 'b> {
        self.parse_bounded(record, usize::MAX)
    }

    /// Parse at most the first `max_fields` fields of `record` (a predicate
    /// that only reads columns 0..k never pays for the rest of a wide row).
    /// Fields past the bound are simply absent from the view.
    pub fn parse_bounded<'r, 'b>(
        &'b mut self,
        record: &'r [u8],
        max_fields: usize,
    ) -> RecordView<'r, 'b> {
        self.spans.clear();
        if record.is_empty() || max_fields == 0 {
            return RecordView { record, spans: &self.spans };
        }
        // Quote-free records (the overwhelmingly common case) take a fused
        // single-pass scan; anything containing a '"' falls through to the
        // general quote-aware loop below.
        if self.parse_plain(record, max_fields) {
            return RecordView { record, spans: &self.spans };
        }
        let mut i = 0usize;
        loop {
            let start = i;
            if record.get(i) == Some(&b'"') {
                // Quoted field: find the closing quote, skipping doubled
                // ("" → ") escapes.
                let mut escaped = false;
                let mut closed = false;
                let mut j = i + 1;
                while j < record.len() {
                    match scan::find_byte(&record[j..], b'"') {
                        None => {
                            j = record.len();
                            break;
                        }
                        Some(q) => {
                            let at = j + q;
                            if record.get(at + 1) == Some(&b'"') {
                                escaped = true;
                                j = at + 2;
                            } else {
                                closed = true;
                                j = at + 1;
                                break;
                            }
                        }
                    }
                }
                if !closed {
                    // Unterminated quote: the remainder of the record is the
                    // field's content.
                    escaped = true;
                    j = record.len();
                } else {
                    // Tolerate (and count) stray bytes between the closing
                    // quote and the delimiter.
                    let stray_start = j;
                    match scan::find_byte(&record[j..], b',') {
                        Some(c) => j += c,
                        None => j = record.len(),
                    }
                    if j > stray_start {
                        escaped = true;
                        stray_counter().add((j - stray_start) as u64);
                    }
                }
                self.spans.push(FieldSpan { start, end: j, quoted: true, escaped });
                i = j;
            } else {
                // Plain field: runs to the next comma. Literal quotes later
                // in the field are content, matching historical tolerance.
                match scan::find_byte(&record[i..], b',') {
                    Some(c) => i += c,
                    None => i = record.len(),
                }
                self.spans.push(FieldSpan { start, end: i, quoted: false, escaped: false });
            }
            if self.spans.len() == max_fields || i >= record.len() {
                break;
            }
            i += 1; // consume the comma
            if i == record.len() {
                // Trailing comma → trailing empty field.
                self.spans.push(FieldSpan { start: i, end: i, quoted: false, escaped: false });
                break;
            }
        }
        RecordView { record, spans: &self.spans }
    }

    /// Fused single-pass field scan for records containing no `"` byte:
    /// one SWAR sweep yields every comma position (all lanes of each word,
    /// via the exact lane test) instead of one `find_byte` call — with its
    /// per-call setup — per field. Returns `false` with the span table
    /// cleared if a quote shows up anywhere; the caller's general loop then
    /// re-parses with full quote semantics. For quote-free input the spans
    /// produced are identical to the general loop's.
    fn parse_plain(&mut self, record: &[u8], max_fields: usize) -> bool {
        let mut start = 0usize;
        let mut base = 0usize;
        let mut chunks = record.chunks_exact(8);
        for chunk in &mut chunks {
            let word = scan::load_word(chunk);
            if scan::match_lanes(word, b'"') != 0 {
                self.spans.clear();
                return false;
            }
            let mut m = scan::match_lanes(word, b',');
            while m != 0 {
                let pos = base + scan::lane_index(m);
                self.spans.push(FieldSpan { start, end: pos, quoted: false, escaped: false });
                if self.spans.len() == max_fields {
                    return true;
                }
                start = pos + 1;
                m &= m - 1;
            }
            base += 8;
        }
        for (j, &c) in chunks.remainder().iter().enumerate() {
            match c {
                b'"' => {
                    self.spans.clear();
                    return false;
                }
                b',' => {
                    let pos = base + j;
                    self.spans.push(FieldSpan { start, end: pos, quoted: false, escaped: false });
                    if self.spans.len() == max_fields {
                        return true;
                    }
                    start = pos + 1;
                }
                _ => {}
            }
        }
        self.spans.push(FieldSpan {
            start,
            end: record.len(),
            quoted: false,
            escaped: false,
        });
        true
    }
}

/// A parsed record: the raw bytes plus one [`FieldSpan`] per field.
///
/// Lifetimes: `'r` is the input record (field accessors borrow from it where
/// possible), `'b` the reusable [`FieldBuf`] holding the span table.
#[derive(Debug, Clone, Copy)]
pub struct RecordView<'r, 'b> {
    record: &'r [u8],
    spans: &'b [FieldSpan],
}

impl<'r, 'b> RecordView<'r, 'b> {
    /// Number of parsed fields.
    #[inline]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the record parsed to zero fields (empty record).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The untouched input record.
    #[inline]
    pub fn raw(&self) -> &'r [u8] {
        self.record
    }

    /// The span of field `i`.
    #[inline]
    pub fn span(&self, i: usize) -> Option<FieldSpan> {
        self.spans.get(i).copied()
    }

    /// Raw bytes of field `i` exactly as they appear in the record
    /// (including quotes for quoted fields).
    #[inline]
    pub fn field_raw(&self, i: usize) -> Option<&'r [u8]> {
        self.spans.get(i).map(|s| &self.record[s.start..s.end])
    }

    /// Semantic bytes of field `i` when no unescaping can apply (the
    /// unquoted common case) — a plain borrowed slice with no `Cow`
    /// wrapper. Returns `None` for quoted fields *and* for out-of-range
    /// `i`; callers fall back to [`RecordView::bytes`] to disambiguate.
    #[inline]
    pub fn plain_bytes(&self, i: usize) -> Option<&'r [u8]> {
        let s = self.spans.get(i)?;
        if s.quoted {
            None
        } else {
            Some(&self.record[s.start..s.end])
        }
    }

    /// Semantic bytes of field `i`: quotes stripped, escapes collapsed,
    /// stray bytes concatenated. Borrowed except for escaped fields.
    #[inline]
    pub fn bytes(&self, i: usize) -> Option<Cow<'r, [u8]>> {
        let s = self.spans.get(i)?;
        Some(match (s.quoted, s.escaped) {
            (false, _) => Cow::Borrowed(&self.record[s.start..s.end]),
            // Cleanly closed, no escapes: the content between the quotes.
            (true, false) => Cow::Borrowed(&self.record[s.start + 1..s.end - 1]),
            (true, true) => Cow::Owned(unescape_quoted(&self.record[s.start..s.end])),
        })
    }

    /// Semantic text of field `i` (lossy UTF-8, borrowed where possible).
    #[inline]
    pub fn text(&self, i: usize) -> Option<Cow<'r, str>> {
        Some(match self.bytes(i)? {
            Cow::Borrowed(b) => match std::str::from_utf8(b) {
                Ok(s) => Cow::Borrowed(s),
                Err(_) => Cow::Owned(String::from_utf8_lossy(b).into_owned()),
            },
            Cow::Owned(v) => match String::from_utf8(v) {
                Ok(s) => Cow::Owned(s),
                Err(e) => Cow::Owned(String::from_utf8_lossy(e.as_bytes()).into_owned()),
            },
        })
    }
}

/// Unescape the raw span of a quoted field (`raw[0] == '"'`): collapse
/// doubled quotes; after the closing quote, append any stray bytes verbatim.
/// An unterminated quote yields everything after the opening quote.
fn unescape_quoted(raw: &[u8]) -> Vec<u8> {
    debug_assert_eq!(raw.first(), Some(&b'"'));
    let mut out = Vec::with_capacity(raw.len());
    let mut i = 1usize;
    while i < raw.len() {
        if raw[i] == b'"' {
            if raw.get(i + 1) == Some(&b'"') {
                out.push(b'"');
                i += 2;
            } else {
                // Closing quote: the rest of the span is stray bytes.
                out.extend_from_slice(&raw[i + 1..]);
                break;
            }
        } else {
            out.push(raw[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(record: &[u8]) -> Vec<String> {
        let mut buf = FieldBuf::default();
        let v = buf.parse(record);
        (0..v.len()).map(|i| v.text(i).unwrap().into_owned()).collect()
    }

    #[test]
    fn plain_fields_borrow() {
        let mut buf = FieldBuf::default();
        let v = buf.parse(b"a,bb,ccc");
        assert_eq!(v.len(), 3);
        assert!(matches!(v.bytes(1), Some(Cow::Borrowed(b"bb"))));
        assert!(matches!(v.text(2), Some(Cow::Borrowed("ccc"))));
        assert_eq!(v.field_raw(0), Some(&b"a"[..]));
    }

    #[test]
    fn quoted_simple_fields_borrow_inner_slice() {
        let mut buf = FieldBuf::default();
        let v = buf.parse(b"\"a,b\",x");
        assert!(matches!(v.bytes(0), Some(Cow::Borrowed(b"a,b"))));
        assert!(v.span(0).unwrap().is_simple());
        assert_eq!(v.field_raw(0), Some(&b"\"a,b\""[..]));
    }

    #[test]
    fn escaped_and_stray_fields_unescape() {
        assert_eq!(texts(b"\"he said \"\"hi\"\"\",x"), vec!["he said \"hi\"", "x"]);
        assert_eq!(texts(b"\"a\"tail,x"), vec!["atail", "x"]);
        assert_eq!(texts(b"\"open"), vec!["open"]);
        assert_eq!(texts(b"\"multi\nline\",y"), vec!["multi\nline", "y"]);
    }

    #[test]
    fn empty_and_trailing_fields() {
        assert_eq!(texts(b""), Vec::<String>::new());
        assert_eq!(texts(b"a,,c"), vec!["a", "", "c"]);
        assert_eq!(texts(b"a,b,"), vec!["a", "b", ""]);
        assert_eq!(texts(b"\"\""), vec![""]);
    }

    #[test]
    fn bounded_parse_stops_early() {
        let mut buf = FieldBuf::default();
        let v = buf.parse_bounded(b"a,b,c,d,e,f", 2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.text(0).as_deref(), Some("a"));
        assert_eq!(v.text(1).as_deref(), Some("b"));
        assert!(v.text(2).is_none());
    }

    #[test]
    fn mid_field_quote_bails_to_the_general_loop() {
        // A literal '"' inside an unquoted field forces the fast lane to
        // hand over to the quote-aware loop, which keeps it verbatim.
        assert_eq!(texts(b"a\"b,c"), vec!["a\"b", "c"]);
        assert_eq!(texts(b"x,y\"z"), vec!["x", "y\"z"]);
        // Commas adjacent to '-' (the exact-lane-test regression case).
        assert_eq!(texts(b"12,-4,,x"), vec!["12", "-4", "", "x"]);
    }

    #[test]
    fn fast_lane_matches_general_loop_span_for_span() {
        // Force the general loop by planting a quote in a *later* field,
        // then compare against the fast lane on the quote-free prefix.
        let mut fast = FieldBuf::default();
        let mut slow = FieldBuf::default();
        for rec in [
            &b"a,bb,ccc,1.5,,x"[..],
            b"single",
            b",",
            b"a,b,",
            b",,,",
            b"exactly8,exactly8,12345678",
        ] {
            let f = fast.parse(rec);
            let fspans: Vec<_> = (0..f.len()).map(|i| f.span(i)).collect();
            // Reference: the general loop via a record that defeats the
            // fast lane, sliced back down. Simpler: per-byte split.
            let mut expect = Vec::new();
            let mut s = 0usize;
            for (i, &c) in rec.iter().enumerate() {
                if c == b',' {
                    expect.push((s, i));
                    s = i + 1;
                }
            }
            expect.push((s, rec.len()));
            let sspans: Vec<_> = expect
                .iter()
                .map(|&(start, end)| {
                    Some(FieldSpan { start, end, quoted: false, escaped: false })
                })
                .collect();
            assert_eq!(fspans, sspans, "record {:?}", String::from_utf8_lossy(rec));
            let _ = &mut slow;
        }
    }

    #[test]
    fn stray_bytes_feed_the_telemetry_counter() {
        let before = telemetry::counter(STRAY_BYTES_METRIC).get();
        let _ = texts(b"\"q\"zzz,x");
        let after = telemetry::counter(STRAY_BYTES_METRIC).get();
        assert!(after >= before + 3, "stray bytes must be counted");
    }

    #[test]
    fn invalid_utf8_is_lossy() {
        let rec = [b'a', 0xFF, b',', b'b'];
        let got = texts(&rec);
        assert_eq!(got[0], "a\u{FFFD}");
        assert_eq!(got[1], "b");
    }
}
