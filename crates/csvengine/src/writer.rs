//! CSV writer: typed rows → bytes.

use crate::record::write_record;
use crate::schema::Schema;
use crate::value::Value;
use bytes::Bytes;

/// Buffered CSV writer.
///
/// Used by the workload generator (meter datasets), the ETL storlet on the
/// PUT path, and the result printers.
#[derive(Debug, Default)]
pub struct CsvWriter {
    buf: Vec<u8>,
}

impl CsvWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer pre-sized for roughly `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        CsvWriter { buf: Vec::with_capacity(capacity) }
    }

    /// Write the schema's column names as a header record.
    pub fn write_header(&mut self, schema: &Schema) {
        let names = schema.names();
        write_record(&mut self.buf, &names);
    }

    /// Write one record of raw string fields.
    pub fn write_strs(&mut self, fields: &[&str]) {
        write_record(&mut self.buf, fields);
    }

    /// Write one typed row (rendered via `Value::to_string`).
    pub fn write_row(&mut self, row: &[Value]) {
        let rendered: Vec<String> = row.iter().map(Value::to_string).collect();
        let refs: Vec<&str> = rendered.iter().map(String::as_str).collect();
        write_record(&mut self.buf, &refs);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the serialized bytes.
    pub fn into_bytes(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Borrow the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::CsvReader;
    use crate::schema::{DataType, Field};
    use scoop_common::stream;

    #[test]
    fn roundtrip_through_reader() {
        let schema = Schema::new(vec![
            Field::new("name", DataType::Str),
            Field::new("n", DataType::Int),
            Field::new("x", DataType::Float),
        ]);
        let rows = vec![
            vec![Value::Str("plain".into()), Value::Int(1), Value::Float(0.5)],
            vec![Value::Str("com,ma".into()), Value::Int(-2), Value::Null],
            vec![Value::Str("qu\"ote".into()), Value::Null, Value::Float(3.0)],
        ];
        let mut w = CsvWriter::new();
        w.write_header(&schema);
        for r in &rows {
            w.write_row(r);
        }
        assert!(!w.is_empty());
        let data = w.into_bytes();
        let back: Vec<Vec<Value>> =
            CsvReader::new(stream::once(data), schema, true)
                .collect::<scoop_common::Result<_>>()
                .unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn write_strs_passthrough() {
        let mut w = CsvWriter::with_capacity(64);
        w.write_strs(&["a", "b"]);
        assert_eq!(w.as_slice(), b"a,b\n");
        assert_eq!(w.len(), 4);
    }
}
